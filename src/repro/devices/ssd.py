"""The simulated SSD.

Architecture (mirroring a real enterprise NVMe drive)::

    host ── HostLink ── controller cores ── DRAM write buffer ── FTL ── NAND
                              │                                          │
                          PowerGovernor  <── NVMe power state (cap) ─────┘

Key behaviours the paper's measurements rest on, and where they live here:

- **Write-back buffering**: writes complete once DMA'd into the DRAM buffer
  (enterprise drives have power-loss protection).  Background flush programs
  the buffered stream to NAND.  When a power cap throttles the flush, the
  buffer backs up and *write admission* stalls -- that is the mechanism
  behind capped random-write latency inflation at QD1 (paper Fig. 5).
- **Governor gates programs/erases only**: reads draw too little to matter
  to the cap, so read throughput and latency are insensitive to power
  states (paper Figs. 4b and 6).
- **Die striping**: the flush and read paths spread over channels/dies, so
  IO size and queue depth modulate array parallelism, and with it both
  power and throughput (paper Figs. 8 and 9).
- **Housekeeping bursts**: periodic metadata maintenance competes with host
  flush for the governor budget, producing the capped tail-latency blowup
  (paper Fig. 5b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro._units import MiB
from repro.devices.base import IOKind, IORequest, IOResult, StorageDevice
from repro.devices.link import HostLink, LinkPowerTable
from repro.devices.power_states import NvmePowerState, PowerGovernor
from repro.ftl.allocator import WriteAllocator
from repro.ftl.gc import GarbageCollector, GcConfig
from repro.ftl.mapping import PageMap
from repro.ftl.wear import WearTracker
from repro.nand.die import NandArray
from repro.nand.geometry import NandGeometry
from repro.nand.ops import NandPower, NandTimings, OpKind
from repro.obs.events import EventKind
from repro.sim.engine import Engine, Event
from repro.sim.resources import Gate, Resource
from repro.sim.rng import RngStreams

__all__ = ["ControllerConfig", "SimulatedSSD", "SsdConfig"]

_PHANTOM_HASH = 2654435761
_PHANTOM_MOD = 2**32


class _GovernorAdapter:
    """Adds an op's amortized transfer overhead to its committed power."""

    __slots__ = ("governor", "extra_w")

    def __init__(self, governor: PowerGovernor, extra_w: float) -> None:
        self.governor = governor
        self.extra_w = extra_w

    def request(self, watts: float):
        return self.governor.request(watts + self.extra_w)

    def release(self, watts: float) -> None:
        self.governor.release(watts + self.extra_w)


@dataclass(frozen=True)
class ControllerConfig:
    """SSD controller front end.

    Attributes:
        cores: Command-processing cores; with ``command_time_s`` they set
            the small-IO IOPS ceiling.
        command_time_s: Per-command firmware processing time.
        core_active_power_w: Extra draw per busy core.
        idle_power_w: Controller resident draw (excluding DRAM and PHY).
        completion_time_s: Completion/interrupt posting time per IO.
    """

    cores: int = 2
    command_time_s: float = 8.0e-6
    core_active_power_w: float = 0.6
    idle_power_w: float = 2.0
    completion_time_s: float = 3.0e-6

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("need at least one controller core")
        if self.command_time_s <= 0 or self.completion_time_s < 0:
            raise ValueError("command times must be positive")
        if self.core_active_power_w < 0 or self.idle_power_w < 0:
            raise ValueError("controller powers must be non-negative")


@dataclass(frozen=True)
class SsdConfig:
    """Full parameterization of one SSD model.

    Power-relevant fields are documented on the classes they feed
    (:class:`~repro.nand.ops.NandPower`, :class:`ControllerConfig`, ...).

    Attributes:
        governor_baseline_w: Firmware's estimate of non-NAND power used to
            budget the power cap (see
            :class:`~repro.devices.power_states.PowerGovernor`).
        overprovision: Fraction of physical capacity hidden from the host.
        phantom_reads: Treat reads of never-written LBAs as real NAND reads
            at a hashed location -- equivalent to running on a
            preconditioned drive, without simulating the multi-hour fill.
        maintenance_interval_s / maintenance_programs: Housekeeping cadence
            and burst size (0 programs disables housekeeping).
    """

    name: str
    geometry: NandGeometry
    timings: NandTimings = field(default_factory=NandTimings)
    nand_power: NandPower = field(default_factory=NandPower)
    program_pulse_ratio: float = 1.0
    program_pulse_fraction: float = 0.3
    channel_bandwidth: float = 1.2e9
    channel_transfer_power_w: float = 0.55
    link_bandwidth: float = 3.2e9
    link_transfer_power_w: float = 0.9
    link_power_table: LinkPowerTable = field(default_factory=LinkPowerTable)
    controller: ControllerConfig = field(default_factory=ControllerConfig)
    dram_power_w: float = 0.8
    write_buffer_bytes: int = 8 * MiB
    power_states: tuple[NvmePowerState, ...] = ()
    governor_baseline_w: float = 6.0
    governor_feedback: bool = True
    governor_headroom_w: float = 0.0
    overprovision: float = 0.10
    gc: GcConfig = field(default_factory=GcConfig)
    rail_voltage: float = 12.0
    maintenance_interval_s: float = 0.05
    maintenance_programs: int = 0
    maintenance_erases: int = 0
    power_wave_w: float = 0.0
    power_wave_duty: float = 0.15
    power_wave_period_s: float = 3e-3
    apst_idle_timeout_s: Optional[float] = None
    phantom_reads: bool = True

    def __post_init__(self) -> None:
        if not 0 <= self.overprovision < 0.5:
            raise ValueError("overprovision must be in [0, 0.5)")
        if self.write_buffer_bytes < self.geometry.page_size:
            raise ValueError("write buffer must hold at least one page")
        if (
            self.maintenance_programs < 0
            or self.maintenance_erases < 0
            or self.maintenance_interval_s <= 0
        ):
            raise ValueError("bad maintenance parameters")
        if self.power_wave_w < 0 or self.power_wave_period_s <= 0:
            raise ValueError("bad power wave parameters")
        if not 0 < self.power_wave_duty < 1:
            raise ValueError("power_wave_duty must be in (0, 1)")
        if self.apst_idle_timeout_s is not None:
            if self.apst_idle_timeout_s <= 0:
                raise ValueError("APST idle timeout must be positive")
            if not any(not ps.operational for ps in self.power_states):
                raise ValueError(
                    "APST needs at least one non-operational power state"
                )
        indices = [ps.index for ps in self.power_states]
        if indices != sorted(indices) or len(set(indices)) != len(indices):
            raise ValueError("power states must have unique ascending indices")
        if self.power_states and not self.power_states[0].operational:
            raise ValueError("ps0 must be operational")

    @property
    def logical_pages(self) -> int:
        return int(self.geometry.total_pages * (1.0 - self.overprovision))

    @property
    def idle_power_w(self) -> float:
        """Resident draw at operational idle (controller + DRAM + PHY)."""
        from repro.devices.link import LinkPowerMode

        return (
            self.controller.idle_power_w
            + self.dram_power_w
            + self.link_power_table.phy_power_w[LinkPowerMode.ACTIVE]
        )


class SimulatedSSD(StorageDevice):
    """See module docstring for the architecture overview."""

    def __init__(
        self,
        engine: Engine,
        config: SsdConfig,
        rng: RngStreams | None = None,
        faults=None,
    ) -> None:
        super().__init__(engine, config.name, config.rail_voltage, faults=faults)
        self.config = config
        rngs = rng or RngStreams(0)
        self.array = NandArray(
            engine,
            self.rail,
            config.geometry,
            config.timings,
            config.nand_power,
            channel_bandwidth=config.channel_bandwidth,
            channel_transfer_power_w=config.channel_transfer_power_w,
            pulse_ratio=config.program_pulse_ratio,
            pulse_fraction=config.program_pulse_fraction,
            rng=rngs.get(f"{config.name}.nand"),
        )
        self.page_map = PageMap(config.logical_pages)
        # GC must always be able to open a relocation block on any die, so
        # the reserve covers one block per die (plus slack), and the GC
        # watermarks sit above the reserve -- otherwise host allocation
        # would hit the reserve wall before GC pressure ever triggered.
        gc_reserve = config.geometry.total_dies + 2
        self.allocator = WriteAllocator(
            config.geometry, gc_reserve_blocks=gc_reserve
        )
        gc_low = max(config.gc.low_watermark, gc_reserve + 2)
        gc_high = max(config.gc.high_watermark, gc_low + 4)
        effective_gc = GcConfig(low_watermark=gc_low, high_watermark=gc_high)
        self.wear = WearTracker(config.geometry.total_blocks)
        self.link = HostLink(
            engine,
            self.rail,
            bandwidth=config.link_bandwidth,
            transfer_power_w=config.link_transfer_power_w,
            power_table=config.link_power_table,
            name=f"{config.name}.link",
        )
        self.cores = Resource(
            engine, config.controller.cores, name=f"{config.name}.cores"
        )
        initial_cap = (
            config.power_states[0].max_power_w if config.power_states else None
        )
        self.governor = PowerGovernor(
            engine,
            baseline_w=config.governor_baseline_w,
            cap_w=initial_cap,
            name=f"{config.name}.governor",
            other_power_fn=(self._non_nand_power if config.governor_feedback else None),
            headroom_w=config.governor_headroom_w,
        )
        self.gc = GarbageCollector(
            self.array,
            self.allocator,
            self.page_map,
            config=effective_gc,
            wear=self.wear,
            admission=self._admit_and_execute,
            name=f"{config.name}.gc",
            faults=self.faults,
        )
        # Buffer accounting (bytes) with explicit waiters.
        self._buffer_used = 0
        self._buffer_waiters: list[Event] = []
        self._pending_program_bytes = 0
        self._staged_lpns: list[int] = []
        # Power state machinery.
        self._resident: NvmePowerState | None = (
            config.power_states[0] if config.power_states else None
        )
        self._operational_state = self._resident
        # An online policy's cap rides *alongside* the power-state cap
        # (the governor enforces the min of both); None = no policy.
        self._policy_cap_w: float | None = None
        self._ready = Gate(engine, is_open=True, name=f"{config.name}.ready")
        self._waking = False
        self._writes_since_maintenance = 0
        self._maintenance_rr_die = 0
        self._last_activity = engine.now
        self._inflight_ios = 0
        # Per-op governor bookkeeping is invariant over a run: precompute
        # the committed-power extras and share one adapter per op kind so
        # the flush path does no arithmetic or allocation per program.
        self._link_xfer_component = f"{config.name}.link.xfer"
        self._wave_avg_w = config.power_wave_w * config.power_wave_duty
        # Hot-path config scalars, hoisted out of the chained dataclass
        # attribute lookups the per-IO generators would otherwise repeat.
        self._page_size = config.geometry.page_size
        self._command_time_s = config.controller.command_time_s
        self._completion_time_s = config.controller.completion_time_s
        self._core_active_w = config.controller.core_active_power_w
        self._write_buffer_bytes = config.write_buffer_bytes
        self._governor_adapters = {
            kind: _GovernorAdapter(
                self.governor,
                extra_w=self._governed_op_power(kind) - config.nand_power.draw(kind),
            )
            for kind in (OpKind.PROGRAM, OpKind.ERASE)
        }
        self._apply_idle_draws()
        self._trace_power_state(None)  # baseline residency mark at t=0
        if config.maintenance_programs > 0 or config.maintenance_erases > 0:
            engine.process(self._maintenance_loop())
        if config.power_wave_w > 0:
            engine.process(self._power_wave_loop(rngs.get(f"{config.name}.wave")))
        if config.apst_idle_timeout_s is not None:
            engine.process(self._apst_loop())

    # -- properties -------------------------------------------------------

    @property
    def capacity_bytes(self) -> int:
        return self.config.logical_pages * self.config.geometry.page_size

    @property
    def current_power_state(self) -> NvmePowerState | None:
        return self._resident

    @property
    def buffer_used_bytes(self) -> int:
        return self._buffer_used

    def _trace_power_state(self, previous: NvmePowerState | None) -> None:
        """Emit the power-state transition that just took effect."""
        tracer = self.engine.tracer
        if not tracer.enabled or self._resident is None:
            return
        tracer.emit(
            EventKind.POWER_STATE,
            f"{self.name}.power",
            state=f"ps{self._resident.index}",
            state_index=self._resident.index,
            from_state=None if previous is None else f"ps{previous.index}",
            operational=self._resident.operational,
            cap_w=self._resident.max_power_w,
        )

    def _non_nand_power(self) -> float:
        """Live device power excluding all array-serving activity.

        Excludes die draws, channel transfers and host-link streaming --
        everything proportional to governed array work.  Those costs are
        charged to the ops themselves via :meth:`_governed_op_power`, which
        keeps the feedback loop free of self-correlation (an op's own
        transfer activity must not shrink the budget it is admitted
        against).

        The program-intensity wave is replaced by its duty-cycled average
        at full die utilization (``power_wave_w * duty``): the live wave
        signal self-correlates with governed work just like die draws, but
        no grant brackets it (it fires on busy dies regardless of who
        holds admission), so ops cannot carry its cost either.  Budgeting
        the static average is exact in the saturated regime -- the only
        regime where a cap binds -- and merely conservative below it.
        """
        rail = self.rail
        return (
            rail.total_watts
            - rail.draw_of_prefix("die")
            - rail.draw_of_prefix("chan")
            - rail.draw_of_prefix("nand.wave")
            - rail.draw_of(self._link_xfer_component)
            + self._wave_avg_w
        )

    def _governed_op_power(self, kind: OpKind) -> float:
        """Effective committed power of one governed array operation.

        The op's average draw plus the amortized channel/link transfer
        power its page data costs over the op's duration, so the cap
        budget accounts for the whole power footprint of admitting it.

        The program-intensity wave is handled in :meth:`_non_nand_power`
        (as a static expected draw), not here: the wave fires on *busy*
        dies whether or not their op holds a grant (channel-transfer
        phases, GC reads), so a per-granted-op share systematically
        undercounts it exactly when the cap binds.
        """
        config = self.config
        base = config.nand_power.draw(kind)
        if kind is OpKind.ERASE:
            return base
        duration = config.timings.duration(kind)
        page = config.geometry.page_size
        chan_share = (
            config.channel_transfer_power_w * (page / config.channel_bandwidth) / duration
        )
        link_share = (
            config.link_transfer_power_w * (page / config.link_bandwidth) / duration
        )
        return base + chan_share + link_share

    # -- idle power --------------------------------------------------------

    def _apply_idle_draws(self) -> None:
        """Set resident draws for the current power state."""
        if self._resident is None or self._resident.operational:
            self.rail.set_draw("ctrl.idle", self.config.controller.idle_power_w)
            self.rail.set_draw("dram", self.config.dram_power_w)
        else:
            # Non-operational: the state's idle figure covers everything
            # except the link PHY (which ALPM controls separately).
            self.rail.set_draw("ctrl.idle", self._resident.idle_power_w)
            self.rail.set_draw("dram", 0.0)

    # -- power state control --------------------------------------------------

    def _effective_cap(self, state_cap_w: float | None) -> float | None:
        """The governor cap implied by the power state *and* the policy.

        Both mechanisms constrain the same budget, so the tighter one
        wins.  Keeping the combination in one place is the fix for the
        cap-clobber bug: ``set_power_state`` and ``_wake`` used to write
        the state cap straight to the governor, silently discarding a
        tighter policy cap on every APST doze/wake cycle.
        """
        if self._policy_cap_w is None:
            return state_cap_w
        if state_cap_w is None:
            return self._policy_cap_w
        return min(state_cap_w, self._policy_cap_w)

    def set_policy_cap(self, cap_w: float | None) -> None:
        """Set (or clear, with ``None``) the online policy's power cap.

        Takes effect immediately: the governor re-drains its admission
        queue against the new budget.  The cap composes with the
        resident power state's cap via :meth:`_effective_cap`.
        """
        self._policy_cap_w = cap_w
        state_cap_w = (
            self._operational_state.max_power_w
            if self._operational_state is not None
            else None
        )
        self.governor.set_cap(self._effective_cap(state_cap_w))

    def set_power_state(self, index: int):
        """Process generator: NVMe Set Features (Power Management)."""
        states = {ps.index: ps for ps in self.config.power_states}
        if index not in states:
            raise ValueError(f"{self.name} has no power state {index}")
        target = states[index]
        if target.entry_latency_s > 0:
            if self.faults.enabled:
                # A stuck transition re-pays the entry latency before the
                # state change finally takes.
                component = f"{self.name}.power"
                stuck = self.faults.transition_stuck(component, "nvme_ps")
                for attempt in range(1, stuck + 1):
                    self.faults.note_retry("stuck_transition", component, attempt)
                    yield self.engine.timeout(target.entry_latency_s)
            yield self.engine.timeout(target.entry_latency_s)
        previous = self._resident
        self._resident = target
        self._trace_power_state(previous)
        if target.operational:
            self._operational_state = target
            self.governor.set_cap(self._effective_cap(target.max_power_w))
            self._apply_idle_draws()
            self._ready.open()
        else:
            self._apply_idle_draws()
            self._ready.close()

    def enter_standby(self):
        """Process generator: drop into the deepest non-operational state."""
        non_op = [ps for ps in self.config.power_states if not ps.operational]
        if not non_op:
            raise NotImplementedError(
                f"{self.name} has no non-operational power states"
            )
        deepest = min(non_op, key=lambda ps: ps.idle_power_w)
        yield from self.set_power_state(deepest.index)

    def exit_standby(self):
        """Process generator: return to the last operational state."""
        if self._resident is None or self._resident.operational:
            return
        yield from self._wake()

    def _wake(self):
        """Leave a non-operational state, paying its exit latency once."""
        if self._resident is None or self._resident.operational:
            return
        if self._waking:
            yield self._ready.wait_open()
            return
        self._waking = True
        try:
            if self.faults.enabled:
                # A wake that refuses to complete: re-pay the exit latency.
                component = f"{self.name}.power"
                stuck = self.faults.transition_stuck(component, "nvme_ps")
                for attempt in range(1, stuck + 1):
                    self.faults.note_retry("stuck_transition", component, attempt)
                    yield self.engine.timeout(self._resident.exit_latency_s)
            yield self.engine.timeout(self._resident.exit_latency_s)
        finally:
            self._waking = False
        assert self._operational_state is not None
        previous = self._resident
        self._resident = self._operational_state
        self._trace_power_state(previous)
        self.governor.set_cap(
            self._effective_cap(self._operational_state.max_power_w)
        )
        self._apply_idle_draws()
        self._ready.open()

    # -- IO front end --------------------------------------------------------

    def submit(self, request: IORequest) -> Event:
        self.check_request(request)
        done = Event(self.engine)
        self.engine.process(self._io(request, done))
        return done

    def _io(self, request: IORequest, done: Event):
        engine = self.engine
        submit_time = engine._now
        tracer = engine.tracer
        if tracer.enabled:
            tracer.emit(
                EventKind.IO_SUBMIT,
                f"{self.name}.io",
                kind=request.kind.value,
                offset=request.offset,
                nbytes=request.nbytes,
            )
        self._last_activity = submit_time
        self._inflight_ios += 1
        try:
            if self.faults.enabled:
                yield from self.faults.io_delay(
                    f"{self.name}.io", request.kind.value
                )
            if self._resident is not None and not self._resident.operational:
                yield from self._wake()
            yield from self._controller_step(self._command_time_s)
            if request.kind is IOKind.READ:
                yield from self._read(request)
            else:
                yield from self._write(request)
            if self._completion_time_s > 0:
                yield engine.timeout(self._completion_time_s)
        finally:
            self._inflight_ios -= 1
            self._last_activity = engine._now
        self.record_completion(request)
        if tracer.enabled:
            tracer.emit(
                EventKind.IO_COMPLETE,
                f"{self.name}.io",
                kind=request.kind.value,
                nbytes=request.nbytes,
                latency_s=engine._now - submit_time,
            )
        done.succeed(IOResult(request, submit_time, engine._now))

    def _controller_step(self, duration: float):
        """Occupy a controller core, drawing core-active power."""
        yield self.cores.request()
        rail = self.rail
        active_w = self._core_active_w
        rail.add_draw("ctrl.active", active_w)
        try:
            yield self.engine.timeout(duration)
        finally:
            rail.add_draw("ctrl.active", -active_w)
            self.cores.release()

    # -- read path ---------------------------------------------------------------

    def _read(self, request: IORequest):
        page_size = self._page_size
        first = request.offset // page_size
        last = (request.end - 1) // page_size
        readers = []
        for lpn in range(first, last + 1):
            page_start = lpn * page_size
            nbytes = min(request.end, page_start + page_size) - max(
                request.offset, page_start
            )
            readers.append(self.engine.process(self._read_page(lpn, nbytes)))
        yield self.engine.all_of(readers)
        yield from self.link.transfer(request.nbytes)

    def _read_page(self, lpn: int, nbytes: int):
        ppn = self.page_map.lookup(lpn)
        geometry = self.config.geometry
        if ppn is None:
            if not self.config.phantom_reads:
                # Unmapped and no preconditioning emulation: zero-fill, only
                # the controller/DMA cost applies (no NAND touch).
                return
            ppn = (lpn * _PHANTOM_HASH) % _PHANTOM_MOD % geometry.total_pages
        ppa = geometry.ppa_from_index(ppn)
        # Reads are not power-governed: see module docstring.  The array's
        # READ path (die sense, then bus transfer) is inlined verbatim from
        # NandArray.execute / ChannelBus.transfer: page reads are per-page
        # processes, and every helper generator frame taxes each event.
        array = self.array
        die = array.dies[ppa.die_index(geometry)]
        watts = array._op_draw[OpKind.READ]
        engine = self.engine
        yield die._server.request()
        try:
            rail = die.rail
            component = die._component
            rail.add_draw(component, watts)
            try:
                yield engine.timeout(die._op_duration[OpKind.READ])
                die.op_counts[OpKind.READ] += 1
            finally:
                rail.add_draw(component, -watts)
            channel = array.channels[ppa.channel]
            yield channel._bus.request()
            component = channel._component
            power = channel.transfer_power_w
            rail.add_draw(component, power)
            try:
                yield engine.timeout(nbytes / channel.bandwidth)
                channel.bytes_transferred += nbytes
            finally:
                rail.add_draw(component, -power)
                channel._bus.release()
        finally:
            die._server.release()

    # -- write path -----------------------------------------------------------------

    def _write(self, request: IORequest):
        yield from self.link.transfer(request.nbytes)
        yield from self._buffer_reserve(request.nbytes)
        self.wear.record_host_write(request.nbytes)
        self._stage_mapped_lpns(request)
        page_size = self._page_size
        self._pending_program_bytes += request.nbytes
        while self._pending_program_bytes >= page_size:
            self._pending_program_bytes -= page_size
            self.engine.process(self._program_unit())
        # Residual bytes stay buffered until later writes complete the page.

    def _stage_mapped_lpns(self, request: IORequest) -> None:
        """Queue LPNs fully covered by this write for mapping updates."""
        page_size = self._page_size
        first_full = -(-request.offset // page_size)  # ceil div
        last_full = request.end // page_size  # exclusive
        for lpn in range(first_full, last_full):
            if lpn < self.page_map.logical_pages:
                self._staged_lpns.append(lpn)

    def _buffer_reserve(self, nbytes: int):
        """Process generator: wait for ``nbytes`` of DRAM buffer space."""
        tracer = self.engine.tracer
        if tracer.enabled:
            # Buffer admission is the capped-write stall mechanism (Fig. 5):
            # a hit absorbs the write at DMA speed, a miss parks the host
            # behind the throttled flush.
            fits = self._buffer_used + nbytes <= self._write_buffer_bytes
            tracer.emit(
                EventKind.CACHE_HIT if fits else EventKind.CACHE_MISS,
                f"{self.name}.wbuf",
                nbytes=nbytes,
                used=self._buffer_used,
            )
        while self._buffer_used + nbytes > self._write_buffer_bytes:
            event = Event(self.engine)
            self._buffer_waiters.append(event)
            yield event
        self._buffer_used += nbytes

    def _buffer_release(self, nbytes: int) -> None:
        self._buffer_used -= nbytes
        if self._buffer_used < 0:
            self._buffer_used = 0
        waiters, self._buffer_waiters = self._buffer_waiters, []
        for event in waiters:
            event.succeed()

    def _program_unit(self):
        """Flush one page of buffered write data to NAND.

        The allocate-with-GC loop lives inline (not in a helper generator)
        and the program op goes straight to ``array.execute`` with the
        precomputed admission adapter: this is the per-page hot path, and
        every helper generator here adds a frame that taxes each event.

        Allocation retries with GC until a page is produced.  Many flush
        processes race for the free pool, so a single pressure-check
        before allocating is not enough: the reserve can drain between
        the check and the allocation.  A device whose GC cannot reclaim
        anything (all data valid -- genuine capacity exhaustion)
        re-raises.
        """
        page_size = self._page_size
        while True:
            if self.gc.pressure:
                yield from self.gc.maybe_collect()
            try:
                ppn, ppa = self.allocator.allocate()
                break
            except RuntimeError:
                relocated_before = self.gc.pages_relocated
                erased_before = self.gc.blocks_erased
                yield from self.gc.maybe_collect()
                made_progress = (
                    self.gc.blocks_erased > erased_before
                    or self.gc.pages_relocated > relocated_before
                )
                if not made_progress and self.allocator.free_blocks == 0:
                    raise
        if self._staged_lpns:
            lpn = self._staged_lpns.pop(0)
            stale = self.page_map.bind(lpn, ppn)
            if stale is not None:
                self.allocator.mark_invalid(stale)
        else:
            # Sub-page log traffic: the page holds fragments that are not
            # tracked at map granularity; it is immediately reclaimable.
            self.allocator.mark_invalid(ppn)
        # Inlined NandArray.execute's PROGRAM branch (bus transfer, governor
        # admission, die-busy phase) and ChannelBus.transfer: page programs
        # are the hottest NAND op in any write-heavy run, and each helper
        # generator in the yield-from chain adds a frame every event must
        # bubble through.  Statement order mirrors the originals exactly.
        array = self.array
        die = array.dies[ppa.die_index(array.geometry)]
        watts = array._op_draw[OpKind.PROGRAM]
        admission = self._governor_adapters[OpKind.PROGRAM]
        engine = self.engine
        nand_page = array.geometry.page_size
        yield die._server.request()
        try:
            channel = array.channels[ppa.channel]
            yield channel._bus.request()
            rail = channel.rail
            component = channel._component
            power = channel.transfer_power_w
            rail.add_draw(component, power)
            try:
                yield engine.timeout(nand_page / channel.bandwidth)
                channel.bytes_transferred += nand_page
            finally:
                rail.add_draw(component, -power)
                channel._bus.release()
            yield admission.request(watts)
            try:
                if die._pulsed_programs:
                    t_pulse = die._prog_t_pulse
                    p_pulse = die._prog_p_pulse
                    p_rest = die._prog_p_rest
                    t_before = float(die._rng.uniform(0.0, die._prog_span))
                    t_after = die._prog_span - t_before
                    component = die._component
                    for power_w, phase_time in (
                        (p_rest, t_before),
                        (p_pulse, t_pulse),
                        (p_rest, t_after),
                    ):
                        if phase_time <= 0:
                            continue
                        rail.add_draw(component, power_w)
                        try:
                            yield engine.timeout(phase_time)
                        finally:
                            rail.add_draw(component, -power_w)
                    die.op_counts[OpKind.PROGRAM] += 1
                else:
                    component = die._component
                    rail.add_draw(component, watts)
                    try:
                        yield engine.timeout(die._op_duration[OpKind.PROGRAM])
                        die.op_counts[OpKind.PROGRAM] += 1
                    finally:
                        rail.add_draw(component, -watts)
            finally:
                admission.release(watts)
        finally:
            die._server.release()
        self.wear.record_nand_write(page_size)
        self._writes_since_maintenance += 1
        self._buffer_release(page_size)

    # -- governor plumbing -----------------------------------------------------------

    def _admit_and_execute(self, ppa, kind: OpKind):
        """Run a NAND op, gated by the power governor for programs/erases.

        The governor brackets only the die-busy phase (see
        :meth:`repro.nand.die.NandArray.execute`); reads are never gated --
        their draw fits under any operational cap (module docstring).
        """
        if kind is OpKind.READ:
            yield from self.array.execute(ppa, kind)
            return
        yield from self.array.execute(
            ppa, kind, admission=self._governor_adapters[kind]
        )

    # -- housekeeping -------------------------------------------------------------------

    def _maintenance_loop(self):
        """Periodic metadata maintenance (journal compaction, mapping flush).

        Abstract power/timing model only: the burst programs a reserved
        metadata region and does not touch the host-visible FTL state.  Under
        a tight power cap the burst competes with host flush for the
        governor budget, stalling host writes -- the tail-latency mechanism
        of paper Fig. 5b.  Bursts are skipped while the device is write-idle
        so idle power stays at specification.
        """
        interval = self.config.maintenance_interval_s
        while True:
            yield self.engine.timeout(interval)
            if self._writes_since_maintenance == 0:
                continue
            self._writes_since_maintenance = 0
            workers = [
                self.engine.process(self._maintenance_op(OpKind.PROGRAM))
                for _ in range(self.config.maintenance_programs)
            ]
            workers.extend(
                self.engine.process(self._maintenance_op(OpKind.ERASE))
                for _ in range(self.config.maintenance_erases)
            )
            yield self.engine.all_of(workers)

    def _apst_loop(self):
        """NVMe Autonomous Power State Transitions.

        When the host enables APST the controller drops itself into a
        non-operational state after an idle period; the next IO pays the
        exit latency (handled by the ordinary wake path).  This is the
        SSD-side analogue of ALPM, and what makes the paper's power-aware
        IO redirection self-managing: consolidating load away from a
        device lets its own idle timer harvest the standby saving.
        """
        timeout = self.config.apst_idle_timeout_s
        assert timeout is not None
        while True:
            yield self.engine.timeout(timeout / 2)
            if self._resident is None or not self._resident.operational:
                continue
            idle_for = self.engine.now - self._last_activity
            if self._inflight_ios == 0 and idle_for >= timeout:
                yield from self.enter_standby()

    def _power_wave_loop(self, rng):
        """Device-wide program-intensity wave.

        TLC program energy is not uniform across a multi-pass programming
        sequence: the device alternates between heavier and lighter program
        phases on millisecond epochs (SLC-buffer destage, upper-page
        passes).  Modelled as a square wave of additional draw, scaled by
        the fraction of busy dies and duty-cycled, it reproduces the large
        millisecond-scale power swings the paper's Fig. 2a traces show for
        SSD1.  The wave's *average* contribution is part of the device's
        calibrated active power (the preset lowers per-die program power to
        compensate), so mean power is unchanged -- only the texture.
        """
        config = self.config
        period = config.power_wave_period_s
        high_time = config.power_wave_duty * period
        low_time = period - high_time
        total_dies = config.geometry.total_dies
        while True:
            yield self.engine.timeout(low_time * float(rng.uniform(0.8, 1.2)))
            busy_fraction = self.array.busy_dies / total_dies
            self.rail.set_draw("nand.wave", config.power_wave_w * busy_fraction)
            yield self.engine.timeout(high_time * float(rng.uniform(0.8, 1.2)))
            self.rail.set_draw("nand.wave", 0.0)

    def _maintenance_op(self, kind: OpKind):
        geometry = self.config.geometry
        die = self._maintenance_rr_die
        self._maintenance_rr_die = (die + 1) % geometry.total_dies
        # Page 0 of block 0 on the chosen die stands in for the metadata
        # region; only its timing/power matter.
        ppn = die * geometry.pages_per_die
        ppa = geometry.ppa_from_index(ppn)
        yield from self._admit_and_execute(ppa, kind)
