"""The simulated hard disk drive.

A single-actuator drive with a constantly-rotating spindle (while powered),
an on-board write-back cache, and drive-internal command scheduling by
rotational position ordering (RPO).  The service loop::

    pending reads ──┐
                    ├── RPO pick ── seek ── rotational wait ── media transfer
    write cache  ───┘

Power structure (paper Table 1's HDD, Seagate Exos 7E2000):

- electronics: always-on resident draw (this *is* standby power),
- spindle: rotation draw while spun up, surge during spin-up,
- voice coil: draw while seeking,
- read/write channel: draw while data streams off/onto the platter.

The narrow active range (idle 3.76 W to peak ~5.3 W) and the expensive
standby transition are both emergent from these parts, matching the paper's
section 2 characterization of HDDs.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from itertools import islice
from operator import itemgetter
from typing import Deque, Optional

from repro._units import MiB
from repro.devices.base import IOKind, IORequest, IOResult, StorageDevice
from repro.devices.link import HostLink, LinkPowerTable
from repro.hdd.cache import CachedWrite, WriteCache
from repro.hdd.geometry import HddGeometry
from repro.hdd.mechanics import RotationModel, SeekModel, pick_next_rpo
from repro.hdd.spindle import Spindle, SpindleConfig
from repro.obs.events import EventKind
from repro.sim.engine import Engine, Event

__all__ = ["HddConfig", "IdleCondition", "SimulatedHDD"]


class IdleCondition(enum.Enum):
    """ATA Extended Power Conditions idle sub-states.

    The shallow rungs of the HDD power ladder between full idle and
    standby (the "low-power idle modes" of paper section 2):

    - ``IDLE_A``: full idle -- platters at speed, heads loaded.
    - ``IDLE_B``: heads unloaded onto the ramp; saves servo/windage power,
      costs a head-reload delay on the next access.
    - ``IDLE_C``: heads unloaded *and* spindle at reduced rpm; saves more,
      costs a longer recovery while the spindle returns to speed.
    """

    IDLE_A = "idle_a"
    IDLE_B = "idle_b"
    IDLE_C = "idle_c"


@dataclass(frozen=True)
class HddConfig:
    """Full parameterization of one HDD model.

    Attributes:
        electronics_power_w: Always-on board draw; equals standby power.
        seek_power_w: Voice-coil draw while seeking.
        transfer_power_w: Channel draw while data streams.
        command_time_s: Per-command firmware overhead.
        cache_bytes: Write-back cache size (scaled down with the rest of the
            simulation; behaviour depends on entry *count* via the elevator).
        rpo_window: Lookahead width of the internal scheduler.
        write_cache_enabled: WCE bit; when off, writes complete only after
            the media write.
    """

    name: str
    geometry: HddGeometry = field(default_factory=HddGeometry)
    seek: SeekModel = field(default_factory=SeekModel)
    spindle: SpindleConfig = field(default_factory=SpindleConfig)
    electronics_power_w: float = 1.0
    seek_power_w: float = 1.55
    transfer_power_w: float = 0.25
    command_time_s: float = 20e-6
    cache_bytes: int = 16 * MiB
    rpo_window: int = 16
    write_cache_enabled: bool = True
    link_bandwidth: float = 530e6
    link_transfer_power_w: float = 0.12
    link_power_table: LinkPowerTable = field(default_factory=LinkPowerTable)
    rail_voltage: float = 12.0
    # ATA EPC idle sub-states (savings are against full idle; recoveries
    # are paid by the next media access).
    idle_b_savings_w: float = 0.55
    idle_b_recovery_s: float = 0.4
    idle_c_savings_w: float = 1.35
    idle_c_recovery_s: float = 2.0

    def __post_init__(self) -> None:
        if self.electronics_power_w < 0 or self.seek_power_w < 0:
            raise ValueError("powers must be non-negative")
        if self.cache_bytes <= 0 or self.rpo_window < 1:
            raise ValueError("bad cache/window parameters")
        if not 0 <= self.idle_b_savings_w <= self.idle_c_savings_w:
            raise ValueError("EPC savings must be ordered: 0 <= B <= C")
        if self.idle_b_recovery_s < 0 or self.idle_c_recovery_s < 0:
            raise ValueError("EPC recoveries must be non-negative")
        if self.idle_c_savings_w >= self.idle_power_w:
            raise ValueError("idle_c cannot save more than idle power")

    @property
    def idle_power_w(self) -> float:
        """Draw while spun up and quiescent (incl. the active link PHY)."""
        from repro.devices.link import LinkPowerMode

        return (
            self.electronics_power_w
            + self.spindle.rotation_power_w
            + self.link_power_table.phy_power_w[LinkPowerMode.ACTIVE]
        )

    @property
    def standby_power_w(self) -> float:
        """Draw while spun down (electronics + link PHY)."""
        from repro.devices.link import LinkPowerMode

        return (
            self.electronics_power_w
            + self.link_power_table.phy_power_w[LinkPowerMode.ACTIVE]
        )


@dataclass
class _PendingMediaOp:
    """A queued media access awaiting the actuator."""

    request: IORequest
    done: Event
    enqueued_at: float


class SimulatedHDD(StorageDevice):
    """See module docstring."""

    def __init__(self, engine: Engine, config: HddConfig, faults=None) -> None:
        super().__init__(engine, config.name, config.rail_voltage, faults=faults)
        self.config = config
        # Hot-path aliases: the RPO cost function runs once per queued
        # candidate per actuator decision, so skip the config attribute
        # chains there.
        self._geometry = config.geometry
        self._seek = config.seek
        self.rotation = RotationModel(config.geometry)
        self.spindle = Spindle(
            engine,
            self.rail,
            config.spindle,
            start_spinning=True,
            name=f"{config.name}.spindle",
            faults=self.faults,
        )
        self.cache = WriteCache(engine, config.cache_bytes)
        self.link = HostLink(
            engine,
            self.rail,
            bandwidth=config.link_bandwidth,
            transfer_power_w=config.link_transfer_power_w,
            power_table=config.link_power_table,
            name=f"{config.name}.link",
        )
        self.rail.set_draw("electronics", config.electronics_power_w)
        self._media_queue: Deque[_PendingMediaOp] = deque()
        self._idle_condition = IdleCondition.IDLE_A
        self._head_byte = 0
        self._sequential_end: Optional[int] = None
        self._work_waiter: Optional[Event] = None
        self._standby_requested = False
        self.media_ops_served = 0
        self.seek_time_total = 0.0
        engine.process(self._actuator_loop())

    @property
    def capacity_bytes(self) -> int:
        return self.config.geometry.capacity_bytes

    @property
    def is_standby(self) -> bool:
        return not self.spindle.is_ready

    # -- host-facing IO -----------------------------------------------------

    def submit(self, request: IORequest) -> Event:
        self.check_request(request)
        done = Event(self.engine)
        self.engine.process(self._io(request, done))
        return done

    def _io(self, request: IORequest, done: Event):
        submit_time = self.engine.now
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.emit(
                EventKind.IO_SUBMIT,
                f"{self.name}.io",
                kind=request.kind.value,
                offset=request.offset,
                nbytes=request.nbytes,
            )
        self._standby_requested = False
        if self.faults.enabled:
            yield from self.faults.io_delay(f"{self.name}.io", request.kind.value)
        if not self.spindle.is_ready:
            # ATA semantics: any IO to a standby drive triggers spin-up,
            # and the command (cached or not) is not accepted until the
            # drive is ready -- the spin-up latency the paper warns about.
            self.engine.process(self.spindle.spin_up())
            yield self.spindle.ready_gate.wait_open()
        yield self.engine.timeout(self.config.command_time_s)
        if request.kind is IOKind.WRITE and self.config.write_cache_enabled:
            yield from self.link.transfer(request.nbytes)
            if tracer.enabled:
                # A hit completes in DRAM at DMA speed; a miss parks the
                # host behind the media drain until space frees up.
                tracer.emit(
                    EventKind.CACHE_HIT
                    if self.cache.fits(request.nbytes)
                    else EventKind.CACHE_MISS,
                    f"{self.name}.wcache",
                    nbytes=request.nbytes,
                    used=self.cache.used_bytes,
                )
            while not self.cache.fits(request.nbytes):
                yield self.cache.wait_for_space()
            self.cache.put(request.offset, request.nbytes)
            self._signal_work()
            self.record_completion(request)
            self._trace_complete(request, submit_time)
            done.succeed(IOResult(request, submit_time, self.engine.now))
            return
        if request.kind is IOKind.WRITE:
            # Write-through: host data must arrive before the media write.
            yield from self.link.transfer(request.nbytes)
        media_done = Event(self.engine)
        self._media_queue.append(_PendingMediaOp(request, media_done, self.engine.now))
        self._signal_work()
        yield media_done
        if request.kind is IOKind.READ:
            yield from self.link.transfer(request.nbytes)
        self.record_completion(request)
        self._trace_complete(request, submit_time)
        done.succeed(IOResult(request, submit_time, self.engine.now))

    def _trace_complete(self, request: IORequest, submit_time: float) -> None:
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.emit(
                EventKind.IO_COMPLETE,
                f"{self.name}.io",
                kind=request.kind.value,
                nbytes=request.nbytes,
                latency_s=self.engine.now - submit_time,
            )

    # -- EPC idle conditions ------------------------------------------------

    @property
    def idle_condition(self) -> IdleCondition:
        return self._idle_condition

    def set_idle_condition(self, condition: IdleCondition) -> None:
        """ATA EPC: move between idle sub-states (instant command).

        Power drops immediately; the *cost* is deferred -- the next media
        access pays the condition's recovery time (head reload and, for
        IDLE_C, spindle re-acceleration).

        Under a ``stuck_transitions`` fault plan the drive may silently
        refuse to leave IDLE_A (firmware rejecting the EPC command), the
        failure mode a power-control rollout has to detect from measured
        power rather than command status.
        """
        if (
            condition is not self._idle_condition
            and condition is not IdleCondition.IDLE_A
            and self.faults.enabled
            and self.faults.epc_refused(f"{self.name}.epc")
        ):
            return
        deratings = {
            IdleCondition.IDLE_A: 0.0,
            IdleCondition.IDLE_B: self.config.idle_b_savings_w,
            IdleCondition.IDLE_C: self.config.idle_c_savings_w,
        }
        previous = self._idle_condition
        self._idle_condition = condition
        self.spindle.set_derating(deratings[condition])
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.emit(
                EventKind.POWER_STATE,
                f"{self.name}.power",
                state=condition.value,
                from_state=previous.value,
                operational=True,
                saving_w=deratings[condition],
            )

    def _epc_recovery_s(self) -> float:
        if self._idle_condition is IdleCondition.IDLE_B:
            return self.config.idle_b_recovery_s
        if self._idle_condition is IdleCondition.IDLE_C:
            return self.config.idle_c_recovery_s
        return 0.0

    # -- standby control --------------------------------------------------------

    def enter_standby(self):
        """Process generator: ATA STANDBY IMMEDIATE.

        Flushes the write cache, then spins down.  Cancelled implicitly if
        an IO arrives mid-flush (the IO clears the request flag and the
        drive stays up).
        """
        self._standby_requested = True
        while not self.cache.is_empty or self._media_queue:
            if not self._standby_requested:
                return
            yield self.engine.timeout(1e-3)
        if not self._standby_requested or not self.spindle.is_ready:
            return
        yield from self.spindle.spin_down()

    def exit_standby(self):
        """Process generator: spin the drive back up (ATA IDLE IMMEDIATE)."""
        self._standby_requested = False
        yield from self.spindle.spin_up()

    # -- the actuator -------------------------------------------------------------

    def _signal_work(self) -> None:
        if self._work_waiter is not None:
            waiter, self._work_waiter = self._work_waiter, None
            waiter.succeed()

    def _actuator_loop(self):
        while True:
            if not self._media_queue and self.cache.is_empty:
                self._work_waiter = Event(self.engine)
                yield self._work_waiter
            yield self.spindle.ready_gate.wait_open()
            served = yield from self._serve_one()
            if served:
                self.media_ops_served += 1

    def _serve_one(self):
        """Pick the cheapest pending media op by RPO and execute it."""
        now = self.engine.now
        window = self.config.rpo_window
        cost_of = self._cost
        candidates: list[tuple[float, object]] = [
            (cost_of(op.request.offset, op.request.kind, now), op)
            for op in islice(self._media_queue, window)
        ]
        for entry in self.cache.window(window):
            candidates.append((cost_of(entry.offset, IOKind.WRITE, now), entry))
        if not candidates:
            return False
        __, picked = pick_next_rpo(
            candidates, cost=itemgetter(0), window=len(candidates)
        )
        cost, target = picked
        if isinstance(target, CachedWrite):
            yield from self._media_access(
                target.offset, target.nbytes, IOKind.WRITE, cost
            )
            self.cache.remove(target)
        else:
            assert isinstance(target, _PendingMediaOp)
            self._media_queue.remove(target)
            yield from self._media_access(
                target.request.offset, target.request.nbytes, target.request.kind, cost
            )
            target.done.succeed()
        return True

    def _cost(self, offset: int, kind: IOKind, now: float) -> float:
        # Inlined positioning_time() with the config lookups hoisted: this
        # runs for every candidate in the RPO window on every decision.
        if self._sequential_end == offset:
            return 0.0
        geometry = self._geometry
        distance = abs(
            geometry.radial_fraction(offset) - geometry.radial_fraction(self._head_byte)
        )
        seek = self._seek.seek_time(distance, kind is IOKind.WRITE)
        rot = self.rotation.rotational_wait(now, seek, geometry.angular_offset(offset))
        return seek + rot

    def _media_access(self, offset: int, nbytes: int, kind: IOKind, positioning: float):
        """Seek + rotational wait + media transfer, with power draws."""
        recovery = self._epc_recovery_s()
        if recovery > 0:
            if self.faults.enabled:
                # Head reload can fail transiently; each stuck attempt
                # re-pays the recovery latency.
                stuck = self.faults.transition_stuck(f"{self.name}.epc", "epc")
                for attempt in range(1, stuck + 1):
                    self.faults.note_retry(
                        "stuck_transition", f"{self.name}.epc", attempt
                    )
                    yield self.engine.timeout(recovery)
            # Leave the EPC idle condition: reload heads (and re-spin for
            # IDLE_C) before the access can proceed.
            self.set_idle_condition(IdleCondition.IDLE_A)
            yield self.engine.timeout(recovery)
        if positioning > 0:
            # Voice coil works during the seek portion; the model folds the
            # (unpowered) rotational wait into the same interval at the
            # blended cost already computed.
            seek_part = min(
                positioning,
                self.config.seek.seek_time(
                    abs(
                        self.config.geometry.radial_fraction(offset)
                        - self.config.geometry.radial_fraction(self._head_byte)
                    ),
                    is_write=(kind is IOKind.WRITE),
                ),
            )
            if seek_part > 0:
                self.rail.add_draw("voice_coil", self.config.seek_power_w)
                try:
                    yield self.engine.timeout(seek_part)
                finally:
                    self.rail.add_draw("voice_coil", -self.config.seek_power_w)
            rot_wait = positioning - seek_part
            if rot_wait > 0:
                yield self.engine.timeout(rot_wait)
        transfer = self.config.geometry.transfer_time(offset, nbytes)
        self.rail.add_draw("channel", self.config.transfer_power_w)
        try:
            yield self.engine.timeout(transfer)
        finally:
            self.rail.add_draw("channel", -self.config.transfer_power_w)
        self.seek_time_total += positioning
        self._head_byte = min(
            offset + nbytes, self.config.geometry.capacity_bytes - 1
        )
        self._sequential_end = offset + nbytes
