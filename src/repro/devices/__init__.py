"""Assembled storage-device models.

- :class:`~repro.devices.base.StorageDevice` -- the host-visible interface
  (submit IO, control power) shared by all devices.
- :class:`~repro.devices.ssd.SimulatedSSD` -- controller + DRAM write buffer
  + FTL + NAND array, with NVMe power states enforced by a
  :class:`~repro.devices.power_states.PowerGovernor` that rations concurrent
  program/erase operations.
- :class:`~repro.devices.hdd_drive.SimulatedHDD` -- actuator + spindle +
  write-back cache with rotational position ordering.
- :mod:`~repro.devices.link` -- the host interface (PCIe / SATA) bandwidth
  and PHY power, including the low-power link states ALPM drives.
- :mod:`~repro.devices.catalog` -- calibrated presets for the paper's
  evaluated devices (Table 1) plus the 860 EVO used in Fig. 7.
"""

from repro.devices.base import IOKind, IORequest, IOResult, StorageDevice
from repro.devices.catalog import (
    DEVICE_PRESETS,
    build_device,
    hdd_exos_7e2000,
    ssd_860evo,
    ssd_d3s4510,
    ssd_d7p5510,
    ssd_pm9a3,
)
from repro.devices.hdd_drive import HddConfig, SimulatedHDD
from repro.devices.link import HostLink, LinkPowerMode
from repro.devices.power_states import NvmePowerState, PowerGovernor
from repro.devices.ssd import SsdConfig, SimulatedSSD

__all__ = [
    "DEVICE_PRESETS",
    "HddConfig",
    "HostLink",
    "IOKind",
    "IORequest",
    "IOResult",
    "LinkPowerMode",
    "NvmePowerState",
    "PowerGovernor",
    "SimulatedHDD",
    "SimulatedSSD",
    "SsdConfig",
    "StorageDevice",
    "build_device",
    "hdd_exos_7e2000",
    "ssd_860evo",
    "ssd_d3s4510",
    "ssd_d7p5510",
    "ssd_pm9a3",
]
