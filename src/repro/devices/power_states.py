"""NVMe power states and the in-device power governor.

An NVMe power state caps the device's average power over any 10-second
window (NVM Express Base Spec, "Power Management").  Firmware enforces a cap
by rationing the operations that actually move power: NAND **program** and
**erase**.  Array reads draw an order of magnitude less and fit under any
operational cap, so firmware leaves them ungated -- this asymmetry is the
mechanism behind the paper's Figure 4 (write throughput collapses under
caps, read throughput barely moves).

:class:`PowerGovernor` implements that rationing as admission control over
"op power": each program/erase must be granted its average draw before it
may start, against a budget of ``cap - baseline``, where ``baseline`` is the
firmware's estimate of non-NAND power (idle + controller + interface).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional

from repro.obs.events import EventKind
from repro.sim.engine import Engine, Event, SimulationError

__all__ = ["NvmePowerState", "PowerGovernor"]


@dataclass(frozen=True)
class NvmePowerState:
    """One entry of an NVMe controller's power state table.

    Attributes:
        index: Power state number (ps0 is the highest-performance state).
        max_power_w: The cap (NVMe ``MP``), in watts.
        operational: ``False`` for idle states entered only when quiescent.
        entry_latency_s: NVMe ``ENLAT``.
        exit_latency_s: NVMe ``EXLAT``.
        idle_power_w: Device idle draw while resident in this state.
            For operational states this equals the device's normal idle.
    """

    index: int
    max_power_w: float
    operational: bool
    entry_latency_s: float
    exit_latency_s: float
    idle_power_w: float

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("power state index must be >= 0")
        if self.max_power_w <= 0 or self.idle_power_w < 0:
            raise ValueError("power figures must be positive")
        if self.entry_latency_s < 0 or self.exit_latency_s < 0:
            raise ValueError("latencies must be non-negative")


class PowerGovernor:
    """Admission control over power-hungry NAND operations.

    Grants are FIFO.  A grant of ``watts`` is allowed when the committed
    total plus ``watts`` fits the budget ``cap - (non-NAND power)``;
    otherwise the requester queues.  At least one operation is always
    admissible even if its draw alone exceeds the budget (a cap must not
    deadlock the device), mirroring real firmware behaviour where the cap
    is honoured on average.

    Two budgeting modes:

    - **feedback** (``other_power_fn`` given): the governor reads the
      device's live non-NAND power and budgets against it.  Because the
      controller/interface overhead shrinks together with the throughput
      the cap allows, this closed loop converges exactly to the trade-off
      the paper measures (seq-write ~74 %/~55 % under SSD2's ps1/ps2).
    - **static** (baseline only): a fixed firmware estimate of non-NAND
      power, kept as an ablation of the feedback design.

    Attributes:
        baseline_w: Firmware's static estimate of non-NAND device power.
        committed_w: Sum of currently granted op powers.
    """

    def __init__(
        self,
        engine: Engine,
        baseline_w: float,
        cap_w: Optional[float] = None,
        name: str = "governor",
        other_power_fn: Optional[Callable[[], float]] = None,
        headroom_w: float = 0.0,
    ) -> None:
        if baseline_w < 0:
            raise ValueError("baseline power must be non-negative")
        if headroom_w < 0:
            raise ValueError("headroom must be non-negative")
        self.engine = engine
        self.name = name
        self.baseline_w = baseline_w
        self.other_power_fn = other_power_fn
        self.headroom_w = headroom_w
        self._cap_w = cap_w
        self._intended_cap_w = cap_w
        self.committed_w = 0.0
        self.granted_ops = 0
        self._waiters: Deque[tuple[Event, float]] = deque()
        self.total_grants = 0
        self.total_stalls = 0
        self.failed = False
        self.throttle_scale = 1.0

    @property
    def cap_w(self) -> Optional[float]:
        """Active power cap; ``None`` means uncapped."""
        return self._cap_w

    @property
    def intended_cap_w(self) -> Optional[float]:
        """The cap the last Set Features command asked for.

        Equal to :attr:`cap_w` while the governor works; after
        :meth:`fail_unconstrained` it keeps tracking what firmware *should*
        be enforcing, so experiment accounting can report the violated cap
        (paper §4.1's failure hazard).
        """
        return self._intended_cap_w

    @property
    def budget_w(self) -> float:
        """Power currently available for NAND operations."""
        if self._cap_w is None:
            return float("inf")
        other = (
            self.other_power_fn()
            if self.other_power_fn is not None
            else self.baseline_w
        )
        return max(self._cap_w * self.throttle_scale - other - self.headroom_w, 0.0)

    @property
    def queued(self) -> int:
        return len(self._waiters)

    def _admissible(self, watts: float) -> bool:
        if self.granted_ops == 0:
            return True  # never deadlock: one op always runs
        return self.committed_w + watts <= self.budget_w + 1e-12

    def request(self, watts: float) -> Event:
        """Event granting permission to draw ``watts`` (FIFO order)."""
        if watts < 0:
            raise ValueError("op power must be non-negative")
        event = Event(self.engine)
        if not self._waiters and self._admissible(watts):
            self._grant(event, watts)
        else:
            self.total_stalls += 1
            tracer = self.engine.tracer
            if tracer.enabled:
                tracer.emit(
                    EventKind.GOV_THROTTLE,
                    self.name,
                    watts=watts,
                    queued=len(self._waiters) + 1,
                    committed_w=self.committed_w,
                )
            self._waiters.append((event, watts))
        return event

    def release(self, watts: float) -> None:
        """Return a grant and re-examine the queue."""
        if self.granted_ops <= 0:
            raise SimulationError(f"{self.name}: release without grant")
        self.granted_ops -= 1
        self.committed_w -= watts
        if -1e-9 < self.committed_w < 0 or (
            self.granted_ops == 0 and abs(self.committed_w) < 1e-9
        ):
            # Float round-off from repeated add/subtract cycles.
            self.committed_w = 0.0
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.emit(
                EventKind.GOV_RELEASE,
                self.name,
                watts=watts,
                committed_w=self.committed_w,
            )
        self._drain()

    def set_cap(self, cap_w: Optional[float]) -> None:
        """Change the active cap (entering a new power state).

        A failed governor (:meth:`fail_unconstrained`) records the intent
        but ignores the command -- the §4.1 failure mode where the device
        no longer responds to power control.
        """
        if cap_w is not None and cap_w <= 0:
            raise ValueError("cap must be positive or None")
        self._intended_cap_w = cap_w
        if self.failed:
            return
        self._cap_w = cap_w
        self._drain()

    def set_throttle(self, scale: float) -> None:
        """Derate the effective cap to ``scale`` x cap (thermal throttle)."""
        if not 0.0 < scale <= 1.0:
            raise ValueError("throttle scale must be in (0, 1]")
        self.throttle_scale = scale
        self._drain()

    def fail_unconstrained(self) -> None:
        """Stop enforcing the cap: the device reverts to uncapped draw.

        The paper-§4.1 hazard a :class:`~repro.core.safety.PowerDomain`
        must survive.  All queued admissions drain immediately and every
        later :meth:`set_cap` is ignored (only recorded as intent).
        """
        self.failed = True
        self._cap_w = None
        self._drain()

    def _grant(self, event: Event, watts: float, queued: bool = False) -> None:
        self.committed_w += watts
        self.granted_ops += 1
        self.total_grants += 1
        tracer = self.engine.tracer
        if tracer.enabled:
            # One admission event per request (not a request/grant pair):
            # governor traffic dominates a write-heavy trace, and the
            # queued flag preserves the only information a separate
            # request-time event would add.
            tracer.emit(
                EventKind.GOV_REQUEST,
                self.name,
                watts=watts,
                committed_w=self.committed_w,
                queued=queued,
            )
        event.succeed()

    def _drain(self) -> None:
        while self._waiters and self._admissible(self._waiters[0][1]):
            event, watts = self._waiters.popleft()
            self._grant(event, watts, queued=True)
