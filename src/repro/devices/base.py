"""Host-visible storage device interface.

All device models expose the same minimal contract the measurement harness
and the workload engine need:

- :meth:`StorageDevice.submit` -- asynchronous IO submission returning an
  event that fires with an :class:`IOResult`.
- power control entry points (``set_power_state``, ``enter_standby``,
  ``exit_standby``), each a process generator because transitions take
  simulated time.

Devices draw all power on their :class:`~repro.power.rail.PowerRail`, which
is where the simulated measurement chain attaches.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass

from repro.faults.injector import NULL_INJECTOR
from repro.power.rail import PowerRail
from repro.sim.engine import Engine, Event

__all__ = ["IOKind", "IORequest", "IOResult", "StorageDevice"]


class IOKind(enum.Enum):
    READ = "read"
    WRITE = "write"


@dataclass(frozen=True, slots=True)
class IORequest:
    """One host IO.

    Attributes:
        kind: Read or write.
        offset: Starting byte offset on the device.
        nbytes: Transfer length in bytes.
    """

    kind: IOKind
    offset: int
    nbytes: int

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise ValueError("offset must be non-negative")
        if self.nbytes <= 0:
            raise ValueError("nbytes must be positive")

    @property
    def end(self) -> int:
        return self.offset + self.nbytes


@dataclass(frozen=True, slots=True)
class IOResult:
    """Completion record for one IO.

    Attributes:
        request: The originating request.
        submit_time: Simulated time the device accepted the IO.
        complete_time: Simulated completion time.
    """

    request: IORequest
    submit_time: float
    complete_time: float

    @property
    def latency(self) -> float:
        return self.complete_time - self.submit_time


class StorageDevice(abc.ABC):
    """Common behaviour of all simulated drives."""

    def __init__(
        self, engine: Engine, name: str, rail_voltage: float, faults=None
    ) -> None:
        self.engine = engine
        self.name = name
        self.rail = PowerRail(engine, voltage=rail_voltage, name=f"{name}.rail")
        # Fault sites guard on ``self.faults.enabled``; the null injector
        # makes the clean path one attribute load per site.
        self.faults = faults if faults is not None else NULL_INJECTOR
        self.ios_completed = 0
        self.bytes_read = 0
        self.bytes_written = 0

    # -- IO ------------------------------------------------------------------

    @abc.abstractmethod
    def submit(self, request: IORequest) -> Event:
        """Submit an IO; the returned event fires with an :class:`IOResult`."""

    @property
    @abc.abstractmethod
    def capacity_bytes(self) -> int:
        """Addressable logical capacity."""

    def check_request(self, request: IORequest) -> None:
        """Validate a request against the device's address space."""
        if request.end > self.capacity_bytes:
            raise ValueError(
                f"{self.name}: IO [{request.offset}, {request.end}) exceeds "
                f"capacity {self.capacity_bytes}"
            )

    # -- power control ----------------------------------------------------------

    def set_power_state(self, index: int):
        """Process generator: select a device power state (NVMe-style).

        Devices without power states raise ``NotImplementedError`` -- the
        SATA devices in the study are controlled via ALPM/standby instead.
        """
        raise NotImplementedError(f"{self.name} has no power states")
        yield  # pragma: no cover - makes this a generator for subclasses

    def enter_standby(self):
        """Process generator: enter the device's lowest-power resident state."""
        raise NotImplementedError(f"{self.name} has no standby mode")
        yield  # pragma: no cover

    def exit_standby(self):
        """Process generator: return to the active/idle state."""
        raise NotImplementedError(f"{self.name} has no standby mode")
        yield  # pragma: no cover

    # -- accounting -------------------------------------------------------------

    def record_completion(self, request: IORequest) -> None:
        self.ios_completed += 1
        if request.kind is IOKind.READ:
            self.bytes_read += request.nbytes
        else:
            self.bytes_written += request.nbytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
