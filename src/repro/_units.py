"""Unit constants and formatting helpers.

Conventions used throughout the project:

- **time** is a float in seconds (microsecond literals via :data:`USEC`),
- **sizes** are integers in bytes (:data:`KiB`, :data:`MiB`, :data:`GiB`),
- **power** is a float in watts, **energy** in joules,
- **throughput** in bytes/second unless a helper says otherwise.
"""

from __future__ import annotations

__all__ = [
    "GiB",
    "KiB",
    "MiB",
    "MSEC",
    "USEC",
    "fmt_bytes",
    "fmt_duration",
    "mib_per_s",
    "parse_size",
]

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

USEC = 1e-6
MSEC = 1e-3

_SUFFIXES = {
    "": 1,
    "b": 1,
    "k": KiB,
    "kib": KiB,
    "kb": KiB,
    "m": MiB,
    "mib": MiB,
    "mb": MiB,
    "g": GiB,
    "gib": GiB,
    "gb": GiB,
}


def parse_size(text: str | int) -> int:
    """Parse a fio-style size string like ``"256k"`` or ``"2MiB"`` to bytes.

    Integers pass through unchanged.

    >>> parse_size("4k"), parse_size("2MiB"), parse_size(512)
    (4096, 2097152, 512)
    """
    if isinstance(text, int):
        return text
    stripped = text.strip().lower()
    digits = stripped.rstrip("kmgib ")
    suffix = stripped[len(digits):].strip()
    if suffix not in _SUFFIXES:
        raise ValueError(f"unknown size suffix in {text!r}")
    try:
        value = float(digits)
    except ValueError:
        raise ValueError(f"cannot parse size {text!r}") from None
    result = value * _SUFFIXES[suffix]
    if result != int(result):
        raise ValueError(f"size {text!r} is not a whole number of bytes")
    return int(result)


def fmt_bytes(n: float) -> str:
    """Human-readable size, binary units.

    >>> fmt_bytes(4096), fmt_bytes(3.5 * GiB)
    ('4.0 KiB', '3.5 GiB')
    """
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024 or unit == "TiB":
            return f"{value:.1f} {unit}"
        value /= 1024
    raise AssertionError("unreachable")


def fmt_duration(seconds: float) -> str:
    """Human-readable duration.

    >>> fmt_duration(0.000035)
    '35.0 us'
    """
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f} ms"
    return f"{seconds:.2f} s"


def mib_per_s(bytes_per_second: float) -> float:
    """Convert bytes/s to MiB/s (the unit the paper's figures use)."""
    return bytes_per_second / MiB
