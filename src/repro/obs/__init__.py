"""Observability: structured tracing, sim-time metrics, export, profiling.

The paper's whole contribution is visibility into *why* device power
changes; ``repro.obs`` gives the simulators the same visibility.  See
``events`` for the tracer and event taxonomy, ``metrics`` for sim-time
aggregation, ``aggregate`` for mergeable cross-point rollups, ``export``
for JSONL / Perfetto output, and ``profile`` for wall-clock runner
telemetry.
"""

from repro.obs.aggregate import (
    BucketedHistogram,
    SweepRollup,
    merge_snapshots,
)
from repro.obs.events import (
    EventKind,
    NULL_TRACER,
    NullTracer,
    SimEvent,
    Tracer,
)
from repro.obs.export import (
    event_to_dict,
    events_to_chrome_trace,
    load_jsonl,
    write_chrome_trace,
    write_events_jsonl,
    write_metrics_json,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsCollector,
    MetricsRegistry,
    StateTimer,
    TimeWeightedGauge,
)
from repro.obs.profile import PointProfile, RunProfiler

__all__ = [
    "BucketedHistogram",
    "Counter",
    "EventKind",
    "Gauge",
    "Histogram",
    "MetricsCollector",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "PointProfile",
    "RunProfiler",
    "SimEvent",
    "StateTimer",
    "SweepRollup",
    "TimeWeightedGauge",
    "Tracer",
    "event_to_dict",
    "events_to_chrome_trace",
    "load_jsonl",
    "merge_snapshots",
    "write_chrome_trace",
    "write_events_jsonl",
    "write_metrics_json",
]
