"""Trace and metrics export: JSONL, Chrome ``trace_event``, metrics JSON.

Three serializations of one observability layer:

- **JSONL** -- one event per line, machine-friendly, streams well, and is
  what "Performance Modeling of Data Storage Systems using Generative
  Models"-style pipelines want as training input;
- **Chrome trace-event JSON** -- loads directly in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``.  Each experiment
  scope becomes a process group and each component a named track, with
  paired ``*_START``/``*_END`` events rendered as duration slices and
  everything else as instants.  Power-state transitions additionally emit
  counter samples so the resident state plots as a stepped series;
- **metrics JSON** -- a :class:`~repro.obs.metrics.MetricsRegistry`
  snapshot plus optional runner-profile and cache statistics.

All output is deterministic: keys sorted, events in ``(time, seq)`` emit
order, no wall-clock timestamps.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from repro.obs.events import INTERVAL_PAIRS, EventKind, SimEvent

__all__ = [
    "event_to_dict",
    "events_to_chrome_trace",
    "load_jsonl",
    "write_chrome_trace",
    "write_events_jsonl",
    "write_metrics_json",
]

_PathLike = Union[str, Path]

#: Duration-slice display names for the paired kinds.
_SLICE_NAMES = {
    EventKind.GC_START: "gc",
    EventKind.SPINUP_START: "spin_up",
    EventKind.SPINDOWN_START: "spin_down",
    EventKind.ALPM_START: "alpm",
    EventKind.FAULT_START: "fault",
}
_END_TO_START = {end: start for start, end in INTERVAL_PAIRS.items()}


def event_to_dict(event: SimEvent) -> dict:
    """Flatten one event to a JSON-ready mapping."""
    return {
        "t": event.time,
        "seq": event.seq,
        "kind": event.kind.value,
        "component": event.component,
        "scope": event.scope,
        "fields": dict(sorted(event.fields.items())),
    }


def write_events_jsonl(events: Iterable[SimEvent], path: _PathLike) -> int:
    """Write one JSON object per event; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for event in events:
            fh.write(json.dumps(event_to_dict(event), sort_keys=True))
            fh.write("\n")
            count += 1
    return count


def load_jsonl(path: _PathLike) -> list[dict]:
    """Parse a JSONL event file back into dictionaries (for analysis)."""
    out = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


def _json_safe(value: object) -> object:
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


def events_to_chrome_trace(events: Sequence[SimEvent]) -> dict:
    """Convert events to the Chrome ``trace_event`` JSON object format.

    Layout: one *process* per scope (experiment / sweep point), one
    *thread* per component within it, named via metadata events so
    Perfetto shows readable track labels.  Timestamps are simulated
    microseconds.  Unbalanced interval ends (an ``*_END`` with no open
    start, e.g. when tracing attached mid-interval) degrade to instants
    rather than corrupting the nesting.
    """
    trace: list[dict] = []
    pids: dict[Optional[str], int] = {}
    tids: dict[tuple[int, str], int] = {}
    open_slices: dict[tuple[int, int, EventKind], int] = {}

    def pid_for(scope: Optional[str]) -> int:
        pid = pids.get(scope)
        if pid is None:
            pid = len(pids) + 1
            pids[scope] = pid
            trace.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "args": {"name": scope or "simulation"},
                }
            )
        return pid

    def tid_for(pid: int, component: str) -> int:
        tid = tids.get((pid, component))
        if tid is None:
            tid = sum(1 for (p, _c) in tids if p == pid) + 1
            tids[(pid, component)] = tid
            trace.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": component},
                }
            )
        return tid

    for event in events:
        if event.kind is EventKind.MARK:
            continue
        pid = pid_for(event.scope)
        tid = tid_for(pid, event.component)
        ts = event.time * 1e6
        args = {k: _json_safe(v) for k, v in sorted(event.fields.items())}
        category = event.kind.value.split("_")[0]
        if event.kind in INTERVAL_PAIRS:
            open_slices[(pid, tid, event.kind)] = (
                open_slices.get((pid, tid, event.kind), 0) + 1
            )
            trace.append(
                {
                    "name": _SLICE_NAMES[event.kind],
                    "cat": category,
                    "ph": "B",
                    "ts": ts,
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
            continue
        if event.kind in _END_TO_START:
            start_kind = _END_TO_START[event.kind]
            depth = open_slices.get((pid, tid, start_kind), 0)
            if depth > 0:
                open_slices[(pid, tid, start_kind)] = depth - 1
                trace.append(
                    {
                        "name": _SLICE_NAMES[start_kind],
                        "cat": category,
                        "ph": "E",
                        "ts": ts,
                        "pid": pid,
                        "tid": tid,
                        "args": args,
                    }
                )
                continue
            # Fall through: an end with no matching begin becomes an instant.
        trace.append(
            {
                "name": event.kind.value,
                "cat": category,
                "ph": "i",
                "s": "t",
                "ts": ts,
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
        if event.kind is EventKind.POWER_STATE and "state_index" in event.fields:
            # A stepped counter series: the resident power state over time.
            trace.append(
                {
                    "name": f"{event.component} state",
                    "cat": "power",
                    "ph": "C",
                    "ts": ts,
                    "pid": pid,
                    "args": {"state": event.fields["state_index"]},
                }
            )
    return {"traceEvents": trace, "displayTimeUnit": "ms"}


def write_chrome_trace(events: Sequence[SimEvent], path: _PathLike) -> int:
    """Write a Perfetto-loadable trace file; returns the event count."""
    payload = events_to_chrome_trace(events)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, sort_keys=True)
    return len(payload["traceEvents"])


def write_metrics_json(
    snapshot: dict,
    path: _PathLike,
    profile: Optional[dict] = None,
    cache: Optional[dict] = None,
) -> None:
    """Write a metrics snapshot (plus optional profile/cache sections)."""
    payload: dict = {"metrics": snapshot}
    if profile is not None:
        payload["profile"] = profile
    if cache is not None:
        payload["cache"] = cache
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, sort_keys=True, indent=2)
        fh.write("\n")
