"""Mergeable cross-point metrics: fleet rollups with honest percentiles.

:class:`~repro.obs.metrics.MetricsCollector` summarizes *one* run;
ROADMAP item 1 (fleet-scale simulation) needs views across *hundreds* --
"p99 write latency per device class", "energy per power state across the
sweep".  Naively averaging per-point percentiles is statistically wrong
(the mean of p99s is not the p99 of the merged population), so this
module provides the two pieces a distributed metrics pipeline uses
instead:

- :class:`BucketedHistogram` -- observations binned into fixed log-spaced
  buckets.  Merging is exact (bucket counts add), associative, and
  commutative, so shards roll up in any order; quantiles are *bounded*
  rather than exact -- the reported value is the upper edge of the
  quantile's bucket (clamped to the observed max), an honest "at most
  this" instead of a fabricated point estimate.
- :class:`SweepRollup` -- group-by aggregation over sweep results
  (device class x power state by default): point counts, IO and byte
  totals, energy integrals, and a merged latency histogram per group,
  built from the raw per-IO records so percentiles reflect the whole
  population, not per-point summaries.

:func:`merge_snapshots` applies the same discipline to
:class:`~repro.obs.metrics.MetricsRegistry` snapshots: counters and
durations add, means recompute from merged sums, and anything that
cannot be merged honestly (exact-histogram percentiles, time-weighted
means whose spans are gone) is dropped rather than guessed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence, Tuple

__all__ = ["BucketedHistogram", "GroupStats", "SweepRollup", "merge_snapshots"]

#: Default bucket upper bounds: 5 per decade, 1 microsecond to 100 s --
#: wide enough for every latency this simulator can produce, fine enough
#: that a bucket-edge quantile is within ~58 % of the true value.
DEFAULT_BOUNDS: Tuple[float, ...] = tuple(
    10.0 ** (exponent / 5.0) for exponent in range(-30, 11)
)


class BucketedHistogram:
    """Fixed-bucket histogram whose merge is exact and associative.

    The trade every production metrics pipeline makes: give up exact
    quantiles (keep bucket counts, not samples) to gain O(1) memory and
    loss-free merging.  Two histograms over the same bounds merge by
    adding counts -- the result is byte-identical whichever order the
    shards arrive in.

    Quantiles are conservative upper bounds: the upper edge of the first
    bucket whose cumulative count reaches the requested rank, clamped to
    the observed maximum.  ``quantile(q)`` therefore never under-reports
    a tail -- the property that makes merged p99s honest.
    """

    __slots__ = ("bounds", "counts", "count", "total", "_min", "_max")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BOUNDS) -> None:
        bounds = tuple(bounds)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ValueError("bounds must be non-empty and increasing")
        self.bounds = bounds
        # One overflow bucket past the last bound.
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self._min = math.inf
        self._max = -math.inf

    @classmethod
    def from_samples(
        cls,
        samples: Iterable[float],
        bounds: Sequence[float] = DEFAULT_BOUNDS,
    ) -> "BucketedHistogram":
        histogram = cls(bounds)
        for sample in samples:
            histogram.observe(sample)
        return histogram

    def observe(self, value: float) -> None:
        # Binary search over the static bounds (bisect by hand keeps the
        # slots-only class dependency-free).
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        self.counts[lo] += 1
        self.count += 1
        self.total += value
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    @property
    def mean(self) -> float:
        """Exact mean (sums merge exactly, unlike quantiles)."""
        if self.count == 0:
            return 0.0
        return self.total / self.count

    @property
    def min(self) -> float:
        return self._min if self.count else 0.0

    @property
    def max(self) -> float:
        return self._max if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper bound on the q-quantile (0.0 when empty).

        Nearest-rank over the cumulative bucket counts, reported as the
        matched bucket's upper edge and clamped to the observed max, so
        for any sample population ``bucketed.quantile(q) >=
        exact_nearest_rank(q)``.
        """
        if not 0 <= q <= 1:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = min(self.count - 1, int(q * self.count))
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen > rank:
                if index >= len(self.bounds):
                    return self._max
                return min(self.bounds[index], self._max)
        return self._max

    def merge(self, other: "BucketedHistogram") -> "BucketedHistogram":
        """Loss-free associative merge (same bounds required)."""
        if self.bounds != other.bounds:
            raise ValueError(
                "cannot merge histograms with different bucket bounds"
            )
        merged = BucketedHistogram(self.bounds)
        merged.counts = [a + b for a, b in zip(self.counts, other.counts)]
        merged.count = self.count + other.count
        merged.total = self.total + other.total
        merged._min = min(self._min, other._min)
        merged._max = max(self._max, other._max)
        return merged

    def snapshot(self) -> dict:
        """JSON-ready form; round-trips through :meth:`from_snapshot`."""
        if self.count == 0:
            return {"type": "bucketed_histogram", "count": 0}
        return {
            "type": "bucketed_histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p99": self.quantile(0.99),
            "bounds": list(self.bounds),
            "counts": list(self.counts),
        }

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "BucketedHistogram":
        if snapshot.get("count", 0) == 0:
            return cls()
        histogram = cls(snapshot["bounds"])
        histogram.counts = list(snapshot["counts"])
        histogram.count = snapshot["count"]
        histogram.total = snapshot["sum"]
        histogram._min = snapshot["min"]
        histogram._max = snapshot["max"]
        return histogram


@dataclass
class GroupStats:
    """Aggregates for one rollup group (e.g. one device x power state).

    ``energy_j`` integrates true mean power over each point's simulated
    span -- the quantity the paper's adaptive-power argument is about.
    """

    points: int = 0
    ios: int = 0
    bytes: int = 0
    sim_time_s: float = 0.0
    energy_j: float = 0.0
    mean_power_w_sum: float = 0.0
    throughput_mib_s_sum: float = 0.0
    latency: BucketedHistogram = field(default_factory=BucketedHistogram)

    @property
    def mean_power_w(self) -> float:
        return self.mean_power_w_sum / self.points if self.points else 0.0

    @property
    def mean_throughput_mib_s(self) -> float:
        return self.throughput_mib_s_sum / self.points if self.points else 0.0

    def merge(self, other: "GroupStats") -> "GroupStats":
        return GroupStats(
            points=self.points + other.points,
            ios=self.ios + other.ios,
            bytes=self.bytes + other.bytes,
            sim_time_s=self.sim_time_s + other.sim_time_s,
            energy_j=self.energy_j + other.energy_j,
            mean_power_w_sum=self.mean_power_w_sum + other.mean_power_w_sum,
            throughput_mib_s_sum=(
                self.throughput_mib_s_sum + other.throughput_mib_s_sum
            ),
            latency=self.latency.merge(other.latency),
        )

    def snapshot(self) -> dict:
        return {
            "points": self.points,
            "ios": self.ios,
            "bytes": self.bytes,
            "sim_time_s": self.sim_time_s,
            "energy_j": self.energy_j,
            "mean_power_w": self.mean_power_w,
            "mean_throughput_mib_s": self.mean_throughput_mib_s,
            "latency": self.latency.snapshot(),
        }


@dataclass(frozen=True)
class SweepRollup:
    """Sweep results grouped into fleet views, mergeable across sweeps.

    ``groups`` maps a group key -- the values of ``group_by`` fields,
    stringified -- to its :class:`GroupStats`.  ``merge`` unions two
    rollups (same ``group_by`` required), so per-device-class /
    per-power-state views accumulate across sharded or resumed sweeps
    exactly like the histograms they contain.
    """

    group_by: Tuple[str, ...]
    groups: Dict[Tuple[str, ...], GroupStats]

    @classmethod
    def from_results(
        cls,
        results,
        group_by: Tuple[str, ...] = ("device", "power_state"),
    ) -> "SweepRollup":
        """Build a rollup from sweep results.

        Args:
            results: An iterable of
                :class:`~repro.core.experiment.ExperimentResult` (or a
                mapping whose values are results, e.g.
                ``SweepOutcome.results``).
            group_by: Config dimensions to group on; supported names are
                ``device`` (the device label), ``power_state``,
                ``pattern``, ``block_size``, and ``iodepth``.
        """
        if hasattr(results, "values"):
            results = results.values()
        groups: Dict[Tuple[str, ...], GroupStats] = {}
        for result in results:
            key = tuple(
                str(_group_field(result, name)) for name in group_by
            )
            stats = groups.get(key)
            if stats is None:
                stats = groups[key] = GroupStats()
            stats.points += 1
            job = result.job
            stats.ios += len(job.records)
            stats.bytes += sum(r.nbytes for r in job.records)
            stats.sim_time_s += job.duration
            stats.energy_j += result.true_mean_power_w * job.duration
            stats.mean_power_w_sum += result.mean_power_w
            stats.throughput_mib_s_sum += result.throughput_mib_s
            for record in job.records:
                stats.latency.observe(record.latency)
        return cls(group_by=tuple(group_by), groups=groups)

    def merge(self, other: "SweepRollup") -> "SweepRollup":
        """Associative union of two rollups over the same grouping."""
        if self.group_by != other.group_by:
            raise ValueError(
                "cannot merge rollups grouped by different dimensions"
            )
        groups = dict(self.groups)
        for key, stats in other.groups.items():
            mine = groups.get(key)
            groups[key] = stats if mine is None else mine.merge(stats)
        return SweepRollup(group_by=self.group_by, groups=groups)

    def snapshot(self) -> dict:
        """JSON-ready ``{group label: group summary}``, keys sorted."""
        return {
            "group_by": list(self.group_by),
            "groups": {
                "/".join(key): self.groups[key].snapshot()
                for key in sorted(self.groups)
            },
        }


def _group_field(result, name: str):
    config = result.config
    if name == "device":
        return config.device_label
    if name == "power_state":
        return config.power_state
    if name == "pattern":
        return config.job.pattern.value
    if name == "block_size":
        return config.job.block_size
    if name == "iodepth":
        return config.job.iodepth
    raise ValueError(f"unknown rollup dimension {name!r}")


def merge_snapshots(a: dict, b: dict) -> dict:
    """Merge two :meth:`MetricsRegistry.snapshot` mappings honestly.

    Per metric type:

    - ``counter``: values add.
    - ``state_timer``: per-state durations add; fractions recompute from
      the merged durations; the instantaneous ``state`` is dropped (two
      registries have no single current state).
    - ``histogram`` (exact samples): count/sum/min/max add or extremize
      and the mean recomputes; **percentiles are dropped** -- the p99 of
      a merged population cannot be derived from two p99s, and reporting
      a made-up one is how fleet dashboards lie.
    - ``bucketed_histogram``: loss-free count merge; percentiles stay.
    - ``gauge`` / ``time_weighted_gauge``: last-value semantics do not
      merge; the max of the two values is kept (a conservative "highest
      observed anywhere") and time-weighted means are dropped with their
      spans.

    Only series present in both inputs need merging; disjoint series
    pass through unchanged.  The operation is associative, so any merge
    tree over sharded snapshots yields the same result.
    """
    merged: dict = {}
    for name in sorted(set(a) | set(b)):
        series_a = a.get(name, {})
        series_b = b.get(name, {})
        out: dict = {}
        for label in sorted(set(series_a) | set(series_b)):
            summary_a = series_a.get(label)
            summary_b = series_b.get(label)
            if summary_a is None or summary_b is None:
                out[label] = dict(summary_a or summary_b)
            else:
                out[label] = _merge_summaries(summary_a, summary_b)
        merged[name] = out
    return merged


def _merge_summaries(a: dict, b: dict) -> dict:
    kind = a.get("type")
    if kind != b.get("type"):
        raise ValueError(
            f"cannot merge series of different types: {a.get('type')!r} "
            f"vs {b.get('type')!r}"
        )
    if kind == "counter":
        return {"type": "counter", "value": a["value"] + b["value"]}
    if kind == "state_timer":
        durations: Dict[str, float] = dict(a.get("durations_s", {}))
        for state, duration in b.get("durations_s", {}).items():
            durations[state] = durations.get(state, 0.0) + duration
        total = sum(durations.values())
        durations = {k: durations[k] for k in sorted(durations)}
        return {
            "type": "state_timer",
            "state": None,
            "durations_s": durations,
            "fractions": {
                k: (v / total if total > 0 else 0.0)
                for k, v in durations.items()
            },
        }
    if kind == "histogram":
        if a.get("count", 0) == 0:
            return dict(b)
        if b.get("count", 0) == 0:
            return dict(a)
        count = a["count"] + b["count"]
        total = a["sum"] + b["sum"]
        return {
            "type": "histogram",
            "count": count,
            "sum": total,
            "min": min(a["min"], b["min"]),
            "max": max(a["max"], b["max"]),
            "mean": total / count,
            # No p50/p99: exact-sample percentiles do not merge.
        }
    if kind == "bucketed_histogram":
        if a.get("count", 0) == 0:
            return dict(b)
        if b.get("count", 0) == 0:
            return dict(a)
        return (
            BucketedHistogram.from_snapshot(a)
            .merge(BucketedHistogram.from_snapshot(b))
            .snapshot()
        )
    if kind in ("gauge", "time_weighted_gauge"):
        return {"type": kind, "value": max(a["value"], b["value"])}
    raise ValueError(f"unknown metric type {kind!r}")
