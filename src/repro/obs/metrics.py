"""Sim-time metrics: counters, gauges, histograms, and state timers.

Wall-clock metric libraries assume a real clock; a simulator needs
*sim-time-weighted* aggregation -- "fraction of the run spent in ps2" or
"mean outstanding queue depth" are integrals over simulated time, not
sample averages.  This module provides:

- :class:`Counter` / :class:`Gauge` / :class:`Histogram` -- the plain
  trio, label-scoped through :class:`MetricsRegistry`;
- :class:`TimeWeightedGauge` -- a gauge whose mean is the time integral of
  its value divided by elapsed sim time (queue depths, buffer fill);
- :class:`StateTimer` -- categorical occupancy (power states, link modes):
  how long each state was resident and what fraction of the span;
- :class:`MetricsRegistry` -- get-or-create registry keyed by metric name
  plus a frozen label set (``device="ssd2", kind="write"``);
- :class:`MetricsCollector` -- a tracer subscriber that derives the
  standard mechanism metrics from the event stream, so metrics need no
  instrumentation beyond the tracing already in place.

Everything here is deterministic: label sets are sorted tuples, snapshots
sort their keys, and no builtin ``hash()`` ordering leaks through.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.events import EventKind, SimEvent

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsCollector",
    "MetricsRegistry",
    "StateTimer",
    "TimeWeightedGauge",
]


class Counter:
    """Monotone event count (IOs completed, governor stalls, GC erases)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def snapshot(self, end_time: Optional[float] = None) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self, end_time: Optional[float] = None) -> dict:
        return {"type": "gauge", "value": self.value}


class TimeWeightedGauge:
    """A gauge integrated over simulated time.

    ``set(v, now)`` closes the interval since the previous update at the
    old value and opens a new one; ``mean(end)`` is the integral divided
    by the observed span.  The paper-relevant uses are mean outstanding
    queue depth and mean buffer occupancy.

    Simulated time moving *backwards* is not an error: each experiment in
    a sweep restarts its engine clock at zero, so a collector shared
    across points sees a time reset per point.  A backwards update starts
    a new integration epoch -- the accumulated integral and span carry
    over, so ``mean`` remains the time-weighted mean over all epochs
    (the unobserved tail of a finished epoch contributes nothing).
    """

    __slots__ = ("value", "_integral", "_span", "_last", "_seen")

    def __init__(self) -> None:
        self.value = 0.0
        self._integral = 0.0
        self._span = 0.0
        self._last = 0.0
        self._seen = False

    def set(self, value: float, now: float) -> None:
        self._advance(now)
        self.value = value

    def add(self, delta: float, now: float) -> None:
        self.set(self.value + delta, now)

    def _advance(self, now: float) -> None:
        if not self._seen:
            self._seen = True
        elif now >= self._last:
            self._integral += self.value * (now - self._last)
            self._span += now - self._last
        # else: clock reset (new sweep point) -- new epoch, keep totals.
        self._last = now

    def mean(self, end_time: Optional[float] = None) -> float:
        integral, span = self._integral, self._span
        if end_time is not None and self._seen and end_time > self._last:
            integral += self.value * (end_time - self._last)
            span += end_time - self._last
        if span <= 0:
            return self.value
        return integral / span

    def snapshot(self, end_time: Optional[float] = None) -> dict:
        return {
            "type": "time_weighted_gauge",
            "value": self.value,
            "mean": self.mean(end_time),
        }


class StateTimer:
    """Categorical state occupancy over simulated time.

    Tracks how long each named state was resident.  ``fractions`` divides
    by the full observed span, which is how the paper reports power-state
    residency (e.g. "the device idled in ps4 for 83 % of the trace").

    Like :class:`TimeWeightedGauge`, a backwards timestamp means the
    engine clock was reset (a new sweep point): residency accumulated so
    far is kept and a new epoch begins at the reset time.
    """

    __slots__ = ("state", "_durations", "_last", "_seen")

    def __init__(self) -> None:
        self.state: Optional[str] = None
        self._durations: dict[str, float] = {}
        self._last = 0.0
        self._seen = False

    def set_state(self, state: str, now: float) -> None:
        if not self._seen:
            self._seen = True
        elif now >= self._last:
            if self.state is not None:
                self._durations[self.state] = (
                    self._durations.get(self.state, 0.0) + (now - self._last)
                )
        # else: clock reset (new sweep point) -- new epoch, keep totals.
        self._last = now
        self.state = state

    def durations(self, end_time: Optional[float] = None) -> dict[str, float]:
        out = dict(self._durations)
        end = self._last if end_time is None else max(end_time, self._last)
        if self.state is not None and end > self._last:
            out[self.state] = out.get(self.state, 0.0) + (end - self._last)
        return {k: out[k] for k in sorted(out)}

    def fractions(self, end_time: Optional[float] = None) -> dict[str, float]:
        durations = self.durations(end_time)
        total = sum(durations.values())
        if total <= 0:
            return {k: 0.0 for k in durations}
        return {k: v / total for k, v in durations.items()}

    def snapshot(self, end_time: Optional[float] = None) -> dict:
        return {
            "type": "state_timer",
            "state": self.state,
            "durations_s": self.durations(end_time),
            "fractions": self.fractions(end_time),
        }


class Histogram:
    """Exact-sample histogram (simulation scale: thousands, not billions).

    Stores raw observations so quantiles are exact; the snapshot reports
    count/sum/min/max and the usual latency quantiles.
    """

    __slots__ = ("_samples",)

    def __init__(self) -> None:
        self._samples: list[float] = []

    def observe(self, value: float) -> None:
        self._samples.append(value)

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def total(self) -> float:
        return sum(self._samples)

    def quantile(self, q: float) -> float:
        """Exact empirical quantile (nearest-rank on the sorted samples)."""
        if not 0 <= q <= 1:
            raise ValueError("quantile must be in [0, 1]")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    def snapshot(self, end_time: Optional[float] = None) -> dict:
        if not self._samples:
            return {"type": "histogram", "count": 0}
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": min(self._samples),
            "max": max(self._samples),
            "mean": self.total / self.count,
            "p50": self.quantile(0.50),
            "p99": self.quantile(0.99),
        }


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Get-or-create registry of labelled metric series.

    A series is identified by ``(name, frozen labels)``; requesting the
    same identity twice returns the same instance, so instrumentation can
    be stateless.  Requesting an existing name with a different metric
    type is an error (it would silently fork the series).
    """

    def __init__(self) -> None:
        self._series: dict[tuple[str, tuple], object] = {}

    def _get(self, factory, name: str, labels: dict):
        key = (name, _label_key(labels))
        metric = self._series.get(key)
        if metric is None:
            metric = factory()
            self._series[key] = metric
        elif not isinstance(metric, factory):
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def time_weighted_gauge(self, name: str, **labels) -> TimeWeightedGauge:
        return self._get(TimeWeightedGauge, name, labels)

    def state_timer(self, name: str, **labels) -> StateTimer:
        return self._get(StateTimer, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get(Histogram, name, labels)

    def __len__(self) -> int:
        return len(self._series)

    def snapshot(self, end_time: Optional[float] = None) -> dict:
        """JSON-ready nested mapping ``{name: {label string: summary}}``.

        Keys are sorted so the snapshot is byte-stable for a given run.
        """
        out: dict[str, dict] = {}
        for (name, labels), metric in sorted(
            self._series.items(), key=lambda item: item[0]
        ):
            label_str = ",".join(f"{k}={v}" for k, v in labels) or "_"
            out.setdefault(name, {})[label_str] = metric.snapshot(end_time)
        return out


class MetricsCollector:
    """Derive the standard mechanism metrics from a tracer's event stream.

    Subscribe it to a :class:`~repro.obs.events.Tracer` and every
    simulation instrumented for tracing feeds the registry for free:

    - ``io.submitted`` / ``io.completed`` counters and ``io.latency_s``
      histograms per ``(component, kind)``;
    - ``io.outstanding`` sim-time-weighted queue depth per component;
    - ``power.state`` residency timers per component (the paper's
      power-state occupancy);
    - ``governor.requests/throttles/releases`` counters (plus
      ``governor.stalled_admissions``) and the ``governor.committed_w``
      time-weighted gauge;
    - ``gc.collections`` / ``gc.pages_relocated`` / ``spindle.spinups`` /
      ``alpm.transitions`` / ``cache.hits`` / ``cache.misses`` counters;
    - ``faults.injected`` / ``faults.retries`` counters per fault kind and
      the ``faults.degraded`` residency timer (share of sim time inside
      injected fault episodes);
    - ``policy.set_points`` counters and the ``policy.target_w``
      time-weighted gauge per policy component.

    The collector tracks the latest event timestamp and uses it as the
    snapshot end time.  One collector may span a whole sweep: each
    point's clock restart simply opens a new epoch in the time-weighted
    instruments (see :class:`TimeWeightedGauge`).
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.last_time = 0.0
        self.events_seen = 0
        # Instrument memo: registry get-or-create sorts and stringifies a
        # label set on every call, which at one-to-three lookups per event
        # dominates collection cost.  All collector-made series use the
        # same label shape, so ``(name, component, io-kind)`` resolves each
        # instrument once and a tuple-keyed dict serves the hot path.
        self._memo: dict[tuple, object] = {}

    def _series(self, factory, name: str, component: str, iokind=None):
        key = (name, component, iokind)
        metric = self._memo.get(key)
        if metric is None:
            if iokind is None:
                metric = factory(name, component=component)
            else:
                metric = factory(name, component=component, kind=iokind)
            self._memo[key] = metric
        return metric

    def __call__(self, event: SimEvent) -> None:
        self.events_seen += 1
        # Plain assignment, not max: event time is monotone within one
        # engine, and a *drop* means a sweep moved to its next point --
        # the snapshot should finalize at the current epoch's clock.
        self.last_time = event.time
        registry = self.registry
        series = self._series
        kind = event.kind
        component = event.component
        fields = event.fields
        if kind is EventKind.IO_SUBMIT:
            series(
                registry.counter, "io.submitted", component,
                fields.get("kind", "?"),
            ).inc()
            series(
                registry.time_weighted_gauge, "io.outstanding", component
            ).add(1.0, event.time)
        elif kind is EventKind.IO_COMPLETE:
            series(
                registry.counter, "io.completed", component,
                fields.get("kind", "?"),
            ).inc()
            series(
                registry.time_weighted_gauge, "io.outstanding", component
            ).add(-1.0, event.time)
            if "latency_s" in fields:
                series(
                    registry.histogram, "io.latency_s", component,
                    fields.get("kind", "?"),
                ).observe(fields["latency_s"])
        elif kind is EventKind.POWER_STATE:
            series(registry.state_timer, "power.state", component).set_state(
                str(fields.get("state", "?")), event.time
            )
        elif kind is EventKind.GOV_REQUEST:
            series(registry.counter, "governor.requests", component).inc()
            if fields.get("queued"):
                series(
                    registry.counter, "governor.stalled_admissions", component
                ).inc()
            if "committed_w" in fields:
                series(
                    registry.time_weighted_gauge, "governor.committed_w",
                    component,
                ).set(fields["committed_w"], event.time)
        elif kind is EventKind.GOV_THROTTLE:
            series(registry.counter, "governor.throttles", component).inc()
        elif kind is EventKind.GOV_RELEASE:
            series(registry.counter, "governor.releases", component).inc()
            if "committed_w" in fields:
                series(
                    registry.time_weighted_gauge, "governor.committed_w",
                    component,
                ).set(fields["committed_w"], event.time)
        elif kind is EventKind.GC_START:
            series(registry.counter, "gc.collections", component).inc()
        elif kind is EventKind.GC_END:
            series(registry.counter, "gc.pages_relocated", component).inc(
                fields.get("relocated", 0)
            )
        elif kind is EventKind.SPINUP_START:
            series(registry.counter, "spindle.spinups", component).inc()
        elif kind is EventKind.SPINDOWN_START:
            series(registry.counter, "spindle.spindowns", component).inc()
        elif kind is EventKind.ALPM_END:
            series(registry.counter, "alpm.transitions", component).inc()
        elif kind is EventKind.CACHE_HIT:
            series(registry.counter, "cache.hits", component).inc()
        elif kind is EventKind.CACHE_MISS:
            series(registry.counter, "cache.misses", component).inc()
        elif kind is EventKind.FAULT:
            series(
                registry.counter, "faults.injected", component,
                fields.get("fault", "?"),
            ).inc()
        elif kind is EventKind.FAULT_RETRY:
            series(
                registry.counter, "faults.retries", component,
                fields.get("fault", "?"),
            ).inc()
        elif kind is EventKind.FAULT_START:
            # Degraded-mode residency: the timer's non-"ok" fractions are
            # the share of sim time spent inside fault episodes.
            series(registry.state_timer, "faults.degraded", component).set_state(
                str(fields.get("fault", "?")), event.time
            )
        elif kind is EventKind.FAULT_END:
            series(registry.state_timer, "faults.degraded", component).set_state(
                "ok", event.time
            )
        elif kind is EventKind.SET_POINT:
            series(registry.counter, "policy.set_points", component).inc()
            if "target_w" in fields:
                series(
                    registry.time_weighted_gauge, "policy.target_w", component
                ).set(fields["target_w"], event.time)

    def snapshot(self) -> dict:
        """Registry snapshot finalized at the latest event time."""
        return self.registry.snapshot(end_time=self.last_time)
