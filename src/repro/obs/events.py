"""Structured simulation event tracing.

The paper is a measurement study: its contribution is *visibility* into
when and why a device's power changes.  The simulators reproduce those
mechanisms -- NVMe power-state transitions, governor throttling, garbage
collection, spindle spin-up, ALPM slumber -- but until now only the final
calibrated power trace escaped the simulation.  This module records the
causal mechanism events themselves as typed, timestamped records, so every
watt in a trace can be explained by the event that produced it.

Design constraints, in order:

1. **Passivity.**  Tracing must never perturb a simulation: emitting an
   event touches no RNG stream, schedules nothing on the engine, and
   changes no model state.  Enabling a tracer therefore cannot change any
   :class:`~repro.core.experiment.ExperimentResult` value (a property the
   test suite asserts bit-for-bit).
2. **Zero cost when off.**  Every :class:`~repro.sim.engine.Engine` carries
   a tracer; the default is the :data:`NULL_TRACER` singleton whose
   ``enabled`` flag is ``False``.  Instrumentation sites guard on that flag,
   so a disabled tracer costs two attribute loads per site.
3. **Deterministic ordering.**  Events are totally ordered by
   ``(sim_time, seq)`` where ``seq`` is a per-tracer monotone counter;
   the order is identical across processes and ``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

__all__ = [
    "EventKind",
    "NULL_TRACER",
    "NullTracer",
    "SimEvent",
    "Tracer",
]


class EventKind(enum.Enum):
    """The event taxonomy: one member per power-relevant mechanism edge.

    Paired ``*_START``/``*_END`` kinds bracket an interval (exported as
    Chrome ``B``/``E`` duration events); the rest are instants.
    """

    #: Device entered a new power state (NVMe PS, wake, APST drop, HDD EPC).
    POWER_STATE = "power_state"
    #: The governor admitted an op's power request (``queued=True`` if it
    #: had to stall for budget first).
    GOV_REQUEST = "gov_request"
    #: The governor queued the op (no budget): a throttle stall.
    GOV_THROTTLE = "gov_throttle"
    #: The op returned its grant.
    GOV_RELEASE = "gov_release"
    #: Garbage collection of one victim block began / finished.
    GC_START = "gc_start"
    GC_END = "gc_end"
    #: Spindle left standby / reached speed.
    SPINUP_START = "spinup_start"
    SPINUP_END = "spinup_end"
    #: Spindle began / finished coasting down.
    SPINDOWN_START = "spindown_start"
    SPINDOWN_END = "spindown_end"
    #: ALPM link transition (slumber/partial entry and exit) began/ended.
    ALPM_START = "alpm_start"
    ALPM_END = "alpm_end"
    #: A write was absorbed by a write-back cache / had to bypass or stall.
    CACHE_HIT = "cache_hit"
    CACHE_MISS = "cache_miss"
    #: Host IO accepted by a device / completed back to the host.
    IO_SUBMIT = "io_submit"
    IO_COMPLETE = "io_complete"
    #: An injected fault fired (field ``fault`` names the fault kind).
    FAULT = "fault"
    #: One retry attempt forced by an injected fault (``attempt`` counts).
    FAULT_RETRY = "fault_retry"
    #: A degraded-mode episode (latency spike, thermal throttle, governor
    #: failure) began / ended.  A governor failure never ends: its start
    #: marks the rest of the run as degraded.
    FAULT_START = "fault_start"
    FAULT_END = "fault_end"
    #: A physics invariant failed validation (emitted by
    #: :mod:`repro.validate`, never by the simulators themselves; fields
    #: carry the invariant name, subject, and measured/expected values).
    VIOLATION = "violation"
    #: A power policy changed its commanded target (emitted by
    #: :mod:`repro.policy`; fields carry ``target_w``, ``budget_w`` and
    #: the sensed ``measured_w`` at the decision tick).
    SET_POINT = "set_point"
    #: An analytic fast-forward spliced out a stationary stretch of the
    #: run (emitted by :mod:`repro.sim.fastpath`; fields carry the jump
    #: bounds and the replicated-window accounting).  Per-IO events for
    #: the skipped stretch are intentionally absent from the trace.
    FAST_FORWARD = "fast_forward"
    #: The policy watchdog latched safe mode / re-armed the controller.
    #: Instants, not an interval pair: a run may end mid-incident, and
    #: ``PolicySummary.watchdog_episodes`` carries the span accounting.
    WATCHDOG_DEGRADE = "watchdog_degrade"
    WATCHDOG_REARM = "watchdog_rearm"
    #: Free-form annotation (scope boundaries, experiment markers).
    MARK = "mark"


#: Kinds that open an interval, mapped to the kind that closes it.
INTERVAL_PAIRS = {
    EventKind.GC_START: EventKind.GC_END,
    EventKind.SPINUP_START: EventKind.SPINUP_END,
    EventKind.SPINDOWN_START: EventKind.SPINDOWN_END,
    EventKind.ALPM_START: EventKind.ALPM_END,
    EventKind.FAULT_START: EventKind.FAULT_END,
}


@dataclass(slots=True)
class SimEvent:
    """One traced occurrence.  Treat as immutable once emitted.

    Not ``frozen=True``: frozen dataclasses construct via
    ``object.__setattr__``, which triples creation cost, and event
    construction is the hot path of an enabled tracer (the overhead
    benchmark holds tracing under a few percent of a sweep).

    Attributes:
        time: Simulated time of the occurrence, in seconds.
        seq: Tracer-wide monotone sequence number; ``(time, seq)`` is the
            total order of a trace.
        kind: The mechanism edge (see :class:`EventKind`).
        component: Dotted source label, device-scoped by convention
            (``"ssd2.governor"``, ``"hdd.spindle"``); one Perfetto track
            per distinct component.
        scope: Enclosing experiment label (one sweep point), or ``None``
            for a bare simulation.
        fields: Kind-specific payload (watts, block ids, state indices...).
    """

    time: float
    seq: int
    kind: EventKind
    component: str
    scope: Optional[str] = None
    fields: dict = field(default_factory=dict)

    def describe(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in sorted(self.fields.items()))
        return f"[{self.time:.6f}s #{self.seq}] {self.component} {self.kind.value} {extras}".rstrip()


class NullTracer:
    """The zero-cost default: swallows everything, records nothing.

    Instrumentation sites check :attr:`enabled` before building an event's
    field dict, so a simulation with the null tracer does no tracing work
    beyond the flag test.
    """

    __slots__ = ()

    enabled = False

    def attach(self, engine) -> None:
        """Accept an engine binding (no-op)."""

    def emit(self, kind: EventKind, component: str, /, **fields) -> None:
        """Discard the event."""

    def subscribe(self, callback) -> None:
        """Discard the subscriber: no events will ever be delivered."""

    @property
    def events(self) -> tuple:
        return ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<NullTracer>"


#: Shared instance used by every engine not given an explicit tracer.
NULL_TRACER = NullTracer()


class Tracer:
    """Recording tracer with subscriber fan-out.

    One tracer can span several engines (a sweep re-binds it to each
    point's fresh engine via :meth:`attach`); within one engine the event
    stream is ordered by ``(time, seq)``, and across engines by ``seq``
    alone (each experiment restarts simulated time at zero -- scopes keep
    the segments apart).

    Args:
        keep_events: Retain events in :attr:`events` (default).  Disable
            when only subscribers (e.g. a metrics collector) need the
            stream and the trace itself would just cost memory.
    """

    enabled = True

    def __init__(self, keep_events: bool = True) -> None:
        self._events: list[SimEvent] = []
        self._subscribers: list[Callable[[SimEvent], None]] = []
        self._seq = 0
        self._keep_events = keep_events
        self._engine = None
        self.scope: Optional[str] = None

    # -- wiring -----------------------------------------------------------

    def attach(self, engine) -> None:
        """Bind to ``engine``'s clock (called by ``Engine.__init__``)."""
        self._engine = engine

    def subscribe(self, callback: Callable[[SimEvent], None]) -> None:
        """Deliver every future event to ``callback``, in emit order."""
        self._subscribers.append(callback)

    def set_scope(self, scope: Optional[str]) -> None:
        """Label subsequent events as belonging to ``scope``.

        Scopes partition a multi-experiment trace (one per sweep point);
        the Chrome exporter renders each scope as its own process group.
        """
        self.scope = scope
        self.emit(EventKind.MARK, "tracer", scope=scope)

    # -- emission ---------------------------------------------------------

    def emit(self, kind: EventKind, component: str, /, **fields) -> None:
        """Record one event at the bound engine's current simulated time.

        The two positional parameters are positional-only so payload
        fields may freely use the names ``kind`` and ``component`` (IO
        events carry a ``kind="read"``/``"write"`` field, for instance).

        Strictly passive: appends to the tracer's buffer and fans out to
        subscribers; never touches the engine queue or any RNG.
        """
        engine = self._engine
        seq = self._seq + 1
        self._seq = seq
        event = SimEvent(
            engine.now if engine is not None else 0.0,
            seq,
            kind,
            component,
            self.scope,
            fields,
        )
        if self._keep_events:
            self._events.append(event)
        subscribers = self._subscribers
        if subscribers:
            for subscriber in subscribers:
                subscriber(event)

    # -- access -----------------------------------------------------------

    @property
    def events(self) -> tuple[SimEvent, ...]:
        """All recorded events, in emit order."""
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[SimEvent]:
        return iter(self._events)

    def of_kind(self, *kinds: EventKind) -> list[SimEvent]:
        """Recorded events restricted to ``kinds``, in emit order."""
        wanted = set(kinds)
        return [e for e in self._events if e.kind in wanted]

    def components(self) -> list[str]:
        """Distinct component labels, in first-appearance order."""
        seen: dict[str, None] = {}
        for event in self._events:
            seen.setdefault(event.component, None)
        return list(seen)

    def clear(self) -> None:
        """Drop recorded events (sequence numbering continues)."""
        self._events.clear()
