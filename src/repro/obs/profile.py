"""Wall-clock profiling of the experiment runner.

Tracing and metrics (:mod:`repro.obs.events`, :mod:`repro.obs.metrics`)
observe *simulated* time; this module observes the *simulator itself*:
how long each sweep point took to run, how many kernel events it
processed, and how the result cache behaved.  That is the telemetry a
production deployment watches to know whether the hot path regressed --
and what the observability-overhead benchmark reads to prove tracing
stays within budget.

The profiler is fed by :func:`repro.core.experiment.run_experiment`
(pass ``profiler=``) and by the in-process path of
:func:`repro.core.parallel.run_configs`; it is wall-clock-only and never
touches simulation state, so profiling is as passive as tracing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

__all__ = ["PointProfile", "RunProfiler"]


@dataclass(frozen=True)
class PointProfile:
    """Runner-side cost of one experiment.

    Attributes:
        label: The experiment's ``config.describe()``.
        wall_s: Wall-clock seconds spent inside ``run_experiment``.
        sim_events: Kernel events the engine processed.
        sim_time_s: Final simulated clock value.
        sim_events_fast_forwarded: Kernel events an analytic fast-forward
            accounted for without processing (zero on exact runs).
    """

    label: str
    wall_s: float
    sim_events: int
    sim_time_s: float
    sim_events_fast_forwarded: int = 0

    @property
    def events_per_second(self) -> float:
        """Simulator throughput: kernel events per wall-clock second."""
        if self.wall_s <= 0:
            return 0.0
        return self.sim_events / self.wall_s

    @property
    def effective_events_per_second(self) -> float:
        """Throughput counting fast-forwarded events as served.

        Equals :attr:`events_per_second` on exact runs; on accelerated
        runs this is the metric BENCH_10's speedup claim compares.
        """
        if self.wall_s <= 0:
            return 0.0
        return (self.sim_events + self.sim_events_fast_forwarded) / self.wall_s


class RunProfiler:
    """Accumulates :class:`PointProfile` records across a run or sweep."""

    def __init__(self) -> None:
        self.points: list[PointProfile] = []

    def record(
        self,
        label: str,
        wall_s: float,
        sim_events: int,
        sim_time_s: float,
        sim_events_fast_forwarded: int = 0,
    ) -> None:
        self.points.append(
            PointProfile(
                label, wall_s, sim_events, sim_time_s, sim_events_fast_forwarded
            )
        )

    @staticmethod
    def clock() -> float:
        """The wall clock used for point timing (monotonic)."""
        return time.perf_counter()

    # -- aggregates -------------------------------------------------------

    @property
    def total_wall_s(self) -> float:
        return sum(p.wall_s for p in self.points)

    @property
    def total_sim_events(self) -> int:
        return sum(p.sim_events for p in self.points)

    @property
    def total_sim_events_fast_forwarded(self) -> int:
        return sum(p.sim_events_fast_forwarded for p in self.points)

    @property
    def events_per_second(self) -> float:
        """Aggregate simulator throughput across every profiled point."""
        wall = self.total_wall_s
        if wall <= 0:
            return 0.0
        return self.total_sim_events / wall

    @property
    def effective_events_per_second(self) -> float:
        """Aggregate throughput counting fast-forwarded events as served."""
        wall = self.total_wall_s
        if wall <= 0:
            return 0.0
        return (
            self.total_sim_events + self.total_sim_events_fast_forwarded
        ) / wall

    def slowest(self, n: int = 5) -> list[PointProfile]:
        """The ``n`` most expensive points by wall time."""
        return sorted(self.points, key=lambda p: -p.wall_s)[:n]

    def snapshot(self) -> dict:
        """JSON-ready summary for :func:`repro.obs.export.write_metrics_json`."""
        return {
            "points": [
                {
                    "label": p.label,
                    "wall_s": p.wall_s,
                    "sim_events": p.sim_events,
                    "sim_time_s": p.sim_time_s,
                    "events_per_second": p.events_per_second,
                    "sim_events_fast_forwarded": p.sim_events_fast_forwarded,
                    "effective_events_per_second": p.effective_events_per_second,
                }
                for p in self.points
            ],
            "n_points": len(self.points),
            "total_wall_s": self.total_wall_s,
            "total_sim_events": self.total_sim_events,
            "total_sim_events_fast_forwarded": self.total_sim_events_fast_forwarded,
            "events_per_second": self.events_per_second,
            "effective_events_per_second": self.effective_events_per_second,
        }

    def describe(self) -> str:
        """One-line human summary for CLI footers."""
        text = (
            f"{len(self.points)} point(s), {self.total_wall_s:.2f} s wall, "
            f"{self.total_sim_events} kernel events "
            f"({self.events_per_second:,.0f} ev/s)"
        )
        skipped = self.total_sim_events_fast_forwarded
        if skipped:
            text += (
                f" + {skipped} fast-forwarded "
                f"({self.effective_events_per_second:,.0f} effective ev/s)"
            )
        return text


def maybe_record(
    profiler: Optional[RunProfiler],
    label: str,
    wall_s: float,
    sim_events: int,
    sim_time_s: float,
    sim_events_fast_forwarded: int = 0,
) -> None:
    """Record into ``profiler`` if one is present (runner convenience)."""
    if profiler is not None:
        profiler.record(
            label, wall_s, sim_events, sim_time_s, sim_events_fast_forwarded
        )
