"""Deprecated alias: the fleet model moved to :mod:`repro.fleet.model`.

The static analytic :class:`FleetModel` grew an online sibling (the
cluster governor) and a shared :class:`~repro.fleet.api.BudgetAllocator`
protocol, so the whole fleet layer now lives in :mod:`repro.fleet`.
Importing from here still works but warns; import ``FleetModel`` /
``FleetAllocation`` from :mod:`repro.api` (or :mod:`repro.fleet.model`)
instead.  Same shim pattern as the PR 4 execution-options migration:
old call sites keep working for a deprecation cycle, new code gets one
obvious home.
"""

from __future__ import annotations

import warnings

from repro.fleet.model import FleetAllocation, FleetModel

__all__ = ["FleetAllocation", "FleetModel"]

warnings.warn(
    "repro.core.fleet has moved to repro.fleet.model; this alias will be "
    "removed in a future release -- import FleetModel and FleetAllocation "
    "from repro.api (or repro.fleet.model) instead",
    DeprecationWarning,
    stacklevel=2,
)
