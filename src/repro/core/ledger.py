"""Run ledger: durable provenance for sweep executions.

The :class:`~repro.core.parallel.ResultCache` answers "what was this
point's result?"; the :class:`~repro.core.checkpoint.CheckpointJournal`
answers "where was the sweep when it died?".  Neither answers the
questions a measurement study gets asked months later: *which* seeds and
config hashes produced a figure, how long each point took, whether the
validation suite signed off, what the fault plan and policy actually did.
The ledger answers those.  It is an append-only JSONL file living beside
the result cache, written as points complete and runs finish, and read
back by ``repro report`` -- across sessions, resumes, and overlapping
sweeps, because append-only means history is never rewritten.

Two record shapes share the stream, discriminated by ``"rec"``:

- ``point`` -- one executed (or cache-served) point: config content hash,
  seed, device, terminal status, attempts, wall seconds and events/sec
  (from executor telemetry), and a compact result summary (power,
  throughput, tail latency, fault and policy accounting).
- ``run`` -- one orchestrated batch finishing: point-status census,
  cache-effectiveness snapshot, executor summary, and the validation
  verdict.  ``repro report`` segments the stream on these.

Like the checkpoint journal, the format is torn-line tolerant: a crashed
writer leaves at most one garbage tail line, and :meth:`RunLedger.load`
skips anything unparsable -- provenance must be readable precisely after
the crashes it exists to survive.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional, Union

__all__ = ["RunLedger", "point_record", "run_record"]

#: Schema tag written into every record; bump when shapes change.
LEDGER_VERSION = 1


class RunLedger:
    """Append-only JSONL provenance log.

    Each :meth:`append` opens, writes one line, and closes: records are
    written at most a few times a second (per point completion), so the
    simplicity and crash-durability of open-append-close beat a held
    file handle -- and concurrent sweeps appending to one ledger
    interleave whole lines (O_APPEND), never corrupt each other.

    >>> import tempfile
    >>> path = Path(tempfile.mkdtemp()) / "ledger.jsonl"
    >>> ledger = RunLedger(path)
    >>> ledger.append({"rec": "run", "points": 0})
    >>> RunLedger.load(path)[0]["rec"]
    'run'
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def append(self, record: dict) -> None:
        """Append one record (a JSON-serializable dict) as a single line."""
        payload = dict(record)
        payload.setdefault("v", LEDGER_VERSION)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(payload, sort_keys=True) + "\n")

    @staticmethod
    def load(path: Union[str, Path]) -> List[dict]:
        """Every parsable record, oldest first; ``[]`` if absent.

        Corrupt or truncated lines are skipped, not raised (same
        contract as :meth:`CheckpointJournal.load`).
        """
        path = Path(path)
        if not path.exists():
            return []
        records: List[dict] = []
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    raw = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(raw, dict) and "rec" in raw:
                    records.append(raw)
        return records


def _result_summary(result) -> dict:
    """The compact result fields a report needs (never the raw trace)."""
    summary = {
        "mean_power_w": result.mean_power_w,
        "true_mean_power_w": result.true_mean_power_w,
        "throughput_mib_s": result.throughput_mib_s,
        "cap_w": result.cap_w,
        "cap_respected": result.cap_respected,
    }
    try:
        lat = result.latency()
        summary["p50_us"] = lat.p50 * 1e6
        summary["p99_us"] = lat.p99 * 1e6
    except ValueError:
        # A run that completed zero IOs has no latency distribution.
        pass
    if result.faults is not None:
        summary["faults"] = {
            "injected": dict(result.faults.injected),
            "retries": result.faults.retries,
            "governor_failed": result.faults.governor_failed,
        }
    if result.policy is not None:
        summary["policy"] = {
            "kind": result.policy.spec.kind,
            "decisions": result.policy.decisions,
            "set_point_changes": result.policy.set_point_changes,
            "mean_abs_error_w": result.policy.mean_abs_error_w(),
            "max_overshoot_w": result.policy.max_overshoot_w,
            "degraded_fraction": getattr(
                result.policy, "degraded_fraction", 0.0
            ),
            "watchdog_trips": getattr(result.policy, "watchdog_trips", 0),
        }
    return summary


def point_record(config, outcome, span=None) -> dict:
    """Build one ``point`` record from a finished sweep point.

    Args:
        config: The :class:`~repro.core.experiment.ExperimentConfig`.
        outcome: The point's :class:`~repro.core.experiment.ExperimentResult`
            or :class:`~repro.core.parallel.PointFailure`.
        span: The point's executor-side
            :class:`~repro.core.telemetry.PointSpan`, when telemetry was
            recording (supplies status, attempts, wall time, events/sec).
    """
    # Imported here, not at module top: the ledger is itself imported
    # lazily by the executor, but keep the one-way dependency anyway.
    from repro.core.parallel import PointFailure, config_content_hash

    job = config.job
    record = {
        "rec": "point",
        "key": span.key if span is not None else config_content_hash(config),
        "label": config.describe(),
        "device": config.device_label,
        "seed": config.seed,
        "power_state": config.power_state,
        "pattern": job.pattern.value,
        "block_size": job.block_size,
        "iodepth": job.iodepth,
    }
    if span is not None:
        record.update(
            {
                "status": span.status,
                "attempts": span.attempts,
                "wall_s": span.run_s,
                "events_per_s": span.events_per_second,
                "sim_events": span.sim_events,
            }
        )
    if isinstance(outcome, PointFailure):
        record.setdefault("status", "failed")
        record["error_type"] = outcome.error_type
        record["error"] = outcome.message
        record["attempts"] = outcome.attempts
    else:
        record.setdefault("status", "done")
        record["result"] = _result_summary(outcome)
    return record


def run_record(
    kind: str,
    *,
    telemetry=None,
    validation=None,
    points: Optional[int] = None,
    failures: int = 0,
    cache=None,
) -> dict:
    """Build one ``run`` record closing out an orchestrated batch.

    Args:
        kind: What orchestrated the batch (``"sweep"``, ``"policy"``...).
        telemetry: Optional
            :class:`~repro.core.telemetry.SweepTelemetry`; its snapshot
            carries the executor and cache summaries.
        validation: Optional
            :class:`~repro.validate.report.ValidationReport`.
        points: Total points in the batch (defaults to the telemetry
            count when available).
        failures: Points that ended in failure.
        cache: Optional :class:`~repro.core.parallel.CacheStats` for
            batches that carry no telemetry snapshot (the snapshot
            already embeds one).
    """
    record: dict = {"rec": "run", "kind": kind, "failures": failures}
    if telemetry is not None:
        snap = telemetry.snapshot()
        record["points"] = points if points is not None else snap["points"]
        record["telemetry"] = snap
    elif points is not None:
        record["points"] = points
    if cache is not None and telemetry is None:
        record["telemetry"] = {"cache": cache.snapshot()}
    if validation is not None:
        by_invariant: dict = {}
        for violation in validation.violations:
            by_invariant[violation.invariant] = (
                by_invariant.get(violation.invariant, 0) + 1
            )
        record["validation"] = {
            "ok": validation.ok,
            "checked": validation.checked,
            "violations": by_invariant,
        }
    return record
