"""The power-latency model (paper section 4).

"For latency, a similar model can be drawn from the measurement results."
The paper sketches this in one sentence; this module builds it: operating
points carry mean and tail latency next to power, and the model answers
latency-SLO questions directly:

- which configurations keep p99 under an SLO, and what is the least power
  among them?
- what is the *latency cost* of a power cut (the latency analogue of the
  section-3.3 throughput example)?
- the power-latency Pareto frontier, for trading watts against tail
  guarantees in tiered storage ("weaker SLOs for slower tiers may allow
  operators to apply power-adaptive mechanisms more aggressively").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.experiment import ExperimentResult
from repro.core.sweep import SweepPoint

__all__ = ["LatencyPoint", "PowerLatencyModel"]


@dataclass(frozen=True)
class LatencyPoint:
    """One operating point with its latency profile.

    Attributes:
        point: The mechanism configuration.
        power_w: Mean power.
        mean_latency_s / p99_latency_s: The latency profile.
        throughput_bps: Kept for joint queries (a config that meets an SLO
            by serving nothing is not interesting).
    """

    point: SweepPoint
    power_w: float
    mean_latency_s: float
    p99_latency_s: float
    throughput_bps: float

    @classmethod
    def from_result(cls, point: SweepPoint, result: ExperimentResult) -> "LatencyPoint":
        stats = result.latency()
        return cls(
            point=point,
            power_w=result.mean_power_w,
            mean_latency_s=stats.mean,
            p99_latency_s=stats.p99,
            throughput_bps=result.throughput_bps,
        )


class PowerLatencyModel:
    """Latency-aware companion to the power-throughput model."""

    def __init__(self, device_label: str, points: Sequence[LatencyPoint]) -> None:
        if not points:
            raise ValueError("a model needs at least one operating point")
        self.device_label = device_label
        self.points = tuple(points)
        self.max_power_w = max(p.power_w for p in self.points)
        self.min_power_w = min(p.power_w for p in self.points)

    @classmethod
    def from_sweep(
        cls,
        device_label: str,
        results: dict[SweepPoint, ExperimentResult],
    ) -> "PowerLatencyModel":
        return cls(
            device_label,
            [LatencyPoint.from_result(point, res) for point, res in results.items()],
        )

    # -- queries ------------------------------------------------------------

    def meeting_slo(
        self,
        max_p99_s: float,
        min_throughput_bps: float = 0.0,
    ) -> list[LatencyPoint]:
        """All configurations with p99 within the SLO (and useful load)."""
        return [
            p
            for p in self.points
            if p.p99_latency_s <= max_p99_s
            and p.throughput_bps >= min_throughput_bps
        ]

    def cheapest_meeting_slo(
        self,
        max_p99_s: float,
        min_throughput_bps: float = 0.0,
    ) -> Optional[LatencyPoint]:
        """Least-power configuration that honours the latency SLO."""
        feasible = self.meeting_slo(max_p99_s, min_throughput_bps)
        if not feasible:
            return None
        return min(feasible, key=lambda p: (p.power_w, p.p99_latency_s))

    def latency_cost_of_power_budget(self, budget_w: float) -> Optional[LatencyPoint]:
        """Best-tail configuration under a power budget.

        The latency analogue of the paper's worked example: given the
        budget, this is the tail-latency floor the device can still offer.
        """
        feasible = [p for p in self.points if p.power_w <= budget_w]
        if not feasible:
            return None
        return min(feasible, key=lambda p: (p.p99_latency_s, p.power_w))

    def tail_inflation_of_power_cut(self, cut_fraction: float) -> float:
        """How much the achievable p99 floor inflates under a power cut.

        Returns the ratio of the best achievable p99 under the cut budget
        to the best achievable p99 at full power.
        """
        if not 0 <= cut_fraction < 1:
            raise ValueError("cut_fraction must be in [0, 1)")
        best_full = self.latency_cost_of_power_budget(self.max_power_w)
        best_cut = self.latency_cost_of_power_budget(
            (1 - cut_fraction) * self.max_power_w
        )
        if best_full is None or best_cut is None:
            raise ValueError("cut below the device's power floor")
        return best_cut.p99_latency_s / best_full.p99_latency_s

    def pareto_frontier(self) -> list[LatencyPoint]:
        """Non-dominated (power, p99) points, ascending power.

        A point dominates another when it needs no more power and offers a
        no-worse tail, strictly better in one.
        """
        ordered = sorted(self.points, key=lambda p: (p.power_w, p.p99_latency_s))
        frontier: list[LatencyPoint] = []
        best_tail = float("inf")
        for point in ordered:
            if point.p99_latency_s < best_tail:
                frontier.append(point)
                best_tail = point.p99_latency_s
        return frontier
