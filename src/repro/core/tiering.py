"""Tiered write absorption (paper section 4).

"In tiered storage, the longer standby/spin-up latencies of HDDs may be
masked by temporarily absorbing writes with SSDs."

:class:`WriteAbsorptionScenario` is an *event-driven* policy experiment on
real simulated devices, not a model-level estimate: an HDD tier sits in
standby when a write burst arrives.  Without absorption every write stalls
behind the multi-second spin-up; with absorption an SSD takes the burst at
microsecond latency while the HDD spins up in the background, and the data
is destaged sequentially afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._units import mib_per_s
from repro.devices.base import IOKind, IORequest
from repro.devices.catalog import build_device
from repro.iogen.stats import LatencyStats
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams

__all__ = ["AbsorptionResult", "WriteAbsorptionScenario"]


@dataclass(frozen=True)
class AbsorptionResult:
    """Outcome of one burst delivery.

    Attributes:
        absorbed: Whether the SSD absorbed the burst.
        burst_latency: Client-visible write latencies during the burst.
        burst_duration_s: Time to complete the whole burst.
        destage_duration_s: Time to move absorbed data to the HDD after
            spin-up (0 when not absorbed).
        hdd_spinups: Spin-ups the scenario triggered.
    """

    absorbed: bool
    burst_latency: LatencyStats
    burst_duration_s: float
    destage_duration_s: float
    hdd_spinups: int

    def describe(self) -> str:
        from repro._units import fmt_duration

        mode = "SSD-absorbed" if self.absorbed else "direct-to-HDD"
        return (
            f"{mode}: burst took {fmt_duration(self.burst_duration_s)}, "
            f"write p99 {fmt_duration(self.burst_latency.p99)}, "
            f"max {fmt_duration(self.burst_latency.max)}"
            + (
                f", destage {fmt_duration(self.destage_duration_s)}"
                if self.absorbed
                else ""
            )
        )


class WriteAbsorptionScenario:
    """A two-tier (SSD + HDD) write burst against a spun-down HDD.

    Args:
        ssd_preset / hdd_preset: Device presets for the two tiers.
        burst_bytes: Total size of the write burst.
        chunk_bytes: Size of each client write.
        seed: Determinism root.
    """

    def __init__(
        self,
        ssd_preset: str = "ssd1",
        hdd_preset: str = "hdd",
        burst_bytes: int = 8 << 20,
        chunk_bytes: int = 256 << 10,
        seed: int = 0,
    ) -> None:
        if burst_bytes < chunk_bytes:
            raise ValueError("burst must hold at least one chunk")
        self.ssd_preset = ssd_preset
        self.hdd_preset = hdd_preset
        self.burst_bytes = burst_bytes
        self.chunk_bytes = chunk_bytes
        self.seed = seed

    def run(self, absorb: bool) -> AbsorptionResult:
        """Deliver the burst with or without SSD absorption."""
        engine = Engine()
        rngs = RngStreams(self.seed)
        ssd = build_device(engine, self.ssd_preset, rng=rngs)
        hdd = build_device(engine, self.hdd_preset)

        # Put the HDD tier into standby first (cache is empty, so this is
        # just the spin-down).
        prep = engine.process(hdd.enter_standby())
        while prep.is_alive:
            engine.step()

        latencies: list[float] = []
        burst_span: list[float] = [0.0, 0.0]
        destage_span: list[float] = [0.0, 0.0]

        def deliver():
            burst_span[0] = engine.now
            n_chunks = self.burst_bytes // self.chunk_bytes
            target = ssd if absorb else hdd
            if absorb:
                # Start waking the HDD immediately, in the background.
                engine.process(hdd.exit_standby())
            for i in range(n_chunks):
                offset = i * self.chunk_bytes
                t0 = engine.now
                result = yield target.submit(
                    IORequest(IOKind.WRITE, offset, self.chunk_bytes)
                )
                latencies.append(result.latency)
            burst_span[1] = engine.now
            if absorb:
                # Destage sequentially once the HDD is up.
                yield hdd.spindle.ready_gate.wait_open()
                destage_span[0] = engine.now
                for i in range(n_chunks):
                    offset = i * self.chunk_bytes
                    yield hdd.submit(
                        IORequest(IOKind.WRITE, offset, self.chunk_bytes)
                    )
                # Wait for the HDD cache to fully drain: destage is done
                # when the data is on the platters.
                while not hdd.cache.is_empty:
                    yield engine.timeout(1e-2)
                destage_span[1] = engine.now

        proc = engine.process(deliver())
        while proc.is_alive:
            engine.step()

        return AbsorptionResult(
            absorbed=absorb,
            burst_latency=LatencyStats.from_latencies(latencies),
            burst_duration_s=burst_span[1] - burst_span[0],
            destage_duration_s=max(destage_span[1] - destage_span[0], 0.0),
            hdd_spinups=hdd.spindle.spinups,
        )

    def compare(self) -> tuple[AbsorptionResult, AbsorptionResult]:
        """Run both variants; returns (direct, absorbed)."""
        return self.run(absorb=False), self.run(absorb=True)
