"""Power-aware IO redirection (paper section 4).

"If workloads can be classified and IO requests directed to active devices
in a power-aware manner, the standby period of the inactive storage devices
can be maximized without QoS impact (cf. SRCMap)."

:class:`RedirectionPolicy` decides, for an offered load and a latency SLO,
how many devices to keep active and how many to stand down, using each
device's model for capacity and its standby/wake characteristics for the
QoS risk assessment.  It quantifies the central HDD/SSD asymmetry the paper
stresses: multi-second HDD spin-up makes redirection risky under tight
SLOs, while millisecond SSD wake keeps it safe.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._units import mib_per_s
from repro.core.model import PowerThroughputModel

__all__ = ["RedirectionDecision", "RedirectionPolicy", "StandbyProfile"]


@dataclass(frozen=True)
class StandbyProfile:
    """Standby behaviour of one device class.

    Attributes:
        standby_power_w: Draw while stood down.
        wake_latency_s: Worst-case time from standby to serving IO
            (HDD spin-up: seconds; SSD non-operational exit: milliseconds).
        idle_power_w: Draw while active but idle (what standby saves
            against).
    """

    standby_power_w: float
    wake_latency_s: float
    idle_power_w: float

    def __post_init__(self) -> None:
        if self.standby_power_w < 0 or self.idle_power_w < 0:
            raise ValueError("powers must be non-negative")
        if self.wake_latency_s < 0:
            raise ValueError("wake latency must be non-negative")
        if self.standby_power_w > self.idle_power_w:
            raise ValueError("standby power cannot exceed idle power")


@dataclass(frozen=True)
class RedirectionDecision:
    """The policy's answer for one (load, SLO) operating condition.

    Attributes:
        active_devices: Devices kept serving IO.
        standby_devices: Devices stood down.
        per_device_load_bps: Load concentrated on each active device.
        total_power_w: Expected fleet power (active at their operating
            point + standby at standby power).
        slo_safe: Whether a wake (needed when load rises) fits the SLO.
        power_vs_all_active_w: Savings against keeping everything active
            and spreading the load evenly.
    """

    active_devices: int
    standby_devices: int
    per_device_load_bps: float
    total_power_w: float
    slo_safe: bool
    power_vs_all_active_w: float

    def describe(self) -> str:
        return (
            f"{self.active_devices} active / {self.standby_devices} standby, "
            f"{mib_per_s(self.per_device_load_bps):.0f} MiB/s per active "
            f"device, {self.total_power_w:.1f} W "
            f"({'SLO ok' if self.slo_safe else 'SLO AT RISK'}; "
            f"saves {self.power_vs_all_active_w:.1f} W)"
        )


class RedirectionPolicy:
    """Consolidate load onto few devices; stand the rest down.

    Assumes a replicated/fluid data layout (every device can serve any
    request), the setting SRCMap's consolidation targets.
    """

    def __init__(
        self,
        model: PowerThroughputModel,
        standby: StandbyProfile,
        n_devices: int,
        headroom_fraction: float = 0.1,
    ) -> None:
        if n_devices < 1:
            raise ValueError("need at least one device")
        if not 0 <= headroom_fraction < 1:
            raise ValueError("headroom_fraction must be in [0, 1)")
        self.model = model
        self.standby = standby
        self.n_devices = n_devices
        self.headroom_fraction = headroom_fraction

    def _device_capacity_bps(self) -> float:
        """Usable per-device capacity after headroom."""
        return self.model.max_throughput_bps * (1.0 - self.headroom_fraction)

    def decide(self, offered_load_bps: float, wake_slo_s: float) -> RedirectionDecision:
        """Choose the active set size for ``offered_load_bps``.

        ``wake_slo_s`` is the worst extra latency the operator tolerates on
        a load increase (the time to bring one standby device back).  The
        decision is marked unsafe -- and falls back to all-active -- when
        the device's wake latency exceeds it.
        """
        if offered_load_bps < 0:
            raise ValueError("offered load must be non-negative")
        capacity = self._device_capacity_bps()
        needed = max(1, -(-int(offered_load_bps) // max(int(capacity), 1)))
        slo_safe = self.standby.wake_latency_s <= wake_slo_s
        if needed > self.n_devices:
            raise ValueError(
                f"offered load {mib_per_s(offered_load_bps):.0f} MiB/s exceeds "
                f"fleet capacity of {self.n_devices} devices"
            )
        active = needed if slo_safe else self.n_devices
        per_device = offered_load_bps / active
        point = self.model.cheapest_at_throughput(per_device)
        if point is None:
            # Load per active device above any model point: run flat out.
            point = self.model.max_point()
        active_power = active * point.power_w
        standby_power = (self.n_devices - active) * self.standby.standby_power_w
        # Baseline: spread evenly over every device, none stood down.
        spread = self.model.cheapest_at_throughput(
            offered_load_bps / self.n_devices
        )
        spread_power_w = self.n_devices * (
            spread.power_w if spread is not None else self.model.max_power_w
        )
        total = active_power + standby_power
        return RedirectionDecision(
            active_devices=active,
            standby_devices=self.n_devices - active,
            per_device_load_bps=per_device,
            total_power_w=total,
            slo_safe=slo_safe,
            power_vs_all_active_w=spread_power_w - total,
        )

    def standby_savings_w(self) -> float:
        """Power saved per device stood down (idle -> standby)."""
        return self.standby.idle_power_w - self.standby.standby_power_w
