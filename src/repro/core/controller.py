"""An online power-adaptive storage controller.

The paper's closing argument: "cloud operators ... can use similar power
models, as derived through our experiments, as a foundation for
power-adaptive storage systems, using SLOs and power budgets as inputs."
This module *builds* that system in miniature and runs it against live
simulated devices:

- :class:`BudgetSignal` -- the available-power schedule handed down by the
  facility (step changes model demand-response events, §1's medium-term
  variation).
- :class:`OnlinePowerController` -- a feedback loop that periodically
  measures fleet power off the devices' rails and walks each device up or
  down its NVMe power-state ladder (and optionally into standby) to keep
  the fleet under the instantaneous budget.
- :func:`run_demand_response` -- a complete scenario: an SSD fleet serving
  an open-loop write load while the budget dips and recovers; returns
  compliance and QoS metrics.

The controller intentionally uses only *host-visible* mechanisms the paper
studies: ``Set Features (Power Management)`` and standby.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro._units import GiB, KiB, MiB
from repro.devices.catalog import build_device
from repro.devices.ssd import SimulatedSSD
from repro.iogen.arrivals import ArrivalProcess, LoadProfile, OpenLoopJob, OpenLoopResult
from repro.iogen.spec import IoPattern
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams

__all__ = [
    "BudgetSignal",
    "ControlAction",
    "ControllerConfig",
    "DemandResponseResult",
    "OnlinePowerController",
    "run_demand_response",
]


@dataclass(frozen=True)
class BudgetSignal:
    """Piecewise-constant available power for the fleet, in watts."""

    steps: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("a budget signal needs at least one segment")
        times = [t for t, __ in self.steps]
        if times[0] != 0.0 or times != sorted(times):
            raise ValueError("segments must start at 0 and ascend")
        if any(watts <= 0 for __, watts in self.steps):
            raise ValueError("budgets must be positive")

    @classmethod
    def constant(cls, watts: float) -> "BudgetSignal":
        return cls(((0.0, watts),))

    def watts_at(self, t: float) -> float:
        watts = self.steps[0][1]
        for start, segment_watts in self.steps:
            if t < start:
                break
            watts = segment_watts
        return watts


@dataclass(frozen=True)
class ControlAction:
    """One decision the controller took."""

    time: float
    device: str
    action: str  # "ps0".."psN" or "standby" / "wake"

    def __str__(self) -> str:
        return f"t={self.time * 1e3:7.1f}ms {self.device}: {self.action}"


@dataclass(frozen=True)
class ControllerConfig:
    """Control-loop tuning.

    Attributes:
        interval_s: Control period (paper §1: short-timescale adaptation
            must occur in milliseconds).
        window_s: Measurement window for fleet power.
        guard_band_w: Start shedding when measured power exceeds
            ``budget - guard_band`` (keeps the loop ahead of the breaker).
        relax_band_w: Step back up only when below
            ``budget - guard_band - relax_band`` (hysteresis against
            oscillation).
        allow_standby: Permit non-operational states once every device is
            at its deepest operational cap.
    """

    interval_s: float = 10e-3
    window_s: float = 10e-3
    guard_band_w: float = 1.0
    relax_band_w: float = 3.0
    allow_standby: bool = False

    def __post_init__(self) -> None:
        if self.interval_s <= 0 or self.window_s <= 0:
            raise ValueError("interval and window must be positive")
        if self.guard_band_w < 0 or self.relax_band_w <= 0:
            raise ValueError("bands must be positive")


class OnlinePowerController:
    """Feedback controller over a fleet of NVMe SSDs.

    The mechanism ladder follows the paper's section 4: deepen power caps
    first (cheap, milliseconds), then stand whole devices down (larger
    saving, but the device stops serving until woken).
    """

    def __init__(
        self,
        engine: Engine,
        devices: Sequence[SimulatedSSD],
        budget: BudgetSignal,
        config: ControllerConfig | None = None,
    ) -> None:
        if not devices:
            raise ValueError("the controller needs at least one device")
        for device in devices:
            if not device.config.power_states:
                raise ValueError(
                    f"{device.name} has no power states to control"
                )
        self.engine = engine
        self.devices = list(devices)
        self.budget = budget
        self.config = config or ControllerConfig()
        self.actions: list[ControlAction] = []
        self._levels = {d.name: 0 for d in self.devices}  # current op state
        self._standby: set[str] = set()
        self._process = None

    # -- measurement ------------------------------------------------------

    def fleet_power_w(self) -> float:
        """Fleet mean power over the trailing measurement window."""
        now = self.engine.now
        t0 = max(now - self.config.window_s, 0.0)
        if now <= t0:
            return sum(d.rail.total_watts for d in self.devices)
        return sum(d.rail.trace.mean(t0, now) for d in self.devices)

    # -- control loop ------------------------------------------------------

    def start(self):
        if self._process is not None:
            raise RuntimeError("controller already started")
        self._process = self.engine.process(self._loop())
        return self._process

    def stop(self) -> None:
        if self._process is not None and self._process.is_alive:
            self._process.interrupt("stop")

    def _loop(self):
        from repro.sim.process import Interrupt

        try:
            while True:
                yield self.engine.timeout(self.config.interval_s)
                yield from self._step()
        except Interrupt:
            return

    def _operational_states(self, device: SimulatedSSD):
        return [ps for ps in device.config.power_states if ps.operational]

    def _step(self):
        measured = self.fleet_power_w()
        budget = self.budget.watts_at(self.engine.now)
        threshold = budget - self.config.guard_band_w
        if measured > threshold:
            yield from self._shed()
        elif measured < threshold - self.config.relax_band_w:
            yield from self._relax()

    def _shed(self):
        """Apply the next rung of the mechanism ladder to one device."""
        # Deepen the cap on the device currently drawing the most power
        # that still has a deeper operational state.
        candidates = [
            d
            for d in self.devices
            if d.name not in self._standby
            and self._levels[d.name] + 1 < len(self._operational_states(d))
        ]
        if candidates:
            target = max(candidates, key=lambda d: d.rail.total_watts)
            level = self._levels[target.name] + 1
            state = self._operational_states(target)[level]
            self._levels[target.name] = level
            self.actions.append(
                ControlAction(self.engine.now, target.name, f"ps{state.index}")
            )
            yield from target.set_power_state(state.index)
            return
        if self.config.allow_standby:
            active = [d for d in self.devices if d.name not in self._standby]
            if len(active) > 1:  # never stand the whole fleet down
                target = min(active, key=lambda d: d.rail.total_watts)
                self._standby.add(target.name)
                self.actions.append(
                    ControlAction(self.engine.now, target.name, "standby")
                )
                yield from target.enter_standby()

    def _relax(self):
        """Undo the most aggressive mechanism first."""
        if self._standby:
            name = next(iter(self._standby))
            target = next(d for d in self.devices if d.name == name)
            self._standby.discard(name)
            self.actions.append(ControlAction(self.engine.now, name, "wake"))
            yield from target.exit_standby()
            return
        candidates = [d for d in self.devices if self._levels[d.name] > 0]
        if candidates:
            target = max(candidates, key=lambda d: self._levels[d.name])
            level = self._levels[target.name] - 1
            state = self._operational_states(target)[level]
            self._levels[target.name] = level
            self.actions.append(
                ControlAction(self.engine.now, target.name, f"ps{state.index}")
            )
            yield from target.set_power_state(state.index)


# -- the demand-response scenario ---------------------------------------------


@dataclass(frozen=True)
class DemandResponseResult:
    """Outcome of :func:`run_demand_response`.

    Attributes:
        budget: The budget signal applied.
        fleet_power: Per-segment fleet mean power (settled part of each
            budget segment).
        compliance: Per-segment ``mean power <= budget`` flags.
        workload: Open-loop workload outcome (latency includes the
            throttling the controller caused).
        actions: Everything the controller did.
    """

    budget: BudgetSignal
    fleet_power: tuple[float, ...]
    compliance: tuple[bool, ...]
    workload: OpenLoopResult
    actions: tuple[ControlAction, ...]
    duration_s: float

    @property
    def fully_compliant(self) -> bool:
        return all(self.compliance)

    def describe(self) -> str:
        lines = []
        for (start, watts), power, ok in zip(
            self.budget.steps, self.fleet_power, self.compliance
        ):
            lines.append(
                f"  from {start * 1e3:6.1f} ms: budget {watts:6.1f} W, "
                f"measured {power:6.1f} W  "
                f"[{'compliant' if ok else 'OVER BUDGET'}]"
            )
        lines.append(f"  controller actions: {len(self.actions)}")
        return "\n".join(lines)


def run_demand_response(
    n_devices: int = 4,
    preset: str = "ssd2",
    budget: Optional[BudgetSignal] = None,
    offered_load_bps: float = 4 * GiB,
    request_bytes: int = 256 * KiB,
    duration_s: float = 0.9,
    seed: int = 0,
    allow_standby: bool = False,
    settle_fraction: float = 0.4,
) -> DemandResponseResult:
    """Run the full closed-loop demand-response scenario.

    A fleet of ``n_devices`` serves an open-loop random-write load while
    the power budget follows ``budget`` (default: ample -> tight -> ample).
    Returns per-segment compliance and the workload's QoS outcome.
    """
    engine = Engine()
    rngs = RngStreams(seed)
    devices = [
        build_device(engine, preset, rng=rngs.fork(i)) for i in range(n_devices)
    ]
    for index, device in enumerate(devices):
        # Unique names so controller bookkeeping can address each.
        device.name = f"{preset}-{index}"

    if budget is None:
        # Sized against SSD2-class devices: ample, then a ~30 % cut.
        peak = 15.0 * n_devices
        budget = BudgetSignal(
            (
                (0.0, peak),
                (duration_s / 3, 0.70 * peak),
                (2 * duration_s / 3, peak),
            )
        )

    controller = OnlinePowerController(
        engine,
        devices,
        budget,
        ControllerConfig(allow_standby=allow_standby),
    )
    controller.start()

    # Offered load spread across the fleet (static sharding by request).
    per_device = offered_load_bps / n_devices
    jobs = []
    for index, device in enumerate(devices):
        arrivals = ArrivalProcess(
            LoadProfile.constant(per_device),
            request_bytes=request_bytes,
            poisson=True,
            rng=rngs.fork(100 + index).get("arrivals"),
        )
        job = OpenLoopJob(
            engine,
            device,
            arrivals,
            pattern=IoPattern.RANDWRITE,
            duration_s=duration_s,
            max_outstanding=128,
            rng=rngs.fork(200 + index).get("offsets"),
        )
        job.start()
        jobs.append(job)

    engine.run(until=duration_s)
    controller.stop()
    engine.run(until=duration_s + 0.05)  # drain in-flight work

    # Per-segment compliance over the settled part of each segment.
    segment_power = []
    compliance = []
    edges = [start for start, __ in budget.steps] + [duration_s]
    for i, (start, watts) in enumerate(budget.steps):
        end = min(edges[i + 1], duration_s)
        if end <= start:
            segment_power.append(0.0)
            compliance.append(True)
            continue
        t0 = start + settle_fraction * (end - start)
        power = sum(d.rail.trace.mean(t0, end) for d in devices)
        segment_power.append(power)
        compliance.append(power <= watts + 0.5)

    merged_records = tuple(
        record for job in jobs for record in job.records
    )
    workload = OpenLoopResult(
        records=merged_records,
        offered=sum(j.offered for j in jobs),
        submitted=sum(j.submitted for j in jobs),
        shed=sum(j.shed for j in jobs),
    )
    return DemandResponseResult(
        budget=budget,
        fleet_power=tuple(segment_power),
        compliance=tuple(compliance),
        workload=workload,
        actions=tuple(controller.actions),
        duration_s=duration_s,
    )
