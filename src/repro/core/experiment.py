"""One measurement-study experiment.

An experiment is exactly what the paper runs per data point: configure a
device's power-control mechanisms (NVMe power state, ALPM link mode), drive
one fio job against it, and record device power through the measurement
chain alongside throughput and latency from the workload generator.

Everything is deterministic from ``seed``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.devices.base import StorageDevice
from repro.devices.catalog import DeviceConfig, build_device
from repro.devices.link import LinkPowerMode
from repro.devices.ssd import SimulatedSSD
from repro.faults.injector import FaultInjector, FaultSummary
from repro.faults.plan import FaultPlan
from repro.iogen.engine import FioJob
from repro.iogen.spec import JobSpec
from repro.iogen.stats import JobResult, LatencyStats
from repro.obs.events import Tracer
from repro.obs.profile import RunProfiler
from repro.power.adc import AdcConfig
from repro.power.analysis import PowerSummary, summarize_samples
from repro.power.logger import PowerTrace
from repro.power.meter import MeterConfig, PowerMeter
from repro.sata.alpm import AlpmController
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams

__all__ = ["ExperimentConfig", "ExperimentResult", "run_experiment"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Configuration of one experiment.

    Attributes:
        device: Preset label (``"ssd1"``, ``"ssd2"``, ``"ssd3"``, ``"hdd"``,
            ``"860evo"``, ``"pm1743"``) or an explicit device config.
        job: The fio-style workload.
        power_state: NVMe power state to select before the job (SSDs with a
            power state table only).
        alpm_mode: SATA link power mode to set before the job.
        warmup_fraction: Leading fraction of the job excluded from
            steady-state statistics (cache/buffer ramp-in).
        seed: Root seed for every random stream in the experiment.
        meter: Measurement chain configuration.  The default samples at
            20 kHz rather than the paper's 1 kHz: scaled-down experiments
            last tens of milliseconds instead of a minute, and the sample
            *count* per experiment must stay comparable for the averages
            to have the paper's fidelity (1 kHz over 15 ms is 15 samples,
            which aliases against millisecond power pulses).  Trace
            studies that specifically demonstrate 1 kHz behaviour
            (Figs. 2 and 7) pass the paper-rate meter explicitly with
            full-length windows.
        keep_trace: Retain the full measured power trace on the result
            (costs memory across big sweeps; figure drivers that plot
            traces turn it on).
        faults: Optional :class:`~repro.faults.plan.FaultPlan` injected
            deterministically (from the same root seed) while the job
            runs.  ``None`` -- the default -- leaves every device on the
            null injector and reproduces pre-fault results bit for bit.
        policy: Optional :class:`~repro.policy.spec.PolicySpec` running
            an online power-adaptive controller against the device
            while the job runs.  Typed as ``object`` so this module
            never imports :mod:`repro.policy`: ``None`` -- the default
            -- keeps the policy package entirely unloaded and the run
            bit-identical to a build without it.
        fastpath: Optional
            :class:`~repro.sim.fastpath.options.FastpathOptions` enabling
            the analytic steady-state fast-forward and/or batched kernel
            dispatch.  Typed as ``object`` for the same lazy-import
            contract as ``policy``: ``None`` -- the default -- keeps
            :mod:`repro.sim.fastpath` entirely unloaded and the run
            bit-identical to a build without it.  Ineligible runs
            (writes, faults, policies, non-SSD devices...) fall back to
            the exact kernel and are also bit-identical; eligible runs
            are equivalent within the options' declared tolerances.
    """

    device: Union[str, DeviceConfig]
    job: JobSpec
    power_state: Optional[int] = None
    alpm_mode: Optional[LinkPowerMode] = None
    warmup_fraction: float = 0.25
    seed: int = 0
    meter: MeterConfig = field(
        default_factory=lambda: MeterConfig(
            adc=AdcConfig(sample_rate_hz=20000.0)
        )
    )
    keep_trace: bool = False
    faults: Optional[FaultPlan] = None
    policy: Optional[object] = None
    fastpath: Optional[object] = None

    def __post_init__(self) -> None:
        if not 0 <= self.warmup_fraction < 1:
            raise ValueError("warmup_fraction must be in [0, 1)")

    @property
    def device_label(self) -> str:
        if isinstance(self.device, str):
            return self.device
        return self.device.name

    def describe(self) -> str:
        parts = [self.device_label, self.job.describe()]
        if self.power_state is not None:
            parts.append(f"ps{self.power_state}")
        if self.alpm_mode is not None:
            parts.append(f"alpm={self.alpm_mode.value}")
        if self.policy is not None:
            describe = getattr(self.policy, "describe", None)
            parts.append(
                f"policy={describe() if describe else self.policy!r}"
            )
        return " ".join(parts)


@dataclass(frozen=True)
class ExperimentResult:
    """Everything the paper reports about one experiment.

    Attributes:
        config: The experiment that ran.
        job: Workload-side results (throughput, latency).
        power: Measured power summary over the steady-state window.
        true_mean_power_w: Ground-truth rail mean over the same window
            (for meter-accuracy accounting).
        cap_w: The power cap the run *intended* (NVMe Set Features), if
            any.  Under an injected governor failure the device stops
            enforcing it, which :attr:`cap_respected` then reports.
        trace: Full measured power trace when ``keep_trace`` was set.
        faults: Fault accounting when the experiment configured a fault
            plan (``None`` for clean runs).
        policy: :class:`~repro.policy.api.PolicySummary` accounting when
            the experiment configured an online policy (``None``
            otherwise; typed loosely for the same lazy-import reason as
            ``ExperimentConfig.policy``).
        fastpath: :class:`~repro.sim.fastpath.options.FastpathSummary`
            accounting when the experiment configured a fastpath
            (``None`` otherwise) -- whether it engaged, which mode ran,
            and the per-splice replication ledger the
            ``fastpath_equivalence`` invariant audits.
    """

    config: ExperimentConfig
    job: JobResult
    power: PowerSummary
    true_mean_power_w: float
    cap_w: Optional[float]
    trace: Optional[PowerTrace] = None
    faults: Optional[FaultSummary] = None
    policy: Optional[object] = None
    fastpath: Optional[object] = None

    # -- the quantities the paper's figures plot --------------------------

    @property
    def mean_power_w(self) -> float:
        return self.power.mean_w

    @property
    def throughput_mib_s(self) -> float:
        return self.job.throughput_mib_s

    @property
    def throughput_bps(self) -> float:
        return self.job.throughput_bps

    def latency(self) -> LatencyStats:
        return self.job.latency_stats()

    @property
    def meter_relative_error(self) -> float:
        """Relative error of the measured vs ground-truth mean power."""
        if self.true_mean_power_w == 0:
            return 0.0
        return abs(self.power.mean_w - self.true_mean_power_w) / self.true_mean_power_w

    @property
    def cap_respected(self) -> bool:
        """Whether mean power stayed under the active cap (NVMe semantics).

        The NVMe cap bounds the *average over any 10 s window*; experiments
        are shorter than 10 s, so the whole-window mean is the right check.
        """
        if self.cap_w is None:
            return True
        return self.true_mean_power_w <= self.cap_w + 1e-9

    def summary(self) -> str:
        lat = self.latency()
        return (
            f"{self.config.describe()}: {self.mean_power_w:.2f} W, "
            f"{self.throughput_mib_s:.0f} MiB/s, "
            f"lat avg {lat.mean * 1e6:.0f} us / p99 {lat.p99 * 1e6:.0f} us"
        )


def _drive_to_completion(engine: Engine, process) -> None:
    """Run the engine until ``process`` finishes.

    ``engine.run()`` alone would never return: devices keep housekeeping
    processes alive forever.
    """
    engine.run_until_complete(process)


def _apply_power_controls(
    engine: Engine, device: StorageDevice, config: ExperimentConfig
) -> None:
    if config.power_state is not None:
        if not isinstance(device, SimulatedSSD) or not device.config.power_states:
            raise ValueError(
                f"{device.name} does not support NVMe power states"
            )
        _drive_to_completion(
            engine, engine.process(device.set_power_state(config.power_state))
        )
    if config.alpm_mode is not None:
        if not isinstance(device, SimulatedSSD):
            raise ValueError("ALPM control is modelled for SATA SSDs only")
        alpm = AlpmController(device)
        _drive_to_completion(engine, engine.process(alpm.set_mode(config.alpm_mode)))


def run_experiment(
    config: ExperimentConfig,
    tracer: Optional[Tracer] = None,
    profiler: Optional[RunProfiler] = None,
    audit=None,
) -> ExperimentResult:
    """Run one experiment end to end and return its results.

    Args:
        config: The experiment to run.
        tracer: Optional :class:`repro.obs.events.Tracer`; the engine and
            every device component emit structured events through it.
            Tracing is strictly passive -- results are bit-identical with
            and without it (the test suite asserts this).
        profiler: Optional :class:`repro.obs.profile.RunProfiler`
            collecting wall-clock cost and kernel-event throughput.
        audit: Optional :class:`repro.validate.audit.RailAudit` attached
            to the device's power rail for per-component energy
            accounting.  Like tracing, auditing is strictly passive:
            results are bit-identical with and without it.

    >>> from repro.iogen import IoPattern, JobSpec
    >>> cfg = ExperimentConfig(
    ...     device="ssd3",
    ...     job=JobSpec(IoPattern.RANDREAD, block_size=4096, iodepth=4,
    ...                 runtime_s=0.02, size_limit_bytes=1 << 20),
    ... )
    >>> result = run_experiment(cfg)
    >>> result.mean_power_w > 0
    True
    """
    wall_start = RunProfiler.clock() if profiler is not None else 0.0
    engine = Engine(tracer=tracer)
    if tracer is not None and tracer.enabled:
        tracer.set_scope(config.describe())
    rngs = RngStreams(config.seed)
    faults = (
        FaultInjector(engine, config.faults, rngs)
        if config.faults is not None
        else None
    )
    device = build_device(engine, config.device, rng=rngs, faults=faults)
    if audit is not None:
        device.rail.attach_audit(audit)
    if faults is not None:
        faults.install(device)
    _apply_power_controls(engine, device, config)
    policy_runtime = None
    if config.policy is not None:
        # Lazy: runs without a policy must never load repro.policy (the
        # overhead benchmark pins the inert path to bit-identity).
        from repro.policy.runtime import PolicyRuntime

        policy_runtime = PolicyRuntime(engine, device, config.policy, rngs)

    job = FioJob(engine, device, config.job, rng=rngs.get("io.offsets"))
    fastpath_summary = None
    if config.fastpath is not None:
        # Lazy, like policy: runs without a fastpath must never load
        # repro.sim.fastpath (the poisoned-import test pins this).
        from repro.sim.fastpath import drive_job

        fastpath_summary = drive_job(engine, device, job, config, config.fastpath)
    else:
        master = job.start()
        _drive_to_completion(engine, master)

    job_result = job.result(warmup_fraction=config.warmup_fraction)
    meter = PowerMeter(device.rail, config.meter, rng=rngs.get("meter"))
    t_measure, t_end = job_result.measure_window
    if t_end - t_measure < 2.0 / meter.sample_rate_hz:
        # Degenerate (ultra-short) runs: measure the full span instead.
        t_measure, t_end = job_result.start_time, job_result.end_time
    trace = meter.measure(t_measure, t_end, label=config.describe())
    power = summarize_samples(trace)
    cap_w = None
    if isinstance(device, SimulatedSSD):
        # intended_cap_w survives an injected governor failure, so the
        # result still knows which cap the run was *supposed* to honour.
        cap_w = device.governor.intended_cap_w
    if profiler is not None:
        profiler.record(
            label=config.describe(),
            wall_s=RunProfiler.clock() - wall_start,
            sim_events=engine.events_processed,
            sim_time_s=engine.now,
            sim_events_fast_forwarded=engine.events_fast_forwarded,
        )
    return ExperimentResult(
        config=config,
        job=job_result,
        power=power,
        true_mean_power_w=device.rail.trace.mean(t_measure, t_end),
        cap_w=cap_w,
        trace=trace if config.keep_trace else None,
        faults=faults.summary() if faults is not None else None,
        policy=policy_runtime.summary() if policy_runtime is not None else None,
        fastpath=fastpath_summary,
    )
