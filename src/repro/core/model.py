"""The power-throughput model (paper section 3.3, Figure 10).

A :class:`PowerThroughputModel` collects the operating points a sweep
measured for one device -- each point is a (power-control configuration,
average power, throughput) triple -- normalizes them against the device's
maxima, and answers the questions a power-adaptive storage system asks:

- what is the device's *power dynamic range*? (paper headline: 59.4 % of
  maximum power on SSD2)
- given a power budget, which configuration maximizes throughput?
- given a throughput floor, what is the least power that sustains it?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.experiment import ExperimentResult
from repro.core.sweep import SweepPoint

__all__ = ["ModelPoint", "PowerThroughputModel"]


@dataclass(frozen=True)
class ModelPoint:
    """One operating point of a device.

    Attributes:
        point: The mechanism configuration (pattern, chunk, depth, state).
        power_w: Measured mean power.
        throughput_bps: Measured steady-state throughput.
        latency_p99_s: Measured tail latency (for SLO-aware queries).
    """

    point: SweepPoint
    power_w: float
    throughput_bps: float
    latency_p99_s: float

    @classmethod
    def from_result(cls, point: SweepPoint, result: ExperimentResult) -> "ModelPoint":
        return cls(
            point=point,
            power_w=result.mean_power_w,
            throughput_bps=result.throughput_bps,
            latency_p99_s=result.latency().p99,
        )


class PowerThroughputModel:
    """Normalized power-throughput scatter for one device.

    >>> # model = PowerThroughputModel("ssd2", points_from_a_sweep)
    >>> # model.dynamic_range_fraction    # ~0.594 for SSD2
    >>> # best = model.best_under_power_budget(0.8 * model.max_power_w)
    """

    def __init__(self, device_label: str, points: Sequence[ModelPoint]) -> None:
        if not points:
            raise ValueError("a model needs at least one operating point")
        self.device_label = device_label
        self.points = tuple(points)
        self.max_power_w = max(p.power_w for p in self.points)
        self.min_power_w = min(p.power_w for p in self.points)
        self.max_throughput_bps = max(p.throughput_bps for p in self.points)
        if self.max_power_w <= 0 or self.max_throughput_bps <= 0:
            raise ValueError("model maxima must be positive")

    @classmethod
    def from_sweep(
        cls,
        device_label: str,
        results: dict[SweepPoint, ExperimentResult],
    ) -> "PowerThroughputModel":
        return cls(
            device_label,
            [ModelPoint.from_result(point, res) for point, res in results.items()],
        )

    # -- normalization ---------------------------------------------------

    def normalized(self) -> list[tuple[float, float, ModelPoint]]:
        """``(norm_throughput, norm_power, point)`` triples -- Fig. 10's axes."""
        return [
            (
                p.throughput_bps / self.max_throughput_bps,
                p.power_w / self.max_power_w,
                p,
            )
            for p in self.points
        ]

    @property
    def dynamic_range_fraction(self) -> float:
        """(max - min) mean power over the sweep, as a fraction of max.

        The paper's headline metric: 0.594 for SSD2 under random writes.
        """
        return (self.max_power_w - self.min_power_w) / self.max_power_w

    @property
    def min_normalized_throughput(self) -> float:
        """Lowest normalized throughput over the sweep (HDD floor ~0.04)."""
        return min(p.throughput_bps for p in self.points) / self.max_throughput_bps

    # -- queries --------------------------------------------------------------

    def best_under_power_budget(
        self,
        budget_w: float,
        max_latency_p99_s: Optional[float] = None,
    ) -> Optional[ModelPoint]:
        """Highest-throughput point with mean power within ``budget_w``.

        Optionally also respects a p99 latency SLO.  Returns ``None`` when
        no configuration fits (budget below the device's floor).
        """
        feasible = [p for p in self.points if p.power_w <= budget_w]
        if max_latency_p99_s is not None:
            feasible = [p for p in feasible if p.latency_p99_s <= max_latency_p99_s]
        if not feasible:
            return None
        return max(feasible, key=lambda p: (p.throughput_bps, -p.power_w))

    def cheapest_at_throughput(self, floor_bps: float) -> Optional[ModelPoint]:
        """Lowest-power point sustaining at least ``floor_bps``."""
        feasible = [p for p in self.points if p.throughput_bps >= floor_bps]
        if not feasible:
            return None
        return min(feasible, key=lambda p: (p.power_w, -p.throughput_bps))

    def max_point(self) -> ModelPoint:
        """The operating point with the highest throughput."""
        return max(self.points, key=lambda p: p.throughput_bps)

    def throughput_cost_of_power_cut(self, cut_fraction: float) -> tuple[ModelPoint, float]:
        """The paper's worked example (section 3.3).

        For a power reduction of ``cut_fraction`` below maximum power,
        return the best feasible configuration and the fraction of peak
        throughput that must be curtailed -- the amount of best-effort load
        the storage system can shed to keep serving high-priority load.
        """
        if not 0 <= cut_fraction < 1:
            raise ValueError("cut_fraction must be in [0, 1)")
        budget = (1.0 - cut_fraction) * self.max_power_w
        best = self.best_under_power_budget(budget)
        if best is None:
            raise ValueError(
                f"no configuration of {self.device_label} fits a "
                f"{cut_fraction:.0%} power cut"
            )
        curtailed = 1.0 - best.throughput_bps / self.max_throughput_bps
        return best, curtailed
