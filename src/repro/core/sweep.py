"""Parameter sweeps over the power-control mechanism space.

The paper's figures all come from one grid: {random, sequential} x {read,
write} x 6 chunk sizes x 6 queue depths x the device's power states.
:func:`run_sweep` executes such a grid and returns the results keyed by
configuration, ready for :class:`~repro.core.model.PowerThroughputModel`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterator, Optional, Sequence, Union

from repro._units import GiB, MiB
from repro.core.checkpoint import CheckpointJournal
from repro.core.experiment import ExperimentConfig, ExperimentResult
from repro.core.options import UNSET, ExecutionOptions, coerce_execution_options
from repro.faults.plan import FaultPlan
from repro.core.parallel import (
    PointFailure,
    ResultCache,
    RetryPolicy,
    SweepExecutionError,
    run_configs,
)
from repro.iogen.spec import (
    IoPattern,
    JobSpec,
    PAPER_CHUNK_SIZES,
    PAPER_QUEUE_DEPTHS,
)

__all__ = [
    "SweepGrid",
    "SweepOutcome",
    "SweepPoint",
    "run_sweep",
    "stable_point_salt",
    "sweep_outcome",
]

#: Default simulation-scale stop rule standing in for the paper's
#: "one minute or 4 GiB": 80 simulated milliseconds or 48 MiB.
DEFAULT_RUNTIME_S = 0.080
DEFAULT_SIZE_LIMIT = 48 * MiB


@dataclass(frozen=True)
class SweepPoint:
    """One grid coordinate."""

    pattern: IoPattern
    block_size: int
    iodepth: int
    power_state: Optional[int]

    def describe(self) -> str:
        ps = "" if self.power_state is None else f" ps{self.power_state}"
        return (
            f"{self.pattern.value} bs={self.block_size // 1024}k "
            f"qd={self.iodepth}{ps}"
        )


def stable_point_salt(point: SweepPoint) -> int:
    """Process-stable seed salt for one grid coordinate.

    The builtin ``hash()`` is randomized per interpreter process
    (``PYTHONHASHSEED``) for any value containing a string, so it cannot
    seed experiments: the same grid would draw different noise on every
    run, and parallel workers would disagree with a sequential pass.  A
    keyed digest over a canonical encoding is stable everywhere.
    """
    payload = "\x1f".join(
        (
            point.pattern.value,
            str(point.block_size),
            str(point.iodepth),
            str(point.power_state),
        )
    ).encode("utf-8")
    return int.from_bytes(hashlib.blake2b(payload, digest_size=8).digest(), "big")


@dataclass(frozen=True)
class SweepGrid:
    """A sweep specification for one device.

    Attributes:
        device: Device preset label or config.
        patterns: Access patterns to cover.
        block_sizes: Chunk sizes (defaults to the paper's six).
        iodepths: Queue depths (defaults to the paper's six).
        power_states: NVMe power states to include; ``(None,)`` for
            devices without a power state table.
        base_job: Template providing stop conditions and region; the grid
            overrides pattern/bs/iodepth per point.
        seed: Root seed; each point forks its own streams.
        faults: Optional :class:`~repro.faults.plan.FaultPlan` applied to
            every point (each point derives its own fault randomness from
            its per-point seed).
    """

    device: object
    patterns: Sequence[IoPattern] = (IoPattern.RANDWRITE,)
    block_sizes: Sequence[int] = PAPER_CHUNK_SIZES
    iodepths: Sequence[int] = PAPER_QUEUE_DEPTHS
    power_states: Sequence[Optional[int]] = (None,)
    base_job: JobSpec = field(
        default_factory=lambda: JobSpec(
            pattern=IoPattern.RANDWRITE,
            block_size=4096,
            iodepth=1,
            runtime_s=DEFAULT_RUNTIME_S,
            size_limit_bytes=DEFAULT_SIZE_LIMIT,
        )
    )
    warmup_fraction: float = 0.25
    seed: int = 0
    faults: Optional[FaultPlan] = None

    def points(self) -> Iterator[SweepPoint]:
        for power_state in self.power_states:
            for pattern in self.patterns:
                for block_size in self.block_sizes:
                    for iodepth in self.iodepths:
                        yield SweepPoint(pattern, block_size, iodepth, power_state)

    def config_for(self, point: SweepPoint) -> ExperimentConfig:
        job = replace(
            self.base_job,
            pattern=point.pattern,
            block_size=point.block_size,
            iodepth=point.iodepth,
        )
        # Derive a per-point seed so every experiment has independent noise
        # while the sweep stays reproducible as a whole.
        salt = stable_point_salt(point)
        return ExperimentConfig(
            device=self.device,
            job=job,
            power_state=point.power_state,
            warmup_fraction=self.warmup_fraction,
            seed=(self.seed * 1_000_003 + salt) & 0x7FFFFFFF,
            faults=self.faults,
        )


@dataclass(frozen=True)
class SweepOutcome:
    """Everything a sweep execution produced, successes and failures alike.

    Both mappings iterate in grid order.  A failed point never aborts the
    sweep: its configuration and exception are captured in ``failures``
    while every other point still lands in ``results``.

    ``validation`` carries the :class:`~repro.validate.report.ValidationReport`
    when the sweep ran with ``ExecutionOptions(validate=True)``; ``None``
    means validation was not requested.  ``telemetry`` carries the
    :class:`~repro.core.telemetry.SweepTelemetry` snapshot (per-point
    lifecycle spans, worker utilization, cache effectiveness) when the
    sweep ran with ``ExecutionOptions(telemetry=True)``; ``None`` means
    telemetry was not requested.  Both are passive observers: the
    results are bit-identical with and without them.
    """

    results: dict[SweepPoint, ExperimentResult]
    failures: dict[SweepPoint, PointFailure]
    validation: Optional[object] = None
    telemetry: Optional[object] = None

    @property
    def ok(self) -> bool:
        if self.failures:
            return False
        return self.validation is None or self.validation.ok


def sweep_outcome(
    grid: SweepGrid,
    options: Optional[ExecutionOptions] = UNSET,
    *legacy_args,
    **legacy_kwargs,
) -> SweepOutcome:
    """Execute ``grid``, capturing per-point failures instead of raising.

    Args:
        grid: The sweep specification.
        options: An :class:`~repro.core.options.ExecutionOptions` bundling
            every execution setting: worker count, result cache, tracing,
            profiling, per-point timeouts, retries, checkpointing and
            resume.  Omit it for the defaults (one in-process worker, no
            cache).  Results are identical for any worker count — points
            are independent and deterministic from their config — and
            always returned in grid order regardless of completion order.

    The pre-:class:`ExecutionOptions` calling convention (``n_workers``,
    ``cache_dir``, ``tracer``, ``profiler``, ``timeout_s``, ``retries``,
    ``checkpoint``, ``resume`` as individual arguments) still works and
    behaves identically, but emits a :class:`DeprecationWarning`.
    """
    opts = coerce_execution_options(
        "sweep_outcome", options, legacy_args, legacy_kwargs
    )
    if opts.resume and opts.cache_dir is None:
        raise ValueError(
            "resume requires cache_dir: completed points are skipped via "
            "their cached results"
        )
    if opts.resume and opts.checkpoint is None:
        raise ValueError("resume requires a checkpoint journal path")
    policy = None
    if opts.timeout_s is not None or opts.retries:
        policy = RetryPolicy(timeout_s=opts.timeout_s, retries=opts.retries)
    journal = None
    if opts.checkpoint is not None:
        journal = CheckpointJournal(opts.checkpoint)
        journal.open(fresh=not opts.resume)
    recorder = None
    cache = None
    if opts.telemetry or opts.progress is not None or opts.ledger is not None:
        # Imported lazily: telemetry is opt-in and the common path never
        # pays for (or even imports) it.
        from repro.core.telemetry import TelemetryRecorder

        recorder = TelemetryRecorder()
        if opts.progress is not None:
            recorder.on_progress = opts.progress
        if opts.cache_dir is not None:
            # Resolve the cache here so its hit/miss statistics survive
            # into the telemetry snapshot after run_configs returns.
            cache = (
                opts.cache_dir
                if isinstance(opts.cache_dir, ResultCache)
                else ResultCache(opts.cache_dir)
            )
            opts = opts.evolve(cache_dir=cache)
    points = list(grid.points())
    configs = [grid.config_for(point) for point in points]
    if opts.policy is not None:
        # The policy rides on each config rather than the execution
        # machinery: that is how it reaches pool workers, and how
        # config_content_hash folds it into cache keys (policy and
        # policy-free runs of the same grid never collide).
        configs = [replace(config, policy=opts.policy) for config in configs]
    if opts.fastpath is not None:
        # Same rider pattern as policy: the fastpath options travel on
        # each config so pool workers see them and config_content_hash
        # keeps accelerated and exact runs apart in the cache.
        configs = [replace(config, fastpath=opts.fastpath) for config in configs]
    try:
        outcomes = run_configs(
            configs,
            opts.evolve(timeout_s=None, retries=0, checkpoint=None, resume=False),
            policy=policy,
            journal=journal,
            recorder=recorder,
        )
    finally:
        if journal is not None:
            journal.close()
    results: dict[SweepPoint, ExperimentResult] = {}
    failures: dict[SweepPoint, PointFailure] = {}
    for point, outcome in zip(points, outcomes):
        if isinstance(outcome, PointFailure):
            failures[point] = outcome
        else:
            results[point] = outcome
    validation = None
    if opts.validate:
        # Imported lazily: repro.validate imports this module for typing,
        # and validation is opt-in -- the common path never pays for it.
        from repro.validate import emit_violations, validate_results

        validation = validate_results(results)
        if opts.tracer is not None and not validation.ok:
            emit_violations(validation, opts.tracer)
    telemetry = None
    if recorder is not None:
        telemetry = recorder.finalize(
            cache=cache.stats if cache is not None else None
        )
        if opts.ledger is not None:
            from repro.core.ledger import RunLedger, run_record

            ledger = (
                opts.ledger
                if isinstance(opts.ledger, RunLedger)
                else RunLedger(opts.ledger)
            )
            ledger.append(
                run_record(
                    "sweep",
                    telemetry=telemetry,
                    validation=validation,
                    points=len(points),
                    failures=len(failures),
                )
            )
    return SweepOutcome(
        results=results,
        failures=failures,
        validation=validation,
        telemetry=telemetry if opts.telemetry else None,
    )


def run_sweep(
    grid: SweepGrid,
    options: Optional[ExecutionOptions] = UNSET,
    *legacy_args,
    **legacy_kwargs,
) -> dict[SweepPoint, ExperimentResult]:
    """Execute every point of ``grid`` and return results in grid order.

    Raises :class:`~repro.core.parallel.SweepExecutionError` if any point
    failed; use :func:`sweep_outcome` to capture failures instead.  With
    ``ExecutionOptions(validate=True)``, additionally raises
    :class:`~repro.validate.report.InvariantViolationError` if the
    completed results violate any physics invariant.  See
    :func:`sweep_outcome` for the ``options`` parameter; the legacy
    individual-keyword form works but warns.
    """
    opts = coerce_execution_options("run_sweep", options, legacy_args, legacy_kwargs)
    outcome = sweep_outcome(grid, opts)
    if outcome.failures:
        raise SweepExecutionError(list(outcome.failures.values()))
    if outcome.validation is not None and not outcome.validation.ok:
        from repro.validate import InvariantViolationError

        raise InvariantViolationError(outcome.validation)
    return outcome.results
