"""Parameter sweeps over the power-control mechanism space.

The paper's figures all come from one grid: {random, sequential} x {read,
write} x 6 chunk sizes x 6 queue depths x the device's power states.
:func:`run_sweep` executes such a grid and returns the results keyed by
configuration, ready for :class:`~repro.core.model.PowerThroughputModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, Optional, Sequence

from repro._units import GiB, MiB
from repro.core.experiment import ExperimentConfig, ExperimentResult, run_experiment
from repro.iogen.spec import (
    IoPattern,
    JobSpec,
    PAPER_CHUNK_SIZES,
    PAPER_QUEUE_DEPTHS,
)

__all__ = ["SweepGrid", "SweepPoint", "run_sweep"]

#: Default simulation-scale stop rule standing in for the paper's
#: "one minute or 4 GiB": 80 simulated milliseconds or 48 MiB.
DEFAULT_RUNTIME_S = 0.080
DEFAULT_SIZE_LIMIT = 48 * MiB


@dataclass(frozen=True)
class SweepPoint:
    """One grid coordinate."""

    pattern: IoPattern
    block_size: int
    iodepth: int
    power_state: Optional[int]

    def describe(self) -> str:
        ps = "" if self.power_state is None else f" ps{self.power_state}"
        return (
            f"{self.pattern.value} bs={self.block_size // 1024}k "
            f"qd={self.iodepth}{ps}"
        )


@dataclass(frozen=True)
class SweepGrid:
    """A sweep specification for one device.

    Attributes:
        device: Device preset label or config.
        patterns: Access patterns to cover.
        block_sizes: Chunk sizes (defaults to the paper's six).
        iodepths: Queue depths (defaults to the paper's six).
        power_states: NVMe power states to include; ``(None,)`` for
            devices without a power state table.
        base_job: Template providing stop conditions and region; the grid
            overrides pattern/bs/iodepth per point.
        seed: Root seed; each point forks its own streams.
    """

    device: object
    patterns: Sequence[IoPattern] = (IoPattern.RANDWRITE,)
    block_sizes: Sequence[int] = PAPER_CHUNK_SIZES
    iodepths: Sequence[int] = PAPER_QUEUE_DEPTHS
    power_states: Sequence[Optional[int]] = (None,)
    base_job: JobSpec = field(
        default_factory=lambda: JobSpec(
            pattern=IoPattern.RANDWRITE,
            block_size=4096,
            iodepth=1,
            runtime_s=DEFAULT_RUNTIME_S,
            size_limit_bytes=DEFAULT_SIZE_LIMIT,
        )
    )
    warmup_fraction: float = 0.25
    seed: int = 0

    def points(self) -> Iterator[SweepPoint]:
        for power_state in self.power_states:
            for pattern in self.patterns:
                for block_size in self.block_sizes:
                    for iodepth in self.iodepths:
                        yield SweepPoint(pattern, block_size, iodepth, power_state)

    def config_for(self, point: SweepPoint) -> ExperimentConfig:
        job = replace(
            self.base_job,
            pattern=point.pattern,
            block_size=point.block_size,
            iodepth=point.iodepth,
        )
        # Derive a per-point seed so every experiment has independent noise
        # while the sweep stays reproducible as a whole.
        salt = hash(
            (point.pattern.value, point.block_size, point.iodepth, point.power_state)
        )
        return ExperimentConfig(
            device=self.device,
            job=job,
            power_state=point.power_state,
            warmup_fraction=self.warmup_fraction,
            seed=(self.seed * 1_000_003 + salt) & 0x7FFFFFFF,
        )


def run_sweep(grid: SweepGrid) -> dict[SweepPoint, ExperimentResult]:
    """Execute every point of ``grid`` (sequentially, deterministic order)."""
    return {point: run_experiment(grid.config_for(point)) for point in grid.points()}
