"""Sweep health reports from ledger provenance.

``repro report`` turns a :class:`~repro.core.ledger.RunLedger` stream
into the one-page answer an operator wants after (or during) a long
sweep: did throughput regress over the run, which points dominated the
wall clock, did the cache actually help, what retried or timed out, how
well did the policies track their budgets, what a fleet run's governor
did per epoch, and did validation sign off.
:func:`build_report` computes a JSON-ready structure (for dashboards and
diffing); :func:`render_markdown` formats it for humans.

The report is computed purely from ledger records, so it works across
sessions and resumes -- including over a sweep that is still running,
since the ledger is append-only and torn-tail tolerant.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = ["build_report", "render_markdown"]

#: Statuses that count as incidents in the executor section.
_BAD_STATUSES = ("failed", "timeout", "crashed")


def _executor_section(points: List[dict], runs: List[dict]) -> dict:
    executed = [p for p in points if p.get("wall_s", 0) > 0]
    wall = sum(p["wall_s"] for p in executed)
    events = sum(p.get("sim_events", 0) for p in executed)
    section: dict = {
        "executed": len(executed),
        "wall_s": wall,
        "sim_events": events,
        "events_per_s": events / wall if wall > 0 else 0.0,
    }
    # Throughput trend: events/sec over quartiles of ledger order.  A
    # sagging tail means the machine (or the grid's late points) got
    # slower -- the regression signal ROADMAP's fleet goal watches.
    if len(executed) >= 4:
        quarter = len(executed) // 4
        trend = []
        for i in range(4):
            chunk = executed[i * quarter : (i + 1) * quarter if i < 3 else None]
            chunk_wall = sum(p["wall_s"] for p in chunk)
            chunk_events = sum(p.get("sim_events", 0) for p in chunk)
            trend.append(chunk_events / chunk_wall if chunk_wall > 0 else 0.0)
        section["events_per_s_trend"] = trend
    section["slowest"] = [
        {
            "label": p.get("label", p.get("key", "?")),
            "wall_s": p["wall_s"],
            "events_per_s": p.get("events_per_s", 0.0),
            "attempts": p.get("attempts", 1),
        }
        for p in sorted(executed, key=lambda p: -p["wall_s"])[:5]
    ]
    section["incidents"] = [
        {
            "label": p.get("label", p.get("key", "?")),
            "status": p.get("status", "?"),
            "attempts": p.get("attempts", 1),
            "error": p.get("error", ""),
        }
        for p in points
        if p.get("status") in _BAD_STATUSES or p.get("attempts", 1) > 1
    ]
    # Pool-level numbers only executor telemetry knows (queue wait,
    # worker utilization): take them from the latest run record that
    # actually ran a pool -- an in-process run has no pool to report on.
    for run in reversed(runs):
        telemetry = run.get("telemetry") or {}
        if "utilization" in telemetry and telemetry.get("workers"):
            section["utilization"] = telemetry["utilization"]
            section["mean_queue_wait_s"] = telemetry.get(
                "mean_queue_wait_s", 0.0
            )
            break
    return section


def _cache_section(points: List[dict], runs: List[dict]) -> dict:
    totals = {"hits": 0, "misses": 0, "corrupt": 0, "puts": 0}
    seen_stats = False
    for run in runs:
        cache = (run.get("telemetry") or {}).get("cache")
        if cache:
            seen_stats = True
            for key in totals:
                totals[key] += cache.get(key, 0)
    if not seen_stats:
        # No run-record stats (e.g. a study writing only point records):
        # the point-status census still shows cache effectiveness.
        totals["hits"] = sum(1 for p in points if p.get("status") == "cached")
        totals["misses"] = len(points) - totals["hits"]
    lookups = totals["hits"] + totals["misses"]
    totals["hit_rate"] = totals["hits"] / lookups if lookups else 0.0
    return totals


def _rollup_section(points: List[dict]) -> dict:
    """Per (device, power-state) fleet view from point result summaries.

    Per-point p99s are folded through a
    :class:`~repro.obs.aggregate.BucketedHistogram`, so the group "p99"
    is an honest upper bound over the distribution of per-point tails,
    not a fabricated average of percentiles.
    """
    from repro.obs.aggregate import BucketedHistogram

    groups: Dict[Tuple[str, str], dict] = {}
    for p in points:
        result = p.get("result")
        if not result:
            continue
        key = (str(p.get("device", "?")), str(p.get("power_state")))
        group = groups.get(key)
        if group is None:
            group = groups[key] = {
                "points": 0,
                "power_sum": 0.0,
                "tput_sum": 0.0,
                "p99_hist": BucketedHistogram(),
            }
        group["points"] += 1
        group["power_sum"] += result.get("mean_power_w", 0.0)
        group["tput_sum"] += result.get("throughput_mib_s", 0.0)
        if "p99_us" in result:
            group["p99_hist"].observe(result["p99_us"] * 1e-6)
    out = {}
    for key in sorted(groups):
        group = groups[key]
        hist = group.pop("p99_hist")
        n = group["points"]
        label = (
            f"{key[0]}/ps{key[1]}" if key[1] != "None" else key[0]
        )
        out[label] = {
            "points": n,
            "mean_power_w": group["power_sum"] / n,
            "mean_throughput_mib_s": group["tput_sum"] / n,
            "p99_us_worst": hist.max * 1e6,
            "p99_us_p99": hist.quantile(0.99) * 1e6,
        }
    return out


def _policy_section(points: List[dict]) -> dict:
    groups: Dict[Tuple[str, str], dict] = {}
    for p in points:
        policy = (p.get("result") or {}).get("policy")
        if not policy:
            continue
        key = (str(p.get("device", "?")), policy.get("kind", "?"))
        group = groups.get(key)
        if group is None:
            group = groups[key] = {
                "points": 0,
                "error_sum": 0.0,
                "set_point_changes": 0,
                "max_overshoot_w": 0.0,
            }
        group["points"] += 1
        group["error_sum"] += policy.get("mean_abs_error_w", 0.0)
        group["set_point_changes"] += policy.get("set_point_changes", 0)
        group["max_overshoot_w"] = max(
            group["max_overshoot_w"], policy.get("max_overshoot_w", 0.0)
        )
    out = {}
    for key in sorted(groups):
        group = groups[key]
        out[f"{key[0]}/{key[1]}"] = {
            "points": group["points"],
            "mean_tracking_error_w": group["error_sum"] / group["points"],
            "set_point_changes": group["set_point_changes"],
            "max_overshoot_w": group["max_overshoot_w"],
        }
    return out


def _chaos_section(runs: List[dict]) -> Optional[dict]:
    """The latest chaos campaign's digest, verbatim from its run record.

    The campaign writes its own compact summary (controller ranking,
    violation totals, minimized reproducers) under the ``chaos`` key of
    its close-out record; the report surfaces the most recent one.
    """
    for run in reversed(runs):
        chaos = run.get("chaos")
        if chaos:
            return chaos
    return None


def _fleet_section(
    fleet_records: List[dict], runs: List[dict]
) -> Optional[dict]:
    """Fleet epoch accounting plus the latest fleet run's headline.

    ``repro fleet`` appends one ``fleet`` record per governor epoch and
    a ``run`` close-out carrying the headline summary (harvest, dynamic
    range, p99 blowup, digest) under its ``fleet`` key; the report
    surfaces both.
    """
    section: dict = {}
    for run in reversed(runs):
        fleet = run.get("fleet")
        if fleet:
            section["summary"] = fleet
            break
    if fleet_records:
        section["epochs"] = [
            {
                key: record.get(key)
                for key in (
                    "epoch",
                    "devices",
                    "budget_w",
                    "allocated_w",
                    "deficit_w",
                    "measured_w",
                    "baseline_w",
                    "p99_us",
                    "baseline_p99_us",
                    "intensity",
                )
            }
            for record in fleet_records
        ]
    return section or None


def _validation_section(runs: List[dict]) -> Optional[dict]:
    checked = 0
    violations: Dict[str, int] = {}
    verdicts = []
    seen = False
    for run in runs:
        validation = run.get("validation")
        if not validation:
            continue
        seen = True
        checked += validation.get("checked", 0)
        verdicts.append(bool(validation.get("ok", False)))
        for invariant, count in (validation.get("violations") or {}).items():
            violations[invariant] = violations.get(invariant, 0) + count
    if not seen:
        return None
    return {
        "ok": all(verdicts),
        "checked": checked,
        "violations": {k: violations[k] for k in sorted(violations)},
    }


def build_report(records: List[dict]) -> dict:
    """Compute the sweep health report from ledger records.

    Returns a JSON-ready dict with ``overview``, ``executor``, ``cache``,
    ``rollup``, ``policy`` (when any point ran a policy), ``fleet``
    (when a fleet run left epoch records or a summary), and
    ``validation`` (when any run validated) sections, plus a top-level
    ``ok`` verdict: the latest run record's validation passed (or was
    absent) and the latest batch reported no failures.

    Records of a kind this reader does not know are counted (never
    silently dropped): ``overview.skipped_records`` says how many, so a
    report rendered by an older tool over a newer ledger admits what it
    left out.
    """
    points = [r for r in records if r.get("rec") == "point"]
    runs = [r for r in records if r.get("rec") == "run"]
    fleet_records = [r for r in records if r.get("rec") == "fleet"]
    skipped = len(records) - len(points) - len(runs) - len(fleet_records)
    by_status: Dict[str, int] = {}
    for p in points:
        status = p.get("status", "?")
        by_status[status] = by_status.get(status, 0) + 1
    ok = True
    if runs:
        last = runs[-1]
        if last.get("failures", 0) > 0:
            ok = False
        last_validation = last.get("validation")
        if last_validation is not None and not last_validation.get("ok", False):
            ok = False
    else:
        ok = not any(by_status.get(status) for status in _BAD_STATUSES)
    report = {
        "ok": ok,
        "overview": {
            "points": len(points),
            "runs": len(runs),
            "skipped_records": skipped,
            "by_status": {k: by_status[k] for k in sorted(by_status)},
            "devices": sorted(
                {str(p.get("device", "?")) for p in points}
            ),
        },
        "executor": _executor_section(points, runs),
        "cache": _cache_section(points, runs),
        "rollup": _rollup_section(points),
    }
    policy = _policy_section(points)
    if policy:
        report["policy"] = policy
    chaos = _chaos_section(runs)
    if chaos is not None:
        report["chaos"] = chaos
    fleet = _fleet_section(fleet_records, runs)
    if fleet is not None:
        report["fleet"] = fleet
    validation = _validation_section(runs)
    if validation is not None:
        report["validation"] = validation
    return report


def _md_table(headers: List[str], rows: List[List[str]]) -> List[str]:
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join(" --- " for _ in headers) + "|",
    ]
    lines.extend("| " + " | ".join(row) + " |" for row in rows)
    return lines


def render_markdown(report: dict) -> str:
    """Render :func:`build_report` output as a markdown document."""
    overview = report["overview"]
    executor = report["executor"]
    cache = report["cache"]
    lines = ["# Sweep health report", ""]
    census = ", ".join(
        f"{count} {status}"
        for status, count in overview["by_status"].items()
    ) or "no points"
    lines.append(
        f"**{'OK' if report['ok'] else 'NOT OK'}** -- "
        f"{overview['points']} point record(s) across "
        f"{overview['runs']} run(s) on "
        f"{', '.join(overview['devices']) or 'no devices'}; {census}."
    )
    if overview.get("skipped_records"):
        lines.append(
            f"skipped {overview['skipped_records']} unrecognized "
            "record(s) (written by a newer tool?)"
        )

    lines.extend(["", "## Executor", ""])
    lines.append(
        f"- executed {executor['executed']} point(s) in "
        f"{executor['wall_s']:.2f} s wall "
        f"({executor['events_per_s']:,.0f} events/s)"
    )
    if "events_per_s_trend" in executor:
        trend = " -> ".join(
            f"{rate:,.0f}" for rate in executor["events_per_s_trend"]
        )
        lines.append(f"- throughput trend (events/s by quartile): {trend}")
    if "utilization" in executor:
        lines.append(
            f"- pool utilization {executor['utilization']:.0%}, "
            f"mean queue wait {executor['mean_queue_wait_s'] * 1e3:.1f} ms"
        )
    if executor["slowest"]:
        lines.extend(["", "### Slowest points", ""])
        lines.extend(
            _md_table(
                ["Point", "Wall s", "Events/s", "Attempts"],
                [
                    [
                        p["label"],
                        f"{p['wall_s']:.3f}",
                        f"{p['events_per_s']:,.0f}",
                        str(p["attempts"]),
                    ]
                    for p in executor["slowest"]
                ],
            )
        )
    if executor["incidents"]:
        lines.extend(["", "### Incidents", ""])
        lines.extend(
            _md_table(
                ["Point", "Status", "Attempts", "Error"],
                [
                    [
                        p["label"],
                        p["status"],
                        str(p["attempts"]),
                        p["error"] or "-",
                    ]
                    for p in executor["incidents"]
                ],
            )
        )

    lines.extend(["", "## Cache", ""])
    lines.append(
        f"- {cache['hits']} hit(s), {cache['misses']} miss(es) "
        f"({cache['hit_rate']:.0%} hit rate), {cache['corrupt']} corrupt, "
        f"{cache['puts']} write(s)"
    )

    if report["rollup"]:
        lines.extend(["", "## Metrics rollup (device x power state)", ""])
        lines.extend(
            _md_table(
                ["Group", "Points", "Mean W", "MiB/s", "Worst p99 us"],
                [
                    [
                        label,
                        str(group["points"]),
                        f"{group['mean_power_w']:.2f}",
                        f"{group['mean_throughput_mib_s']:.0f}",
                        f"{group['p99_us_worst']:.0f}",
                    ]
                    for label, group in report["rollup"].items()
                ],
            )
        )

    if "policy" in report:
        lines.extend(["", "## Policy tracking", ""])
        lines.extend(
            _md_table(
                ["Device/Policy", "Points", "Track err W", "Set-points",
                 "Overshoot W"],
                [
                    [
                        label,
                        str(group["points"]),
                        f"{group['mean_tracking_error_w']:.3f}",
                        str(group["set_point_changes"]),
                        f"{group['max_overshoot_w']:.2f}",
                    ]
                    for label, group in report["policy"].items()
                ],
            )
        )

    if "chaos" in report:
        chaos = report["chaos"]
        lines.extend(["", "## Chaos resilience", ""])
        lines.append(
            f"- {chaos.get('cells', 0)} cell(s), watchdog "
            f"{'armed' if chaos.get('watchdog') else 'off'}, "
            f"{chaos.get('violations', 0)} violation(s)"
        )
        lines.append("")
        lines.extend(
            _md_table(
                ["Controller", "Harvest retained", "Max p99", "Violations"],
                [
                    [
                        controller,
                        f"{group.get('harvest_retained', 0.0):.1%}",
                        f"{group.get('max_p99_blowup', 0.0):.2f}x",
                        str(group.get("violations", 0)),
                    ]
                    for controller, group in (
                        chaos.get("controllers") or {}
                    ).items()
                ],
            )
        )
        for repro in chaos.get("reproducers") or []:
            lines.append(
                f"- reproducer: {repro.get('device')}/"
                f"{repro.get('controller')} [{repro.get('plan')}]: "
                f"--faults '{repro.get('faults')}'"
            )

    if "fleet" in report:
        fleet = report["fleet"]
        lines.extend(["", "## Fleet", ""])
        summary = fleet.get("summary")
        if summary:
            lines.append(
                f"- {summary.get('devices', 0)} device(s) over "
                f"{summary.get('epochs', 0)} epoch(s): harvested "
                f"{summary.get('harvest_fraction', 0.0):.1%} of fleet power, "
                f"dynamic range {summary.get('dynamic_range_w', 0.0):.1f} W, "
                f"p99 blowup {summary.get('p99_blowup', 0.0):.2f}x "
                f"(digest {summary.get('digest', '?')})"
            )
        if fleet.get("epochs"):
            lines.append("")
            lines.extend(
                _md_table(
                    ["Epoch", "Budget W", "Alloc W", "Deficit W",
                     "Fleet W", "Base W", "p99 us"],
                    [
                        [
                            str(e.get("epoch", "?")),
                            f"{e.get('budget_w') or 0.0:.1f}",
                            f"{e.get('allocated_w') or 0.0:.1f}",
                            f"{e.get('deficit_w') or 0.0:.1f}",
                            f"{e.get('measured_w') or 0.0:.1f}",
                            f"{e.get('baseline_w') or 0.0:.1f}",
                            f"{e.get('p99_us') or 0.0:.0f}",
                        ]
                        for e in fleet["epochs"]
                    ],
                )
            )

    lines.extend(["", "## Validation", ""])
    if "validation" in report:
        validation = report["validation"]
        verdict = "all invariants hold" if validation["ok"] else "VIOLATIONS"
        lines.append(
            f"- {validation['checked']} result(s) checked: {verdict}"
        )
        for invariant, count in validation["violations"].items():
            lines.append(f"  - {invariant}: {count} violation(s)")
    else:
        lines.append("- no validation verdicts recorded")
    return "\n".join(lines) + "\n"
