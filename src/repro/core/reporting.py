"""Plain-text tables for benchmark output and EXPERIMENTS.md.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep that output consistent and readable in a
terminal without any plotting dependency.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["ascii_scatter", "ascii_series", "format_table"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned monospace table.

    >>> print(format_table(["a", "b"], [[1, 2.5], [10, 0.25]]))
    a   b
    --  ----
    1   2.5
    10  0.25
    """
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 100:
            return f"{value:.0f}"
        if magnitude >= 1:
            return f"{value:.2f}".rstrip("0").rstrip(".")
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def ascii_scatter(
    series: dict[str, Sequence[tuple[float, float]]],
    width: int = 56,
    height: int = 18,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """A character-cell scatter plot over the unit box.

    ``series`` maps a label to (x, y) points in [0, 1] (values outside are
    clamped); each series gets a distinct marker character.  Used by the
    Figure-10 driver to sketch the normalized power-throughput scatter the
    way the paper plots it.
    """
    if width < 8 or height < 4:
        raise ValueError("plot area too small")
    markers = "ox+*#@%&"
    grid = [[" "] * width for _ in range(height)]
    legend_parts = []
    for index, (label, points) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        legend_parts.append(f"{marker}={label}")
        for x, y in points:
            x = min(max(x, 0.0), 1.0)
            y = min(max(y, 0.0), 1.0)
            column = min(int(x * (width - 1)), width - 1)
            row = height - 1 - min(int(y * (height - 1)), height - 1)
            grid[row][column] = marker
    lines = [f"{y_label} ^"]
    for row in grid:
        lines.append("  | " + "".join(row))
    lines.append("  +" + "-" * (width + 1) + f"> {x_label}")
    lines.append("    " + "   ".join(legend_parts))
    return "\n".join(lines)


def ascii_series(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 50,
    label: str = "",
) -> str:
    """A tiny horizontal bar chart: one row per (x, y) point.

    Used by figure drivers to give the terminal a visual of each series
    alongside the numeric table.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if not ys:
        return label
    peak = max(ys) or 1.0
    lines = [label] if label else []
    for x, y in zip(xs, ys):
        bar = "#" * max(int(round(width * y / peak)), 0)
        lines.append(f"{_fmt(x):>10}  {bar} {_fmt(y)}")
    return "\n".join(lines)
