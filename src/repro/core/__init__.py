"""The paper's primary contribution.

Everything in this package corresponds to sections 3.3 and 4 of the paper:

- :mod:`~repro.core.experiment` -- one measurement: a device, a workload,
  a power-control configuration; returns power, throughput and latency.
- :mod:`~repro.core.sweep` -- the full mechanism grid (chunk sizes x queue
  depths x power states x patterns) behind every figure.
- :mod:`~repro.core.parallel` -- process-pool execution of experiment
  batches: deterministic ordering, per-point failure capture, an on-disk
  result cache keyed by config content hash.
- :mod:`~repro.core.model` -- the per-device power-throughput model
  (Fig. 10): normalized operating points, dynamic range, configuration
  queries under power budgets.
- :mod:`~repro.core.pareto` -- Pareto frontiers over operating points.
- :mod:`~repro.core.adaptive` -- the single-device planner of the paper's
  worked example (find a config meeting a power cut with minimal
  throughput loss; compute curtailable best-effort load).
- :mod:`~repro.core.fleet` -- deprecated alias of
  :mod:`repro.fleet.model` (multi-device model composition moved into
  the :mod:`repro.fleet` cluster package).
- :mod:`~repro.core.redirection` -- power-aware IO redirection (section 4).
- :mod:`~repro.core.asymmetric` -- asymmetric read/write segregation.
- :mod:`~repro.core.tiering` -- tiered write absorption during spin-up.
- :mod:`~repro.core.reporting` -- text tables for benches/EXPERIMENTS.md.

Extensions past the paper's evaluation (its section-4 sketches, built):

- :mod:`~repro.core.latency_model` -- the power-*latency* model.
- :mod:`~repro.core.controller` -- an online feedback controller tracking
  a time-varying power budget on live simulated devices.
- :mod:`~repro.core.safety` -- breaker-safe staged rollout (section 4.1).
- :mod:`~repro.core.interactions` -- CPU-throttle interaction analysis.
"""

from repro.core.adaptive import AdaptivePlan, PowerAdaptivePlanner
from repro.core.controller import BudgetSignal, OnlinePowerController
from repro.core.experiment import ExperimentConfig, ExperimentResult, run_experiment
from repro.core.latency_model import LatencyPoint, PowerLatencyModel
from repro.core.model import ModelPoint, PowerThroughputModel
from repro.core.parallel import (
    PointFailure,
    ResultCache,
    SweepExecutionError,
    config_content_hash,
    run_configs,
)
from repro.core.pareto import pareto_frontier
from repro.core.sweep import SweepGrid, SweepOutcome, run_sweep, sweep_outcome

__all__ = [
    "AdaptivePlan",
    "BudgetSignal",
    "ExperimentConfig",
    "ExperimentResult",
    "LatencyPoint",
    "ModelPoint",
    "OnlinePowerController",
    "PointFailure",
    "PowerAdaptivePlanner",
    "PowerLatencyModel",
    "PowerThroughputModel",
    "ResultCache",
    "SweepExecutionError",
    "SweepGrid",
    "SweepOutcome",
    "config_content_hash",
    "pareto_frontier",
    "run_configs",
    "run_sweep",
    "sweep_outcome",
]
