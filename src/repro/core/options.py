"""Execution options for sweep and batch experiment runs.

Historically :func:`repro.core.sweep.run_sweep` and friends grew one
keyword per execution concern -- worker count, result cache, tracing,
profiling, per-point timeouts, retries, checkpointing, resume -- until
every call site threaded eight loose kwargs through three layers.
:class:`ExecutionOptions` consolidates them into one frozen value object
that travels as a unit:

    options = ExecutionOptions(n_workers=4, cache_dir="cache", retries=1)
    results = run_sweep(grid, options)

The legacy keyword (and positional) form still works through a
``DeprecationWarning`` shim -- :func:`coerce_execution_options` performs
the translation for every public entry point so behaviour is identical
down to default values.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Callable, Optional, Union

from repro.obs.events import Tracer
from repro.obs.profile import RunProfiler

__all__ = ["ExecutionOptions", "UNSET", "coerce_execution_options"]

#: Sentinel distinguishing "argument not passed" from an explicit ``None``
#: (``n_workers=None`` legitimately means "use every core").  Entry points
#: use it as the default of their ``options`` parameter so a legacy
#: positional ``None`` keeps its all-cores meaning.
UNSET: Any = object()

#: Legacy keyword order of ``run_sweep(grid, n_workers, cache_dir, tracer,
#: profiler, ...)``; positional shim arguments map onto this sequence.
_LEGACY_POSITIONAL = ("n_workers", "cache_dir", "tracer", "profiler")

_LEGACY_KEYWORDS = (
    "n_workers",
    "cache_dir",
    "tracer",
    "profiler",
    "timeout_s",
    "retries",
    "checkpoint",
    "resume",
)


@dataclass(frozen=True)
class ExecutionOptions:
    """How to execute a batch of experiments (not *what* to execute).

    Attributes:
        n_workers: Process-pool width; ``1`` runs in-process, ``None``
            uses every core.  Results are identical either way.
        cache_dir: On-disk result cache directory (or a
            :class:`~repro.core.parallel.ResultCache` instance for
            hit/miss statistics).  Cached points are not re-run.
        tracer: Optional :class:`~repro.obs.events.Tracer` recording
            mechanism events (forces in-process execution; passive).
        profiler: Optional :class:`~repro.obs.profile.RunProfiler`
            collecting per-point wall-clock cost (also in-process).
        timeout_s: Per-attempt wall-clock budget for one point; a worker
            still running at the deadline is killed and the point retried
            or reported as a timeout failure.
        retries: Extra attempts per failing point.
        checkpoint: Path of a
            :class:`~repro.core.checkpoint.CheckpointJournal` recording
            point lifecycle.
        resume: Continue an interrupted sweep; requires both
            ``cache_dir`` and ``checkpoint``.
        validate: Run the :mod:`repro.validate` invariant checkers over
            the completed results.  :func:`~repro.core.sweep.sweep_outcome`
            attaches the report to the outcome;
            :func:`~repro.core.sweep.run_sweep` raises
            :class:`~repro.validate.report.InvariantViolationError` if any
            invariant fails.  Validation is post-hoc and passive: results
            are bit-identical with and without it.
        policy: Optional :class:`~repro.policy.spec.PolicySpec` attached
            to every point of the sweep (an online power-adaptive
            controller).  Typed as ``object`` so this module never
            imports :mod:`repro.policy`; ``None`` keeps the policy
            machinery entirely unloaded.
        fastpath: Optional
            :class:`~repro.sim.fastpath.options.FastpathOptions` attached
            to every point of the sweep (analytic steady-state
            fast-forward / batched kernel dispatch).  Typed as ``object``
            so this module never imports :mod:`repro.sim.fastpath`;
            ``None`` keeps the fastpath machinery entirely unloaded and
            every point bit-identical to a build without it.
        telemetry: Collect executor-side telemetry (per-point lifecycle
            spans, worker utilization, cache effectiveness) into a
            :class:`~repro.core.telemetry.SweepTelemetry` attached to
            the :class:`~repro.core.sweep.SweepOutcome`.  Wall-clock
            only and strictly passive: results are bit-identical with
            and without it, and the telemetry module is not even
            imported when this is off.
        ledger: Path of (or an open
            :class:`~repro.core.ledger.RunLedger` for) an append-only
            JSONL provenance log: one record per executed point (config
            hash, seed, status, wall time, events/sec, result summary)
            plus one per run (validation verdict, cache stats, executor
            summary), surviving across sessions and resumes.
        progress: Optional callback receiving a
            :class:`~repro.core.telemetry.ProgressUpdate` after every
            point reaches a terminal state -- the hook behind the CLI's
            live progress/ETA line for long sweeps.
    """

    n_workers: Optional[int] = 1
    cache_dir: Optional[Union[str, Path, object]] = None
    tracer: Optional[Tracer] = None
    profiler: Optional[RunProfiler] = None
    timeout_s: Optional[float] = None
    retries: int = 0
    checkpoint: Optional[Union[str, Path]] = None
    resume: bool = False
    validate: bool = False
    policy: Optional[object] = None
    fastpath: Optional[object] = None
    telemetry: bool = False
    ledger: Optional[Union[str, Path, object]] = None
    progress: Optional[Callable[[Any], None]] = None

    def __post_init__(self) -> None:
        if self.n_workers is not None and self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1 or None, got {self.n_workers!r}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {self.timeout_s!r}")
        if self.retries < 0:
            raise ValueError(f"retries must be non-negative, got {self.retries!r}")

    @property
    def resilient(self) -> bool:
        """Whether these options need the owned (kill-capable) worker pool."""
        return self.timeout_s is not None or self.retries > 0

    def evolve(self, **changes: Any) -> "ExecutionOptions":
        """Return a copy with ``changes`` applied (frozen-safe update)."""
        return replace(self, **changes)


def coerce_execution_options(
    func_name: str,
    options: Any,
    legacy_args: tuple,
    legacy_kwargs: dict,
    *,
    stacklevel: int = 3,
) -> ExecutionOptions:
    """Translate a call in either style into one :class:`ExecutionOptions`.

    ``options`` is the value of the second positional parameter: either an
    :class:`ExecutionOptions` (new style), or the legacy ``n_workers``
    value (old positional style), or ``None``.  ``legacy_args`` are any
    further positional arguments (legacy ``cache_dir``, ``tracer``,
    ``profiler``) and ``legacy_kwargs`` any of the eight legacy keywords.

    The legacy forms work unchanged but emit a :class:`DeprecationWarning`
    naming the replacement.  Mixing an explicit options object with legacy
    keywords is a :class:`TypeError` -- there is no sensible precedence.
    """
    if isinstance(options, ExecutionOptions):
        if legacy_args or legacy_kwargs:
            parts = []
            if legacy_args:
                parts.append(f"{len(legacy_args)} positional")
            parts.extend(sorted(legacy_kwargs))
            raise TypeError(
                f"{func_name}() got both an ExecutionOptions object and "
                f"legacy execution arguments ({', '.join(parts)}); move "
                "every setting into the options object"
            )
        return options

    unknown = set(legacy_kwargs) - set(_LEGACY_KEYWORDS)
    if unknown:
        raise TypeError(
            f"{func_name}() got unexpected keyword argument(s): "
            f"{', '.join(sorted(unknown))}"
        )
    if len(legacy_args) > len(_LEGACY_POSITIONAL) - 1:
        raise TypeError(
            f"{func_name}() takes at most {len(_LEGACY_POSITIONAL) + 1} "
            "positional arguments in its deprecated form"
        )

    fields: dict[str, Any] = {}
    if options is not UNSET:
        # Old-style second positional argument: n_workers.  An explicit
        # ``None`` here is meaningful (use every core), which is why the
        # absent case is the UNSET sentinel rather than None.  Anything
        # other than an int or None is a caller error -- rejecting it
        # here gives a clear message instead of a confusing failure deep
        # inside the worker pool (a string "4" once got that far).
        if options is not None and not isinstance(options, int):
            raise TypeError(
                f"{func_name}() second positional argument must be an "
                f"ExecutionOptions, an int worker count, or None; got "
                f"{options!r}"
            )
        fields["n_workers"] = options
    for name, value in zip(_LEGACY_POSITIONAL[1:], legacy_args):
        fields[name] = value
    for name in _LEGACY_KEYWORDS:
        value = legacy_kwargs.get(name, UNSET)
        if value is UNSET:
            continue
        if name in fields:
            raise TypeError(
                f"{func_name}() got multiple values for argument {name!r}"
            )
        fields[name] = value

    if fields:
        warnings.warn(
            f"passing execution settings to {func_name}() as individual "
            f"arguments ({', '.join(sorted(fields))}) is deprecated; pass "
            f"{func_name}(..., options=ExecutionOptions(...)) instead",
            DeprecationWarning,
            stacklevel=stacklevel,
        )
    # Explicit None for n_workers means "all cores", which is exactly the
    # legacy default for that keyword being absent in run_configs but not
    # in the sweep helpers; the legacy defaults are preserved by only
    # overriding fields that were actually passed.
    return ExecutionOptions(**fields)
