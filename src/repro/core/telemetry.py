"""Sweep-scale executor telemetry.

:mod:`repro.obs` observes one *simulation* at a time; this module
observes the *executor* that fans hundreds of simulations out across a
worker pool.  A long sweep is a small distributed system -- points queue,
dispatch, run, time out, retry, crash, and land in a result cache -- and
until now that system was a black box: :class:`~repro.core.parallel.CacheStats`
and :class:`~repro.core.parallel.PointFailure` captured fragments, but
nothing tied them into a picture of where the wall-clock went.

The model mirrors the obs layer's house rules:

- **Strictly passive.**  Telemetry records wall-clock timestamps and
  counts around experiment execution; it never touches simulation state,
  RNG streams, or the result objects, so telemetered results pickle
  bit-identical to untelemetered ones (the telemetry-overhead benchmark
  asserts this).
- **Zero cost when off.**  Nothing here is imported or instantiated
  unless :class:`~repro.core.options.ExecutionOptions` asked for
  telemetry, a ledger, or progress reporting; the executor's default
  paths carry a ``None`` recorder and pay one ``is not None`` test.
- **Compact wire format.**  Pool workers ship one
  :class:`~repro.obs.profile.PointProfile` per attempt back over the
  existing pipe protocol -- four scalars and a label, not an event
  stream.

Vocabulary:

- :class:`PointSpan` -- one point's lifecycle through the executor
  (queued -> dispatched -> running -> retried/timed-out/done/cached).
- :class:`WorkerStats` -- one pool worker's utilization: busy seconds
  over alive seconds, and how many attempts it served.
- :class:`SweepTelemetry` -- the frozen snapshot attached to
  :class:`~repro.core.sweep.SweepOutcome`; :meth:`SweepTelemetry.merge`
  is associative, so shards of a partitioned sweep roll up in any order.
- :class:`TelemetryRecorder` -- the mutable builder the executor feeds.
- :class:`ProgressUpdate` -- one live progress/ETA sample delivered to
  an ``ExecutionOptions.progress`` callback.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.obs.profile import PointProfile

__all__ = [
    "PointSpan",
    "ProgressUpdate",
    "SweepTelemetry",
    "TelemetryRecorder",
    "WorkerStats",
    "point_status",
]

#: Terminal lifecycle states a :class:`PointSpan` can report.
POINT_STATUSES = ("done", "cached", "failed", "timeout", "crashed")


def point_status(outcome) -> str:
    """Map an executor outcome to its telemetry status string.

    ``ExperimentResult`` -> ``"done"``; a
    :class:`~repro.core.parallel.PointFailure` maps by its error type so
    timeout and crash incidents stay distinguishable in rollups.
    """
    error_type = getattr(outcome, "error_type", None)
    if error_type is None:
        return "done"
    if error_type == "PointTimeoutError":
        return "timeout"
    if error_type == "WorkerCrashError":
        return "crashed"
    return "failed"


@dataclass(frozen=True)
class PointSpan:
    """One sweep point's journey through the executor (wall-clock side).

    Attributes:
        index: Submission-order position in the batch.
        key: Config content hash (the cache / checkpoint / ledger key).
        label: ``config.describe()`` for humans.
        status: Terminal state: ``done``, ``cached``, ``failed``,
            ``timeout`` or ``crashed``.
        attempts: Dispatch count (> 1 means the point was retried).
        queue_wait_s: Enqueue to first dispatch (scheduling latency).
        run_s: Worker-side wall time inside ``run_experiment`` for the
            final attempt (0.0 when unknown, e.g. a crashed attempt).
        total_s: Enqueue to terminal outcome, parent-side (includes
            queueing, retries and backoff).
        sim_events: Kernel events the final attempt processed.
        sim_time_s: Final simulated clock of the final attempt.
        worker: Pool worker slot that ran the final attempt (``None``
            for in-process execution and cache hits).
    """

    index: int
    key: str
    label: str
    status: str
    attempts: int = 1
    queue_wait_s: float = 0.0
    run_s: float = 0.0
    total_s: float = 0.0
    sim_events: int = 0
    sim_time_s: float = 0.0
    worker: Optional[int] = None

    @property
    def events_per_second(self) -> float:
        """Simulator throughput of the final attempt (0 when unknown)."""
        if self.run_s <= 0:
            return 0.0
        return self.sim_events / self.run_s

    def describe(self) -> str:
        extra = f" x{self.attempts}" if self.attempts > 1 else ""
        return f"{self.label}: {self.status}{extra} ({self.total_s:.3f}s)"


@dataclass(frozen=True)
class WorkerStats:
    """Utilization of one pool worker slot.

    Attributes:
        worker: Slot id (stable within one sweep; replacements after a
            crash get fresh ids).
        attempts: Point attempts this slot served (completed or killed).
        busy_s: Wall seconds between dispatch and outcome, summed.
        alive_s: Wall seconds between spawn and retirement.
    """

    worker: int
    attempts: int = 0
    busy_s: float = 0.0
    alive_s: float = 0.0

    @property
    def utilization(self) -> float:
        """Busy fraction of the slot's lifetime (0 when never alive)."""
        if self.alive_s <= 0:
            return 0.0
        return min(1.0, self.busy_s / self.alive_s)


@dataclass(frozen=True)
class ProgressUpdate:
    """One live progress sample for a running sweep.

    Delivered to the ``ExecutionOptions.progress`` callback after every
    point reaches a terminal state (cache hits included).  The ETA is a
    naive rate extrapolation over *executed* (non-cached) points -- honest
    for grids of similar-cost points, indicative otherwise.
    """

    done: int
    total: int
    cached: int
    failed: int
    elapsed_s: float

    @property
    def remaining(self) -> int:
        return max(0, self.total - self.done)

    @property
    def eta_s(self) -> Optional[float]:
        """Estimated seconds to completion (``None`` before any sample)."""
        executed = self.done - self.cached
        if executed <= 0 or self.elapsed_s <= 0:
            return None
        return self.remaining * (self.elapsed_s / executed)

    def describe(self) -> str:
        parts = [f"{self.done}/{self.total} points"]
        if self.cached:
            parts.append(f"{self.cached} cached")
        if self.failed:
            parts.append(f"{self.failed} failed")
        eta = self.eta_s
        if eta is not None and self.remaining:
            parts.append(f"eta {eta:.0f}s")
        return ", ".join(parts)


@dataclass(frozen=True)
class SweepTelemetry:
    """Executor-side story of one sweep, frozen at completion.

    Attached to :class:`~repro.core.sweep.SweepOutcome` when the sweep
    ran with ``ExecutionOptions(telemetry=True)``.  :meth:`merge` is
    associative and keeps spans in submission order, so a sweep sharded
    across sessions rolls up into one honest view.
    """

    spans: Tuple[PointSpan, ...] = ()
    workers: Tuple[WorkerStats, ...] = ()
    wall_s: float = 0.0
    cache: Optional[dict] = None

    # -- tallies ----------------------------------------------------------

    def count(self, status: str) -> int:
        return sum(1 for span in self.spans if span.status == status)

    @property
    def points(self) -> int:
        return len(self.spans)

    @property
    def retries(self) -> int:
        """Extra attempts beyond the first, summed over all points."""
        return sum(max(0, span.attempts - 1) for span in self.spans)

    @property
    def executed_wall_s(self) -> float:
        """Worker-side seconds spent inside ``run_experiment``."""
        return sum(span.run_s for span in self.spans)

    @property
    def sim_events(self) -> int:
        return sum(span.sim_events for span in self.spans)

    @property
    def events_per_second(self) -> float:
        """Aggregate simulator throughput over the executed points."""
        wall = self.executed_wall_s
        if wall <= 0:
            return 0.0
        return self.sim_events / wall

    @property
    def mean_queue_wait_s(self) -> float:
        executed = [s for s in self.spans if s.status != "cached"]
        if not executed:
            return 0.0
        return sum(s.queue_wait_s for s in executed) / len(executed)

    @property
    def utilization(self) -> float:
        """Pool-wide busy fraction (0 when no pool workers ran)."""
        alive = sum(w.alive_s for w in self.workers)
        if alive <= 0:
            return 0.0
        return min(1.0, sum(w.busy_s for w in self.workers) / alive)

    def slowest(self, n: int = 5) -> Tuple[PointSpan, ...]:
        """The ``n`` most expensive executed points by run time."""
        executed = [s for s in self.spans if s.status != "cached"]
        return tuple(sorted(executed, key=lambda s: -s.run_s)[:n])

    def incidents(self) -> Tuple[PointSpan, ...]:
        """Spans that retried, timed out, crashed, or failed."""
        return tuple(
            s
            for s in self.spans
            if s.attempts > 1 or s.status in ("failed", "timeout", "crashed")
        )

    # -- composition ------------------------------------------------------

    def merge(self, other: "SweepTelemetry") -> "SweepTelemetry":
        """Associative roll-up of two telemetry snapshots.

        Spans keep submission order per snapshot and concatenate;
        ``other``'s span indices and worker ids are shifted past this
        snapshot's so identities stay unique.  Cache snapshots sum
        field-wise (hit_rate is recomputed).
        """
        offset = max((s.index for s in self.spans), default=-1) + 1
        shifted = tuple(
            PointSpan(
                index=s.index + offset,
                key=s.key,
                label=s.label,
                status=s.status,
                attempts=s.attempts,
                queue_wait_s=s.queue_wait_s,
                run_s=s.run_s,
                total_s=s.total_s,
                sim_events=s.sim_events,
                sim_time_s=s.sim_time_s,
                worker=s.worker,
            )
            for s in other.spans
        )
        worker_offset = max((w.worker for w in self.workers), default=-1) + 1
        shifted_workers = tuple(
            WorkerStats(
                worker=w.worker + worker_offset,
                attempts=w.attempts,
                busy_s=w.busy_s,
                alive_s=w.alive_s,
            )
            for w in other.workers
        )
        cache = None
        if self.cache is not None or other.cache is not None:
            a = self.cache or {}
            b = other.cache or {}
            cache = {
                k: a.get(k, 0) + b.get(k, 0)
                for k in ("hits", "misses", "corrupt", "puts")
            }
            total = cache["hits"] + cache["misses"]
            cache["hit_rate"] = cache["hits"] / total if total else 0.0
        return SweepTelemetry(
            spans=self.spans + shifted,
            workers=self.workers + shifted_workers,
            wall_s=self.wall_s + other.wall_s,
            cache=cache,
        )

    # -- serialization ----------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready summary (sorted keys, no wall-clock timestamps)."""
        by_status = {
            status: self.count(status)
            for status in POINT_STATUSES
            if self.count(status)
        }
        return {
            "points": self.points,
            "by_status": by_status,
            "retries": self.retries,
            "wall_s": self.wall_s,
            "executed_wall_s": self.executed_wall_s,
            "sim_events": self.sim_events,
            "events_per_second": self.events_per_second,
            "mean_queue_wait_s": self.mean_queue_wait_s,
            "utilization": self.utilization,
            "workers": [
                {
                    "worker": w.worker,
                    "attempts": w.attempts,
                    "busy_s": w.busy_s,
                    "alive_s": w.alive_s,
                    "utilization": w.utilization,
                }
                for w in self.workers
            ],
            "cache": self.cache,
        }

    def describe(self) -> str:
        """One-line human summary for CLI footers."""
        parts = [
            f"{self.points} point(s)",
            f"{self.count('cached')} cached",
            f"{self.retries} retr{'y' if self.retries == 1 else 'ies'}",
            f"{self.events_per_second:,.0f} ev/s",
        ]
        if self.workers:
            parts.append(f"pool util {self.utilization:.0%}")
        return ", ".join(parts)


class _PointRecord:
    """Mutable per-point state inside the recorder (builder internals)."""

    __slots__ = (
        "key",
        "label",
        "enqueued_at",
        "dispatched_at",
        "attempts",
        "status",
        "finished_at",
        "profile",
        "worker",
    )

    def __init__(self, key: str, label: str, now: float) -> None:
        self.key = key
        self.label = label
        self.enqueued_at = now
        self.dispatched_at: Optional[float] = None
        self.attempts = 0
        self.status: Optional[str] = None
        self.finished_at: Optional[float] = None
        self.profile: Optional[PointProfile] = None
        self.worker: Optional[int] = None


@dataclass
class _WorkerRecord:
    spawned_at: float
    retired_at: Optional[float] = None
    attempts: int = 0
    busy_s: float = 0.0


class TelemetryRecorder:
    """Mutable collector the executor feeds; finalizes to a snapshot.

    The recorder is wall-clock-only and entirely outside the simulation:
    it can be attached to any execution path (in-process, plain process
    pool, resilient pipe pool) without perturbing results.  The executor
    guards every call on ``recorder is not None``, so the default path
    pays nothing.

    ``on_progress`` (when set) receives a :class:`ProgressUpdate` after
    every terminal point event; exceptions it raises propagate -- a
    progress callback is caller code, not telemetry.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._started = clock()
        self._points: Dict[int, _PointRecord] = {}
        self._workers: Dict[int, _WorkerRecord] = {}
        self.total: Optional[int] = None
        self.on_progress: Optional[Callable[[ProgressUpdate], None]] = None

    # -- point lifecycle --------------------------------------------------

    def point_enqueued(self, index: int, key: str, label: str) -> None:
        self._points[index] = _PointRecord(key, label, self._clock())

    def point_cached(self, index: int, key: str, label: str) -> None:
        now = self._clock()
        record = _PointRecord(key, label, now)
        record.status = "cached"
        record.finished_at = now
        self._points[index] = record
        self._emit_progress()

    def point_dispatched(self, index: int, worker: Optional[int] = None) -> None:
        record = self._points[index]
        now = self._clock()
        if record.dispatched_at is None:
            record.dispatched_at = now
        record.attempts += 1
        record.worker = worker

    def point_finished(self, index: int, outcome, profile=None) -> None:
        """Terminal outcome for a point (success or final failure)."""
        record = self._points[index]
        record.status = point_status(outcome)
        record.finished_at = self._clock()
        if profile is not None:
            record.profile = profile
        attempts = getattr(outcome, "attempts", None)
        if attempts is not None:
            record.attempts = max(record.attempts, attempts)
        elif record.attempts == 0:
            record.attempts = 1
        self._emit_progress()

    # -- worker lifecycle -------------------------------------------------

    def worker_spawned(self, worker: int) -> None:
        self._workers[worker] = _WorkerRecord(spawned_at=self._clock())

    def worker_attempt(self, worker: int, busy_s: float) -> None:
        """Credit one served attempt (completed or killed) to a slot."""
        record = self._workers.get(worker)
        if record is not None:
            record.attempts += 1
            record.busy_s += max(0.0, busy_s)

    def worker_retired(self, worker: int) -> None:
        record = self._workers.get(worker)
        if record is not None and record.retired_at is None:
            record.retired_at = self._clock()

    # -- progress ---------------------------------------------------------

    def progress(self) -> ProgressUpdate:
        finished = [p for p in self._points.values() if p.status is not None]
        return ProgressUpdate(
            done=len(finished),
            total=self.total if self.total is not None else len(self._points),
            cached=sum(1 for p in finished if p.status == "cached"),
            failed=sum(
                1
                for p in finished
                if p.status in ("failed", "timeout", "crashed")
            ),
            elapsed_s=self._clock() - self._started,
        )

    def _emit_progress(self) -> None:
        if self.on_progress is not None:
            self.on_progress(self.progress())

    # -- output -----------------------------------------------------------

    def span(self, index: int) -> Optional[PointSpan]:
        """The span for one point, or ``None`` if it never finished."""
        record = self._points.get(index)
        if record is None or record.status is None:
            return None
        profile = record.profile
        dispatched = (
            record.dispatched_at
            if record.dispatched_at is not None
            else record.enqueued_at
        )
        finished = (
            record.finished_at
            if record.finished_at is not None
            else self._clock()
        )
        return PointSpan(
            index=index,
            key=record.key,
            label=record.label,
            status=record.status,
            attempts=max(1, record.attempts) if record.status != "cached" else 1,
            queue_wait_s=max(0.0, dispatched - record.enqueued_at),
            run_s=profile.wall_s if profile is not None else 0.0,
            total_s=max(0.0, finished - record.enqueued_at),
            sim_events=profile.sim_events if profile is not None else 0,
            sim_time_s=profile.sim_time_s if profile is not None else 0.0,
            worker=record.worker,
        )

    def finalize(self, cache=None) -> SweepTelemetry:
        """Freeze everything recorded so far into a snapshot.

        Args:
            cache: Optional :class:`~repro.core.parallel.CacheStats` (or
                an object with a ``snapshot()``) folded into the result.
        """
        now = self._clock()
        spans = []
        for index in sorted(self._points):
            span = self.span(index)
            if span is not None:
                spans.append(span)
        workers = []
        for worker_id in sorted(self._workers):
            record = self._workers[worker_id]
            retired = record.retired_at if record.retired_at is not None else now
            workers.append(
                WorkerStats(
                    worker=worker_id,
                    attempts=record.attempts,
                    busy_s=record.busy_s,
                    alive_s=max(0.0, retired - record.spawned_at),
                )
            )
        return SweepTelemetry(
            spans=tuple(spans),
            workers=tuple(workers),
            wall_s=now - self._started,
            cache=cache.snapshot() if cache is not None else None,
        )
