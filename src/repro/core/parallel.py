"""Parallel experiment execution.

Every figure in the paper comes from a grid of independent experiments,
and each experiment is deterministic from its config alone — so fanning
points out across a process pool must (and does) reproduce the sequential
results bit for bit.  This module provides the execution substrate the
sweep layer, the figure drivers and the CLI share:

- :func:`run_configs` — run a batch of :class:`ExperimentConfig` across
  ``n_workers`` processes, preserving submission order in the returned
  list no matter which worker finishes first;
- :class:`PointFailure` — per-point error capture: one failing point
  reports its config and exception instead of killing the whole batch;
- :class:`ResultCache` — an optional on-disk cache keyed by a stable
  content hash of the config, so re-runs of overlapping grids skip
  already-computed points;
- :class:`RetryPolicy` — resilient execution: per-point wall-clock
  timeouts, bounded retries with exponential backoff and deterministic
  jitter, and survival of hard worker crashes (the crashed point is
  re-dispatched to a fresh worker);
- graceful fallback to in-process execution when ``n_workers == 1`` or
  the platform cannot provide a process pool.

Telemetry note: when a
:class:`~repro.core.telemetry.TelemetryRecorder` rides along (sweep
telemetry, live progress, or a run ledger was requested), workers ship a
compact :class:`~repro.obs.profile.PointProfile` back over the existing
pipe protocol next to each outcome, and the parent folds queue/dispatch
timestamps into per-point lifecycle spans.  The recorder is wall-clock
only and strictly passive: results are bit-identical with and without it
(the telemetry-overhead benchmark holds that line).  The same aux channel
lets a parent :class:`~repro.obs.profile.RunProfiler` see pool execution:
per-worker profiles merge back in submission order instead of forcing
the whole batch in-process.

Resilience note: a :class:`RetryPolicy` with a timeout or retries runs
points on a dedicated pipe-connected worker pool rather than
``ProcessPoolExecutor`` — the stdlib pool cannot kill a hung worker
(``shutdown`` joins it), while a directly-owned process can be
``terminate()``-d at its deadline and replaced.  Retry scheduling
(backoff, jitter) is wall-clock only and never touches simulation
state, so resilient execution reproduces plain execution bit for bit
for every point that completes.

Determinism note: parallel execution only matches sequential execution
because per-point seeds are *process-stable* (derived via
:func:`repro.core.sweep.stable_point_salt`, not the builtin ``hash()``,
which ``PYTHONHASHSEED`` randomizes per process).
"""

from __future__ import annotations

import contextlib
import dataclasses
import enum
import hashlib
import heapq
import multiprocessing
import os
import pickle
import time
import traceback
import warnings
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from multiprocessing.connection import wait as _connection_wait
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.core.checkpoint import CheckpointJournal, PointState
from repro.core.options import UNSET, coerce_execution_options
from repro.core.experiment import ExperimentConfig, ExperimentResult, run_experiment
from repro.obs.profile import RunProfiler

__all__ = [
    "CacheStats",
    "PointFailure",
    "PointTimeoutError",
    "ResultCache",
    "RetryPolicy",
    "SweepExecutionError",
    "WorkerCrashError",
    "backoff_delay",
    "config_content_hash",
    "resolve_workers",
    "run_configs",
]


# -- stable config identity -------------------------------------------------


def _canonical(obj: object) -> object:
    """A stable, composition-friendly encoding of config values.

    Dataclasses flatten to (type name, field items) pairs, enums to their
    value — so the encoding never depends on object identity, dict order,
    or the per-process string-hash randomization that makes ``hash()``
    unusable as a key.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return [
            type(obj).__name__,
            [
                (f.name, _canonical(getattr(obj, f.name)))
                for f in dataclasses.fields(obj)
            ],
        ]
    if isinstance(obj, enum.Enum):
        return [type(obj).__name__, obj.value]
    if isinstance(obj, dict):
        return [
            "dict",
            sorted(
                ([_canonical(k), _canonical(v)] for k, v in obj.items()),
                key=repr,
            ),
        ]
    if isinstance(obj, (list, tuple)):
        return ["seq", [_canonical(item) for item in obj]]
    if obj is None or isinstance(obj, (bool, int, float, str, bytes)):
        return obj
    return repr(obj)


def config_content_hash(config: ExperimentConfig) -> str:
    """Hex digest identifying a config by content, stable across processes."""
    payload = repr(_canonical(config)).encode("utf-8")
    return hashlib.blake2b(payload, digest_size=16).hexdigest()


# -- retry policy -----------------------------------------------------------


class PointTimeoutError(RuntimeError):
    """A point exceeded its per-attempt wall-clock budget and was killed."""


class WorkerCrashError(RuntimeError):
    """A worker process died (segfault, OOM kill, ``os._exit``) mid-point."""


@dataclass(frozen=True)
class RetryPolicy:
    """How the executor survives slow, flaky, and crashing points.

    Attributes:
        timeout_s: Per-attempt wall-clock budget; a worker still running
            at its deadline is terminated and the attempt counts as a
            failure.  ``None`` disables timeouts.
        retries: Extra attempts after the first failure (so a point runs
            at most ``1 + retries`` times).
        backoff_base_s: Delay before retry 1; doubles per retry.
        backoff_cap_s: Upper bound on any single backoff delay.
        jitter: Fractional spread added to each delay, derived
            deterministically from the point's content hash and attempt
            number — re-running a sweep re-produces the same schedule,
            while distinct points still decorrelate.
    """

    timeout_s: Optional[float] = None
    retries: int = 0
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive or None")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.jitter < 0:
            raise ValueError("jitter must be >= 0")

    @property
    def resilient(self) -> bool:
        """Whether this policy needs the resilient (kill-capable) pool."""
        return self.timeout_s is not None or self.retries > 0


def backoff_delay(key: str, attempt: int, policy: RetryPolicy) -> float:
    """Deterministic exponential-backoff delay before retry ``attempt``.

    Jitter comes from a keyed digest of ``(key, attempt)`` rather than a
    live RNG: the retry schedule is part of the run's reproducible
    behaviour, not a source of noise.
    """
    if attempt < 1:
        raise ValueError("attempt is 1-based")
    base = min(policy.backoff_cap_s, policy.backoff_base_s * 2 ** (attempt - 1))
    digest = hashlib.blake2b(
        f"{key}:{attempt}".encode("utf-8"), digest_size=8
    ).digest()
    frac = int.from_bytes(digest, "big") / 2**64
    return base * (1.0 + policy.jitter * frac)


# -- failure capture --------------------------------------------------------


@dataclass(frozen=True)
class PointFailure:
    """One experiment that raised, with enough context to reproduce it.

    Attributes:
        attempts: How many times the executor ran the point before
            giving up (1 unless a :class:`RetryPolicy` allowed retries).
    """

    config: ExperimentConfig
    error_type: str
    message: str
    traceback: str
    attempts: int = 1

    def describe(self) -> str:
        suffix = f" (after {self.attempts} attempts)" if self.attempts > 1 else ""
        return (
            f"{self.config.describe()}: {self.error_type}: {self.message}{suffix}"
        )


#: Failures rendered in a SweepExecutionError message before truncating.
MAX_RENDERED_FAILURES = 5


class SweepExecutionError(RuntimeError):
    """Raised when a sweep had failing points and the caller wanted none.

    The message renders at most :data:`MAX_RENDERED_FAILURES` failures
    (a 720-point sweep failing wholesale should not print 720
    tracebacks' worth of text); the full list stays on ``failures``.
    """

    def __init__(self, failures: Sequence[PointFailure]) -> None:
        self.failures = list(failures)
        shown = self.failures[:MAX_RENDERED_FAILURES]
        lines = [f"  {failure.describe()}" for failure in shown]
        remaining = len(self.failures) - len(shown)
        if remaining > 0:
            lines.append(f"  ...and {remaining} more")
        super().__init__(
            f"{len(self.failures)} sweep point(s) failed:\n" + "\n".join(lines)
        )


# -- on-disk result cache ---------------------------------------------------


@dataclass
class CacheStats:
    """Observable behaviour of one :class:`ResultCache` over its lifetime.

    Attributes:
        hits: Lookups served from disk.
        misses: Lookups with no entry on disk (includes corrupt entries,
            which degrade to a recompute).
        corrupt: Entries that existed but could not be loaded -- truncated
            writes, foreign files, stale pickles from an incompatible
            version.  Always also counted as misses.
        puts: Results written.
    """

    hits: int = 0
    misses: int = 0
    corrupt: int = 0
    puts: int = 0

    def snapshot(self) -> dict:
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "puts": self.puts,
            "hit_rate": self.hits / total if total else 0.0,
        }


class ResultCache:
    """Pickled :class:`ExperimentResult` per config content hash.

    Writes are atomic (tmp file + rename), so concurrent workers or
    overlapping sweeps can share one cache directory; unreadable entries
    are treated as misses and recomputed, never raised.  Every lookup and
    store is counted in :attr:`stats` so sweeps can report cache
    effectiveness (surfaced via ``repro sweep --metrics``).
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()

    def path_for(self, config: ExperimentConfig) -> Path:
        return self.root / f"{config_content_hash(config)}.pkl"

    def get(self, config: ExperimentConfig) -> Optional[ExperimentResult]:
        path = self.path_for(config)
        try:
            with open(path, "rb") as fh:
                result = pickle.load(fh)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, TypeError, ValueError):
            # A present-but-unreadable entry: degrade to a recompute.
            self.stats.misses += 1
            self.stats.corrupt += 1
            return None
        if not isinstance(result, ExperimentResult):
            self.stats.misses += 1
            self.stats.corrupt += 1
            return None
        self.stats.hits += 1
        return result

    def put(self, config: ExperimentConfig, result: ExperimentResult) -> None:
        path = self.path_for(config)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            with open(tmp, "wb") as fh:
                pickle.dump(result, fh)
                fh.flush()
                # Entries must survive the very crashes --resume exists
                # for; without the fsync the rename can land while the
                # data blocks are still unwritten, leaving a truncated
                # "committed" entry after power loss.
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            # Never leave orphaned .tmp litter behind a failed or
            # interrupted write; the cache directory is shared.
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise
        self.stats.puts += 1


# -- execution --------------------------------------------------------------


def resolve_workers(n_workers: Optional[int]) -> int:
    """Normalize a worker-count request (``None`` = all cores).

    Zero and negative counts are rejected rather than silently mapped:
    a scripted ``--workers $N`` with an unset ``N`` collapsing to "all
    cores" is the kind of surprise that takes a shared machine down.
    """
    if n_workers is None:
        return os.cpu_count() or 1
    if n_workers < 1:
        raise ValueError(
            f"n_workers must be a positive integer or None (= all cores), "
            f"got {n_workers}"
        )
    return n_workers


def _run_config(
    config: ExperimentConfig, tracer=None, profiler=None
) -> Union[ExperimentResult, PointFailure]:
    """Worker entry point: never raises, so one point cannot kill a batch."""
    try:
        if tracer is None and profiler is None:
            # Plain call when untraced: keeps the entry point compatible
            # with single-argument stand-ins for run_experiment.
            return run_experiment(config)
        return run_experiment(config, tracer=tracer, profiler=profiler)
    except Exception as exc:  # noqa: BLE001 - captured by design
        return PointFailure(
            config=config,
            error_type=type(exc).__name__,
            message=str(exc),
            traceback=traceback.format_exc(),
        )


def _run_config_aux(config: ExperimentConfig):
    """Worker entry point that also returns the point's wall-clock profile.

    The aux channel exists for pool-side telemetry and profiler merging:
    the :class:`~repro.obs.profile.PointProfile` is four scalars and a
    label, cheap to pickle back over the pipe, and profiling is passive,
    so the outcome is bit-identical to :func:`_run_config`'s.
    """
    profiler = RunProfiler()
    outcome = _run_config(config, profiler=profiler)
    profile = profiler.points[-1] if profiler.points else None
    return outcome, profile


def _journal_final(
    journal: Optional[CheckpointJournal],
    key: str,
    outcome: Union[ExperimentResult, PointFailure],
    attempt: int,
) -> None:
    if journal is None:
        return
    if isinstance(outcome, PointFailure):
        journal.record(
            key, PointState.EXHAUSTED, attempt=attempt, detail=outcome.describe()
        )
    else:
        journal.record(key, PointState.DONE, attempt=attempt)


def _run_point_inprocess(
    config: ExperimentConfig,
    key: str,
    policy: Optional[RetryPolicy],
    journal: Optional[CheckpointJournal],
    cache: Optional["ResultCache"] = None,
    tracer=None,
    profiler=None,
) -> Union[ExperimentResult, PointFailure]:
    """In-process execution with the policy's retry loop.

    Timeouts are not enforceable here (there is no worker to kill);
    callers that need them route through the resilient pool instead.
    The cache write happens *before* the DONE journal record so a crash
    between the two can never leave a "done" point without its result --
    resume trusts the journal's DONE to mean "persisted".
    """
    attempts_allowed = 1 + (policy.retries if policy is not None else 0)
    outcome: Union[ExperimentResult, PointFailure, None] = None
    for attempt in range(1, attempts_allowed + 1):
        if journal is not None:
            journal.record(key, PointState.IN_FLIGHT, attempt=attempt)
        outcome = _run_config(config, tracer=tracer, profiler=profiler)
        if isinstance(outcome, ExperimentResult):
            if cache is not None:
                cache.put(config, outcome)
            _journal_final(journal, key, outcome, attempt)
            return outcome
        outcome = dataclasses.replace(outcome, attempts=attempt)
        if attempt < attempts_allowed:
            if journal is not None:
                journal.record(
                    key,
                    PointState.FAILED,
                    attempt=attempt,
                    detail=outcome.describe(),
                )
            if policy is not None:
                time.sleep(backoff_delay(key, attempt, policy))
    assert outcome is not None
    _journal_final(journal, key, outcome, attempts_allowed)
    return outcome


# -- resilient pool ---------------------------------------------------------


def _pipe_worker_main(conn, collect_aux: bool = False) -> None:
    """Worker loop: receive ``(index, config)`` tasks, send outcomes back.

    Replies are ``(index, outcome, aux)`` where ``aux`` is the point's
    :class:`~repro.obs.profile.PointProfile` when ``collect_aux`` is set
    (telemetry or a parent profiler asked for it) and ``None`` otherwise.
    ``None`` is the shutdown sentinel.  A vanished parent (EOF/OSError
    on the pipe) just ends the loop — the worker has nobody to report to.
    """
    try:
        while True:
            task = conn.recv()
            if task is None:
                return
            index, config = task
            if collect_aux:
                outcome, aux = _run_config_aux(config)
            else:
                outcome, aux = _run_config(config), None
            conn.send((index, outcome, aux))
    except (EOFError, OSError):
        return


@dataclass
class _Attempt:
    """One point making its way through the resilient pool."""

    index: int
    config: ExperimentConfig
    key: str
    attempt: int = 0


class _WorkerSlot:
    """One owned worker process and its command pipe."""

    def __init__(self, ctx, collect_aux: bool = False, worker_id: int = 0) -> None:
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=_pipe_worker_main, args=(child_conn, collect_aux), daemon=True
        )
        self.process.start()
        child_conn.close()
        self.worker_id = worker_id
        self.task: Optional[_Attempt] = None
        self.deadline: Optional[float] = None
        self.dispatched_at: Optional[float] = None

    @property
    def busy(self) -> bool:
        return self.task is not None

    def dispatch(self, task: _Attempt, timeout_s: Optional[float]) -> None:
        self.conn.send((task.index, task.config))
        self.task = task
        self.dispatched_at = time.monotonic()
        self.deadline = (
            self.dispatched_at + timeout_s if timeout_s is not None else None
        )

    def kill(self) -> None:
        with contextlib.suppress(OSError, ValueError):
            self.conn.close()
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=5.0)


def _run_resilient(
    tasks: List[_Attempt],
    workers: int,
    policy: RetryPolicy,
    journal: Optional[CheckpointJournal],
    cache: Optional["ResultCache"] = None,
    recorder=None,
    collect_aux: bool = False,
) -> tuple[
    Dict[int, Union[ExperimentResult, PointFailure]], Dict[int, object]
]:
    """Run points on an owned worker pool that can kill and re-dispatch.

    The loop keeps every worker busy while work remains, terminates
    workers that blow their per-attempt deadline, treats a dead pipe as
    a worker crash, and re-queues failed attempts (after their backoff
    delay) until the retry budget is spent.  Worker loss of any kind is
    survived by spawning a replacement.

    With ``collect_aux``, workers return a per-point
    :class:`~repro.obs.profile.PointProfile` next to each outcome; the
    profiles of final attempts come back in the second mapping (index ->
    profile) so the caller can merge them into a parent profiler in
    submission order.  ``recorder`` (a
    :class:`~repro.core.telemetry.TelemetryRecorder`) is fed dispatch,
    retry, worker-lifecycle and terminal events; both are wall-clock
    only and never touch the outcomes.
    """
    ctx = multiprocessing.get_context("fork")
    results: Dict[int, Union[ExperimentResult, PointFailure]] = {}
    profiles: Dict[int, object] = {}
    queue = deque(tasks)
    delayed: List[tuple[float, int, _Attempt]] = []  # (ready_at, tiebreak, task)
    tiebreak = 0
    next_worker_id = 0

    def new_slot() -> _WorkerSlot:
        nonlocal next_worker_id
        slot = _WorkerSlot(ctx, collect_aux, worker_id=next_worker_id)
        next_worker_id += 1
        if recorder is not None:
            recorder.worker_spawned(slot.worker_id)
        return slot

    pool: List[_WorkerSlot] = [
        new_slot() for _ in range(min(workers, len(tasks)))
    ]

    def give_up(task: _Attempt, error: str, message: str) -> None:
        failure = PointFailure(
            config=task.config,
            error_type=error,
            message=message,
            traceback="",
            attempts=task.attempt,
        )
        results[task.index] = failure
        _journal_final(journal, task.key, failure, task.attempt)

    def retry_or_give_up(
        task: _Attempt,
        error: str,
        message: str,
        final: Optional[PointFailure] = None,
    ) -> None:
        nonlocal tiebreak
        if journal is not None:
            journal.record(
                task.key,
                PointState.FAILED,
                attempt=task.attempt,
                detail=f"{error}: {message}",
            )
        if task.attempt <= policy.retries:
            ready_at = time.monotonic() + backoff_delay(
                task.key, task.attempt, policy
            )
            tiebreak += 1
            heapq.heappush(delayed, (ready_at, tiebreak, task))
        elif final is not None:
            # Keep the captured failure (it carries the real traceback).
            results[task.index] = final
            _journal_final(journal, task.key, final, task.attempt)
        else:
            give_up(task, error, message)

    def finish_if_final(task: _Attempt, aux=None) -> None:
        """Telemetry/aux bookkeeping once a point reached a terminal state."""
        if task.index not in results:
            return
        if aux is not None:
            profiles[task.index] = aux
        if recorder is not None:
            recorder.point_finished(task.index, results[task.index], aux)

    def credit_attempt(slot: _WorkerSlot, now: float) -> None:
        if recorder is not None and slot.dispatched_at is not None:
            recorder.worker_attempt(slot.worker_id, now - slot.dispatched_at)

    def replace_worker(slot: _WorkerSlot) -> None:
        slot.kill()
        if recorder is not None:
            recorder.worker_retired(slot.worker_id)
        pool.remove(slot)
        outstanding = len(queue) + len(delayed) + sum(s.busy for s in pool)
        if outstanding > len(pool):
            pool.append(new_slot())

    try:
        while queue or delayed or any(slot.busy for slot in pool):
            now = time.monotonic()
            while delayed and delayed[0][0] <= now:
                queue.append(heapq.heappop(delayed)[2])
            # Self-heal: never spin with queued work and no worker to take
            # it (every slot may have been killed since the last pass).
            if queue and all(slot.busy for slot in pool) and len(pool) < workers:
                pool.append(new_slot())
            for slot in pool:
                if slot.busy or not queue:
                    continue
                task = queue.popleft()
                task.attempt += 1
                if journal is not None:
                    journal.record(
                        task.key, PointState.IN_FLIGHT, attempt=task.attempt
                    )
                try:
                    slot.dispatch(task, policy.timeout_s)
                    if recorder is not None:
                        recorder.point_dispatched(task.index, worker=slot.worker_id)
                except (BrokenPipeError, OSError):
                    # The worker died between tasks; the attempt never
                    # started, so re-queue it uncharged.
                    task.attempt -= 1
                    queue.appendleft(task)
                    replace_worker(slot)
                    break
            busy = [slot for slot in pool if slot.busy]
            if not busy:
                if delayed and not queue:
                    time.sleep(max(0.0, delayed[0][0] - time.monotonic()))
                continue
            wait_bounds = [
                slot.deadline for slot in busy if slot.deadline is not None
            ]
            if delayed:
                wait_bounds.append(delayed[0][0])
            timeout = (
                max(0.0, min(wait_bounds) - time.monotonic())
                if wait_bounds
                else None
            )
            ready = _connection_wait([slot.conn for slot in busy], timeout)
            now = time.monotonic()
            for slot in busy:
                task = slot.task
                if task is None:
                    continue
                if slot.conn in ready:
                    try:
                        index, outcome, aux = slot.conn.recv()
                    except (EOFError, OSError):
                        # Hard crash mid-point (segfault, OOM kill,
                        # os._exit): the pipe breaks before a result.
                        # Queue the retry *before* replacing the worker so
                        # the replacement head-count sees the pending work.
                        slot.task = None
                        credit_attempt(slot, now)
                        retry_or_give_up(
                            task,
                            WorkerCrashError.__name__,
                            "worker process died mid-experiment",
                        )
                        finish_if_final(task)
                        replace_worker(slot)
                        continue
                    slot.task = None
                    slot.deadline = None
                    credit_attempt(slot, now)
                    if isinstance(outcome, PointFailure):
                        # An in-experiment exception spends a retry like a
                        # timeout or crash does (the docstring's "alike"):
                        # usually it replays deterministically to the same
                        # raise, but env-dependent failures can recover.
                        outcome = dataclasses.replace(
                            outcome, attempts=task.attempt
                        )
                        retry_or_give_up(
                            task,
                            outcome.error_type,
                            outcome.message,
                            final=outcome,
                        )
                        finish_if_final(task, aux)
                        continue
                    if cache is not None:
                        # Persist before journaling DONE: resume trusts
                        # DONE to mean the result is on disk.
                        cache.put(task.config, outcome)
                    results[index] = outcome
                    _journal_final(journal, task.key, outcome, task.attempt)
                    finish_if_final(task, aux)
                elif slot.deadline is not None and now >= slot.deadline:
                    slot.task = None
                    credit_attempt(slot, now)
                    retry_or_give_up(
                        task,
                        PointTimeoutError.__name__,
                        f"exceeded {policy.timeout_s:g}s wall-clock budget",
                    )
                    finish_if_final(task)
                    replace_worker(slot)
    finally:
        for slot in pool:
            if slot.busy:
                slot.kill()
            else:
                with contextlib.suppress(OSError, ValueError):
                    slot.conn.send(None)
                slot.process.join(timeout=1.0)
                slot.kill()
            if recorder is not None:
                recorder.worker_retired(slot.worker_id)
    return results, profiles


def _run_batch(
    configs: Sequence[ExperimentConfig],
    workers: int,
    collect_aux: bool = False,
) -> List[tuple]:
    """Run a plain (no-policy) batch, returning ``(outcome, aux)`` pairs.

    ``aux`` is each point's :class:`~repro.obs.profile.PointProfile` when
    ``collect_aux`` is set and ``None`` otherwise.
    """
    entry = _run_config_aux if collect_aux else _run_config
    outcomes = None
    if workers > 1 and len(configs) > 1:
        try:
            with ProcessPoolExecutor(max_workers=min(workers, len(configs))) as pool:
                outcomes = list(pool.map(entry, configs))
        except (OSError, BrokenProcessPool, PermissionError) as exc:
            # Platforms without usable multiprocessing primitives (or a
            # pool torn down under us): degrade to in-process execution
            # rather than failing the sweep.
            warnings.warn(
                f"process pool unavailable ({exc!r}); "
                "falling back to in-process execution",
                RuntimeWarning,
                stacklevel=3,
            )
    if outcomes is None:
        outcomes = [entry(config) for config in configs]
    if collect_aux:
        return outcomes
    return [(outcome, None) for outcome in outcomes]


def run_configs(
    configs: Sequence[ExperimentConfig],
    options=UNSET,
    *legacy_args,
    policy: Optional[RetryPolicy] = None,
    journal: Optional[CheckpointJournal] = None,
    recorder=None,
    **legacy_kwargs,
) -> List[Union[ExperimentResult, PointFailure]]:
    """Run experiments, optionally across processes, preserving order.

    Args:
        configs: Experiments to run; the returned list is index-aligned
            with this sequence regardless of worker completion order.
        options: An :class:`~repro.core.options.ExecutionOptions`.  Its
            ``n_workers``/``cache_dir``/``tracer``/``profiler`` fields map
            onto the execution knobs documented there; ``timeout_s`` and
            ``retries`` build a :class:`RetryPolicy` unless an explicit
            ``policy`` is given, and ``checkpoint``/``resume`` open a
            journal for the duration of the call unless an explicit
            ``journal`` is given.  The legacy individual-argument form
            (``n_workers``, ``cache_dir``, ``tracer``, ``profiler``)
            still works but emits a :class:`DeprecationWarning`.
        policy: Optional :class:`RetryPolicy`.  A resilient policy
            (timeout or retries) runs points on an owned worker pool
            that can terminate hung workers at their deadline, survive
            hard crashes, and re-dispatch failed attempts after a
            deterministic backoff.
        journal: Optional open :class:`CheckpointJournal` recording each
            point's lifecycle (keyed by :func:`config_content_hash`), so
            an interrupted sweep can be resumed and audited.
        recorder: Optional
            :class:`~repro.core.telemetry.TelemetryRecorder` fed the
            executor's lifecycle events (one recorder per batch: spans
            are keyed by submission index).  When ``options`` requests
            telemetry, progress, or a ledger and no recorder is passed,
            one is created for the duration of the call.

    Returns:
        One :class:`ExperimentResult` or :class:`PointFailure` per config.
    """
    opts = coerce_execution_options("run_configs", options, legacy_args, legacy_kwargs)
    if policy is None and (opts.timeout_s is not None or opts.retries):
        policy = RetryPolicy(timeout_s=opts.timeout_s, retries=opts.retries)
    own_journal = journal is None and opts.checkpoint is not None
    if own_journal:
        journal = CheckpointJournal(opts.checkpoint)
        journal.open(fresh=not opts.resume)
    if recorder is None and (
        opts.telemetry or opts.progress is not None or opts.ledger is not None
    ):
        # Imported lazily: the default (telemetry-off) path never pays
        # for the telemetry module.
        from repro.core.telemetry import TelemetryRecorder

        recorder = TelemetryRecorder()
    if recorder is not None:
        if recorder.total is None:
            recorder.total = len(configs)
        if opts.progress is not None and recorder.on_progress is None:
            recorder.on_progress = opts.progress
    if isinstance(opts.cache_dir, ResultCache):
        cache: Optional[ResultCache] = opts.cache_dir
    else:
        cache = ResultCache(opts.cache_dir) if opts.cache_dir is not None else None
    configs = list(configs)
    try:
        outcomes = _execute_configs(
            configs,
            n_workers=opts.n_workers,
            cache=cache,
            tracer=opts.tracer,
            profiler=opts.profiler,
            policy=policy,
            journal=journal,
            recorder=recorder,
        )
    finally:
        if own_journal:
            journal.close()
    if opts.ledger is not None:
        from repro.core.ledger import RunLedger, point_record

        ledger = (
            opts.ledger
            if isinstance(opts.ledger, RunLedger)
            else RunLedger(opts.ledger)
        )
        for index, (config, outcome) in enumerate(zip(configs, outcomes)):
            ledger.append(
                point_record(config, outcome, span=recorder.span(index))
            )
    return outcomes


def _merge_profiles(profiler, aux_profiles) -> None:
    """Fold worker-side point profiles into a parent profiler.

    Called with profiles in submission order so a pooled run reports the
    same profiler contents (up to timing noise) as an in-process run.
    """
    for aux in aux_profiles:
        if aux is not None:
            profiler.record(aux.label, aux.wall_s, aux.sim_events, aux.sim_time_s)


def _run_pending_inprocess(
    configs: List[ExperimentConfig],
    pending: List[int],
    key_for,
    policy: Optional[RetryPolicy],
    journal: Optional[CheckpointJournal],
    cache: Optional[ResultCache],
    tracer,
    profiler,
    recorder,
) -> List[Union[ExperimentResult, PointFailure]]:
    """In-process execution of the pending points, with telemetry hooks."""
    fresh: List[Union[ExperimentResult, PointFailure]] = []
    for i in pending:
        if recorder is not None:
            recorder.point_dispatched(i)
        scratch = None
        use_profiler = profiler
        if recorder is not None and profiler is None:
            # Telemetry wants per-point run cost even when the caller
            # did not ask for a profiler; profiling is passive, so the
            # scratch profiler cannot change the outcome.
            scratch = RunProfiler()
            use_profiler = scratch
        before = len(profiler.points) if profiler is not None else 0
        outcome = _run_point_inprocess(
            configs[i],
            key_for(i),
            policy,
            journal,
            cache,
            tracer=tracer,
            profiler=use_profiler,
        )
        if recorder is not None:
            if scratch is not None:
                profile = scratch.points[-1] if scratch.points else None
            else:
                profile = (
                    profiler.points[-1]
                    if len(profiler.points) > before
                    else None
                )
            recorder.point_finished(i, outcome, profile)
        fresh.append(outcome)
    return fresh


def _execute_configs(
    configs: List[ExperimentConfig],
    *,
    n_workers: Optional[int],
    cache: Optional[ResultCache],
    tracer,
    profiler,
    policy: Optional[RetryPolicy],
    journal: Optional[CheckpointJournal],
    recorder=None,
) -> List[Union[ExperimentResult, PointFailure]]:
    """The execution engine behind :func:`run_configs` (resolved knobs).

    ``cache`` reads/writes results keyed by :func:`config_content_hash`
    (failures are never cached).  A tracer forces in-process execution
    regardless of ``n_workers`` (events cannot cross a process boundary
    in order); a profiler no longer does -- pool workers ship their
    per-point profiles back and the parent merges them in submission
    order.  Results are identical on every path (that equivalence is
    under test).
    """
    workers = resolve_workers(n_workers)

    keys: Dict[int, str] = {}

    def key_for(index: int) -> str:
        if index not in keys:
            keys[index] = config_content_hash(configs[index])
        return keys[index]

    outcomes: List[Union[ExperimentResult, PointFailure, None]] = [None] * len(configs)
    pending: List[int] = []
    for index, config in enumerate(configs):
        cached = cache.get(config) if cache is not None else None
        if cached is not None:
            outcomes[index] = cached
            if recorder is not None:
                recorder.point_cached(index, key_for(index), config.describe())
            if journal is not None:
                journal.record(key_for(index), PointState.DONE, detail="cached")
        else:
            if recorder is not None:
                recorder.point_enqueued(index, key_for(index), config.describe())
            pending.append(index)

    if pending:
        resilient = policy is not None and policy.resilient
        collect_aux = profiler is not None or recorder is not None
        pooled = workers > 1 and len(pending) > 1
        if tracer is not None:
            if resilient and policy.timeout_s is not None:
                warnings.warn(
                    "tracing forces in-process execution; per-point "
                    "timeouts cannot be enforced without a worker "
                    "process to kill",
                    RuntimeWarning,
                    stacklevel=2,
                )
            fresh = _run_pending_inprocess(
                configs, pending, key_for, policy, journal, cache,
                tracer, profiler, recorder,
            )
        elif resilient or (recorder is not None and pooled):
            # Telemetry without a policy still runs on the owned pool:
            # it is the only pooled path with per-dispatch visibility,
            # and with the default policy (no timeout, no retries) it
            # behaves exactly like the plain pool.
            pool_policy = policy if policy is not None else RetryPolicy()
            tasks = [
                _Attempt(index=i, config=configs[i], key=key_for(i))
                for i in pending
            ]
            by_index, aux_by_index = _run_resilient(
                tasks,
                workers,
                pool_policy,
                journal,
                cache,
                recorder=recorder,
                collect_aux=collect_aux,
            )
            fresh = [by_index[i] for i in pending]
            if profiler is not None:
                _merge_profiles(
                    profiler, (aux_by_index.get(i) for i in pending)
                )
        elif pooled:
            if journal is not None:
                for i in pending:
                    journal.record(key_for(i), PointState.IN_FLIGHT)
            pairs = _run_batch(
                [configs[i] for i in pending], workers, collect_aux
            )
            fresh = [outcome for outcome, _ in pairs]
            for i, outcome in zip(pending, fresh):
                if cache is not None and isinstance(outcome, ExperimentResult):
                    cache.put(configs[i], outcome)
                _journal_final(journal, key_for(i), outcome, 1)
            if profiler is not None:
                _merge_profiles(profiler, (aux for _, aux in pairs))
        else:
            fresh = _run_pending_inprocess(
                configs, pending, key_for, policy, journal, cache,
                None, profiler, recorder,
            )
        for index, outcome in zip(pending, fresh):
            outcomes[index] = outcome
    return outcomes  # type: ignore[return-value]
