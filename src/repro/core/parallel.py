"""Parallel experiment execution.

Every figure in the paper comes from a grid of independent experiments,
and each experiment is deterministic from its config alone — so fanning
points out across a process pool must (and does) reproduce the sequential
results bit for bit.  This module provides the execution substrate the
sweep layer, the figure drivers and the CLI share:

- :func:`run_configs` — run a batch of :class:`ExperimentConfig` across
  ``n_workers`` processes, preserving submission order in the returned
  list no matter which worker finishes first;
- :class:`PointFailure` — per-point error capture: one failing point
  reports its config and exception instead of killing the whole batch;
- :class:`ResultCache` — an optional on-disk cache keyed by a stable
  content hash of the config, so re-runs of overlapping grids skip
  already-computed points;
- graceful fallback to in-process execution when ``n_workers == 1`` or
  the platform cannot provide a process pool.

Determinism note: parallel execution only matches sequential execution
because per-point seeds are *process-stable* (derived via
:func:`repro.core.sweep.stable_point_salt`, not the builtin ``hash()``,
which ``PYTHONHASHSEED`` randomizes per process).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import os
import pickle
import traceback
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.core.experiment import ExperimentConfig, ExperimentResult, run_experiment

__all__ = [
    "CacheStats",
    "PointFailure",
    "ResultCache",
    "SweepExecutionError",
    "config_content_hash",
    "resolve_workers",
    "run_configs",
]


# -- stable config identity -------------------------------------------------


def _canonical(obj: object) -> object:
    """A stable, composition-friendly encoding of config values.

    Dataclasses flatten to (type name, field items) pairs, enums to their
    value — so the encoding never depends on object identity, dict order,
    or the per-process string-hash randomization that makes ``hash()``
    unusable as a key.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return [
            type(obj).__name__,
            [
                (f.name, _canonical(getattr(obj, f.name)))
                for f in dataclasses.fields(obj)
            ],
        ]
    if isinstance(obj, enum.Enum):
        return [type(obj).__name__, obj.value]
    if isinstance(obj, dict):
        return [
            "dict",
            sorted(
                ([_canonical(k), _canonical(v)] for k, v in obj.items()),
                key=repr,
            ),
        ]
    if isinstance(obj, (list, tuple)):
        return ["seq", [_canonical(item) for item in obj]]
    if obj is None or isinstance(obj, (bool, int, float, str, bytes)):
        return obj
    return repr(obj)


def config_content_hash(config: ExperimentConfig) -> str:
    """Hex digest identifying a config by content, stable across processes."""
    payload = repr(_canonical(config)).encode("utf-8")
    return hashlib.blake2b(payload, digest_size=16).hexdigest()


# -- failure capture --------------------------------------------------------


@dataclass(frozen=True)
class PointFailure:
    """One experiment that raised, with enough context to reproduce it."""

    config: ExperimentConfig
    error_type: str
    message: str
    traceback: str

    def describe(self) -> str:
        return f"{self.config.describe()}: {self.error_type}: {self.message}"


class SweepExecutionError(RuntimeError):
    """Raised when a sweep had failing points and the caller wanted none."""

    def __init__(self, failures: Sequence[PointFailure]) -> None:
        self.failures = list(failures)
        lines = "\n".join(f"  {failure.describe()}" for failure in self.failures)
        super().__init__(
            f"{len(self.failures)} sweep point(s) failed:\n{lines}"
        )


# -- on-disk result cache ---------------------------------------------------


@dataclass
class CacheStats:
    """Observable behaviour of one :class:`ResultCache` over its lifetime.

    Attributes:
        hits: Lookups served from disk.
        misses: Lookups with no entry on disk (includes corrupt entries,
            which degrade to a recompute).
        corrupt: Entries that existed but could not be loaded -- truncated
            writes, foreign files, stale pickles from an incompatible
            version.  Always also counted as misses.
        puts: Results written.
    """

    hits: int = 0
    misses: int = 0
    corrupt: int = 0
    puts: int = 0

    def snapshot(self) -> dict:
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "puts": self.puts,
            "hit_rate": self.hits / total if total else 0.0,
        }


class ResultCache:
    """Pickled :class:`ExperimentResult` per config content hash.

    Writes are atomic (tmp file + rename), so concurrent workers or
    overlapping sweeps can share one cache directory; unreadable entries
    are treated as misses and recomputed, never raised.  Every lookup and
    store is counted in :attr:`stats` so sweeps can report cache
    effectiveness (surfaced via ``repro sweep --metrics``).
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()

    def path_for(self, config: ExperimentConfig) -> Path:
        return self.root / f"{config_content_hash(config)}.pkl"

    def get(self, config: ExperimentConfig) -> Optional[ExperimentResult]:
        path = self.path_for(config)
        try:
            with open(path, "rb") as fh:
                result = pickle.load(fh)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, TypeError, ValueError):
            # A present-but-unreadable entry: degrade to a recompute.
            self.stats.misses += 1
            self.stats.corrupt += 1
            return None
        if not isinstance(result, ExperimentResult):
            self.stats.misses += 1
            self.stats.corrupt += 1
            return None
        self.stats.hits += 1
        return result

    def put(self, config: ExperimentConfig, result: ExperimentResult) -> None:
        path = self.path_for(config)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        with open(tmp, "wb") as fh:
            pickle.dump(result, fh)
        os.replace(tmp, path)
        self.stats.puts += 1


# -- execution --------------------------------------------------------------


def resolve_workers(n_workers: Optional[int]) -> int:
    """Normalize a worker-count request (``None``/``0`` = all cores)."""
    if n_workers is None or n_workers == 0:
        return os.cpu_count() or 1
    if n_workers < 0:
        raise ValueError(f"n_workers must be >= 0 or None, got {n_workers}")
    return n_workers


def _run_config(
    config: ExperimentConfig, tracer=None, profiler=None
) -> Union[ExperimentResult, PointFailure]:
    """Worker entry point: never raises, so one point cannot kill a batch."""
    try:
        if tracer is None and profiler is None:
            # Plain call when untraced: keeps the entry point compatible
            # with single-argument stand-ins for run_experiment.
            return run_experiment(config)
        return run_experiment(config, tracer=tracer, profiler=profiler)
    except Exception as exc:  # noqa: BLE001 - captured by design
        return PointFailure(
            config=config,
            error_type=type(exc).__name__,
            message=str(exc),
            traceback=traceback.format_exc(),
        )


def _run_batch(
    configs: Sequence[ExperimentConfig], workers: int
) -> List[Union[ExperimentResult, PointFailure]]:
    if workers > 1 and len(configs) > 1:
        try:
            with ProcessPoolExecutor(max_workers=min(workers, len(configs))) as pool:
                return list(pool.map(_run_config, configs))
        except (OSError, BrokenProcessPool, PermissionError) as exc:
            # Platforms without usable multiprocessing primitives (or a
            # pool torn down under us): degrade to in-process execution
            # rather than failing the sweep.
            warnings.warn(
                f"process pool unavailable ({exc!r}); "
                "falling back to in-process execution",
                RuntimeWarning,
                stacklevel=3,
            )
    return [_run_config(config) for config in configs]


def run_configs(
    configs: Sequence[ExperimentConfig],
    n_workers: Optional[int] = 1,
    cache_dir: Optional[Union[str, Path, ResultCache]] = None,
    tracer=None,
    profiler=None,
) -> List[Union[ExperimentResult, PointFailure]]:
    """Run experiments, optionally across processes, preserving order.

    Args:
        configs: Experiments to run; the returned list is index-aligned
            with this sequence regardless of worker completion order.
        n_workers: ``1`` (default) runs in-process; ``None`` or ``0``
            uses every core; ``N > 1`` uses a pool of N processes.
        cache_dir: When set, results are read from / written to this
            directory keyed by :func:`config_content_hash`, so only
            configs not already cached are executed.  Failures are never
            cached.  Pass a :class:`ResultCache` instance instead of a
            path to read its :class:`CacheStats` afterwards.
        tracer: Optional :class:`repro.obs.events.Tracer`.  A tracer's
            event buffer lives in this process, so tracing forces
            in-process execution regardless of ``n_workers`` -- results
            are identical either way (that equivalence is under test).
        profiler: Optional :class:`repro.obs.profile.RunProfiler`; also
            forces in-process execution (wall-clock timing of pool
            workers would be meaningless through pickling overhead).

    Returns:
        One :class:`ExperimentResult` or :class:`PointFailure` per config.
    """
    configs = list(configs)
    workers = resolve_workers(n_workers)
    if isinstance(cache_dir, ResultCache):
        cache: Optional[ResultCache] = cache_dir
    else:
        cache = ResultCache(cache_dir) if cache_dir is not None else None

    outcomes: List[Union[ExperimentResult, PointFailure, None]] = [None] * len(configs)
    pending: List[int] = []
    for index, config in enumerate(configs):
        cached = cache.get(config) if cache is not None else None
        if cached is not None:
            outcomes[index] = cached
        else:
            pending.append(index)

    if pending:
        if tracer is not None or profiler is not None:
            fresh = [
                _run_config(configs[i], tracer=tracer, profiler=profiler)
                for i in pending
            ]
        else:
            fresh = _run_batch([configs[i] for i in pending], workers)
        for index, outcome in zip(pending, fresh):
            outcomes[index] = outcome
            if cache is not None and isinstance(outcome, ExperimentResult):
                cache.put(configs[index], outcome)
    return outcomes  # type: ignore[return-value]
