"""Cross-component power-control interactions (paper section 4.1).

"If the power consumption of other components is reduced, how does that
affect the power consumption of storage? ... CPU throttling to reduce CPU
power usage may in turn reduce request rates to storage.  In this case, IO
redirection together with putting devices on standby may be preferred over
IO shaping, because lower IO request rates may mean devices can remain in
standby mode for longer."

:class:`CpuThrottleInteraction` quantifies that preference: for a range of
CPU-throttle levels (each implying a reduced storage request rate), it
compares the fleet power of the two storage-side responses --

- **shape**: keep every device active, serving its slice of the reduced
  load at the cheapest per-device configuration;
- **redirect**: consolidate the reduced load onto few devices and stand
  the rest down --

and reports the crossover the paper predicts: the deeper the CPU throttle,
the stronger the case for redirection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro._units import mib_per_s
from repro.core.model import PowerThroughputModel
from repro.core.redirection import RedirectionPolicy, StandbyProfile
from repro.core.reporting import format_table

__all__ = ["CpuThrottleInteraction", "InteractionPoint"]


@dataclass(frozen=True)
class InteractionPoint:
    """One CPU-throttle level's storage-side comparison.

    Attributes:
        throttle_fraction: CPU power/request-rate reduction (0 = none).
        load_bps: Storage load implied by the throttle.
        shape_power_w: Fleet power with the IO-shaping response.
        redirect_power_w: Fleet power with redirection + standby.
        standby_devices: Devices the redirection response stands down.
    """

    throttle_fraction: float
    load_bps: float
    shape_power_w: float
    redirect_power_w: float
    standby_devices: int

    @property
    def redirection_preferred(self) -> bool:
        return self.redirect_power_w < self.shape_power_w

    @property
    def savings_w(self) -> float:
        return self.shape_power_w - self.redirect_power_w


class CpuThrottleInteraction:
    """Compares shaping vs redirection as CPU throttling deepens."""

    def __init__(
        self,
        model: PowerThroughputModel,
        standby: StandbyProfile,
        n_devices: int,
        full_load_bps: float,
        wake_slo_s: float = 0.1,
    ) -> None:
        if full_load_bps <= 0:
            raise ValueError("full load must be positive")
        self.model = model
        self.standby = standby
        self.n_devices = n_devices
        self.full_load_bps = full_load_bps
        self.wake_slo_s = wake_slo_s
        self._policy = RedirectionPolicy(model, standby, n_devices=n_devices)

    def _shape_power(self, load_bps: float) -> float:
        """All devices active, each shaped to its share of the load."""
        per_device = load_bps / self.n_devices
        point = self.model.cheapest_at_throughput(per_device)
        if point is None:
            point = self.model.max_point()
        return self.n_devices * point.power_w

    def evaluate(
        self, throttle_levels: Sequence[float] = (0.0, 0.2, 0.4, 0.6, 0.8)
    ) -> list[InteractionPoint]:
        """Sweep CPU throttle levels; request rate scales with CPU power."""
        points = []
        for throttle in throttle_levels:
            if not 0 <= throttle < 1:
                raise ValueError("throttle levels must be in [0, 1)")
            load = self.full_load_bps * (1.0 - throttle)
            decision = self._policy.decide(load, wake_slo_s=self.wake_slo_s)
            points.append(
                InteractionPoint(
                    throttle_fraction=throttle,
                    load_bps=load,
                    shape_power_w=self._shape_power(load),
                    redirect_power_w=decision.total_power_w,
                    standby_devices=decision.standby_devices,
                )
            )
        return points

    @staticmethod
    def render(points: list[InteractionPoint]) -> str:
        rows = [
            [
                f"{p.throttle_fraction:.0%}",
                mib_per_s(p.load_bps),
                p.shape_power_w,
                p.redirect_power_w,
                p.standby_devices,
                "redirect" if p.redirection_preferred else "shape",
            ]
            for p in points
        ]
        return format_table(
            [
                "CPU throttle",
                "Load MiB/s",
                "Shape (W)",
                "Redirect (W)",
                "Standby",
                "Preferred",
            ],
            rows,
            title=(
                "CPU-throttle interaction: storage response comparison "
                "(paper section 4.1)."
            ),
        )
