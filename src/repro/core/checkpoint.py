"""Sweep checkpoint journal.

A sweep that dies halfway -- power loss, OOM kill, a stray Ctrl-C --
should not cost the points it already finished.  The journal is an
append-only JSONL file recording each point's lifecycle keyed by its
config content hash:

- ``in_flight``: dispatched to a worker (possibly attempt > 1),
- ``done``: completed and (when a cache is attached) persisted,
- ``failed``: one attempt failed (timeout, crash, or exception),
- ``exhausted``: retry budget spent; the point is a final failure.

Append-only JSONL is deliberately the simplest crash-safe structure:
a torn final line (the crash that motivated resuming) parses as garbage
and is skipped, every earlier line is intact, and the *last* entry per
key wins.  Results themselves live in the
:class:`~repro.core.parallel.ResultCache`; the journal only records
progress, so ``repro sweep --resume`` can report what happened and the
cache can skip recomputation.
"""

from __future__ import annotations

import enum
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, TextIO, Union

__all__ = ["CheckpointEntry", "CheckpointJournal", "PointState"]


class PointState(enum.Enum):
    """Lifecycle of one sweep point in the journal."""

    IN_FLIGHT = "in_flight"
    DONE = "done"
    FAILED = "failed"
    EXHAUSTED = "exhausted"


@dataclass(frozen=True)
class CheckpointEntry:
    """Last recorded state of one point.

    Attributes:
        key: Config content hash identifying the point.
        state: Last journaled lifecycle state.
        attempt: Attempt number the state refers to (1-based).
        detail: Free-form context (error summary, ``"cached"``).
    """

    key: str
    state: PointState
    attempt: int = 1
    detail: str = ""

    @property
    def interrupted(self) -> bool:
        """Whether the point was dispatched but never finished."""
        return self.state is PointState.IN_FLIGHT


class CheckpointJournal:
    """Append-only JSONL journal of sweep-point states.

    >>> import tempfile
    >>> path = Path(tempfile.mkdtemp()) / "checkpoint.jsonl"
    >>> journal = CheckpointJournal(path)
    >>> journal.open(fresh=True)
    >>> journal.record("abc123", PointState.IN_FLIGHT)
    >>> journal.record("abc123", PointState.DONE)
    >>> journal.close()
    >>> CheckpointJournal.load(path)["abc123"].state
    <PointState.DONE: 'done'>
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._fh: Optional[TextIO] = None

    def open(self, fresh: bool = False) -> None:
        """Open for recording; ``fresh`` truncates (non-resume runs)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "w" if fresh else "a", encoding="utf-8")

    def record(
        self,
        key: str,
        state: PointState,
        attempt: int = 1,
        detail: str = "",
    ) -> None:
        """Append one state line and push it to the OS.

        Flushed per line so a crashed parent leaves at most one torn
        line; fsync is deliberately skipped (a per-point fsync would
        dominate short experiments, and losing the last line only costs
        one recomputation).
        """
        if self._fh is None:
            raise RuntimeError("journal is not open")
        entry = {"key": key, "state": state.value, "attempt": attempt}
        if detail:
            entry["detail"] = detail
        self._fh.write(json.dumps(entry, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CheckpointJournal":
        if self._fh is None:
            self.open()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @staticmethod
    def load(path: Union[str, Path]) -> Dict[str, CheckpointEntry]:
        """Last recorded entry per key; ``{}`` if the journal is absent.

        Corrupt or truncated lines (the torn tail of an interrupted run)
        are skipped rather than raised -- the journal must be readable
        precisely after the crashes it exists to survive.
        """
        path = Path(path)
        if not path.exists():
            return {}
        entries: Dict[str, CheckpointEntry] = {}
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    raw = json.loads(line)
                    entry = CheckpointEntry(
                        key=raw["key"],
                        state=PointState(raw["state"]),
                        attempt=int(raw.get("attempt", 1)),
                        detail=str(raw.get("detail", "")),
                    )
                except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                    continue
                entries[entry.key] = entry
        return entries

    @staticmethod
    def summarize(entries: Dict[str, CheckpointEntry]) -> str:
        """One-line state census, e.g. ``"12 done, 1 in-flight, 2 failed"``."""
        if not entries:
            return "empty journal"
        counts: Dict[PointState, int] = {}
        for entry in entries.values():
            counts[entry.state] = counts.get(entry.state, 0) + 1
        order = (
            PointState.DONE,
            PointState.IN_FLIGHT,
            PointState.FAILED,
            PointState.EXHAUSTED,
        )
        return ", ".join(
            f"{counts[state]} {state.value.replace('_', '-')}"
            for state in order
            if state in counts
        )
