"""Pareto frontiers over operating points.

The paper (section 3.3): "power-throughput models of multiple devices can
be combined to derive the performance Pareto frontier of device
configurations under a power budget."  A point dominates another when it
delivers at least the throughput for at most the power (strictly better in
one dimension).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.model import ModelPoint

__all__ = ["dominates", "pareto_frontier"]


def dominates(a: ModelPoint, b: ModelPoint) -> bool:
    """Whether ``a`` Pareto-dominates ``b`` (less/equal power, more/equal
    throughput, strictly better in at least one)."""
    no_worse = a.power_w <= b.power_w and a.throughput_bps >= b.throughput_bps
    strictly_better = a.power_w < b.power_w or a.throughput_bps > b.throughput_bps
    return no_worse and strictly_better


def pareto_frontier(points: Sequence[ModelPoint]) -> list[ModelPoint]:
    """Non-dominated subset, sorted by ascending power.

    O(n log n): sweep by power, keeping points that raise the best
    throughput seen so far.

    >>> from repro.core.sweep import SweepPoint
    >>> from repro.iogen.spec import IoPattern
    >>> mk = lambda p, t: ModelPoint(
    ...     SweepPoint(IoPattern.RANDWRITE, 4096, 1, None), p, t, 0.0)
    >>> frontier = pareto_frontier([mk(5, 100), mk(6, 90), mk(7, 200)])
    >>> [(p.power_w, p.throughput_bps) for p in frontier]
    [(5, 100), (7, 200)]
    """
    if not points:
        return []
    # Sort by power ascending; among equal powers keep highest throughput
    # first so the sweep drops its duplicates.
    ordered = sorted(points, key=lambda p: (p.power_w, -p.throughput_bps))
    frontier: list[ModelPoint] = []
    best_throughput = float("-inf")
    for point in ordered:
        if point.throughput_bps > best_throughput:
            frontier.append(point)
            best_throughput = point.throughput_bps
    return frontier
