"""Single-device power-adaptive planning (paper section 3.3's example).

Given a device's power-throughput model and the operator's constraints
(power budget, optionally a latency SLO), the planner picks the power-cap /
IO-shaping configuration to apply and quantifies how much best-effort load
must be curtailed.  This is the decision procedure the paper walks through
for SSD1: a 20 % power cut maps to the QD1 / 256 KiB point, curtailing
~40 % of 3.3 GiB/s ~= 1.3 GiB/s of best-effort traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro._units import mib_per_s
from repro.core.model import ModelPoint, PowerThroughputModel

__all__ = ["AdaptivePlan", "PowerAdaptivePlanner"]


@dataclass(frozen=True)
class AdaptivePlan:
    """The planner's answer for one power-reduction event.

    Attributes:
        target: The configuration to apply (power state + IO shape).
        power_w: Expected mean power in the target configuration.
        throughput_bps: Expected throughput in the target configuration.
        curtailed_bps: Best-effort load to shed (peak minus target
            throughput); the system should only enter the configuration if
            that much sheddable load exists.
        power_saving_fraction: Power saved relative to peak power.
    """

    target: ModelPoint
    power_w: float
    throughput_bps: float
    curtailed_bps: float
    power_saving_fraction: float

    def describe(self) -> str:
        return (
            f"apply {self.target.point.describe()}: "
            f"{self.power_w:.2f} W "
            f"(-{self.power_saving_fraction:.0%} power), "
            f"{mib_per_s(self.throughput_bps):.0f} MiB/s, "
            f"curtail {mib_per_s(self.curtailed_bps):.0f} MiB/s best-effort"
        )


class PowerAdaptivePlanner:
    """Chooses device configurations under power/performance constraints."""

    def __init__(self, model: PowerThroughputModel) -> None:
        self.model = model

    def plan_power_cut(
        self,
        cut_fraction: float,
        max_latency_p99_s: Optional[float] = None,
    ) -> AdaptivePlan:
        """Plan for a power reduction of ``cut_fraction`` below peak power.

        Raises:
            ValueError: If no configuration (even the idlest) fits the cut.
        """
        if not 0 <= cut_fraction < 1:
            raise ValueError("cut_fraction must be in [0, 1)")
        budget_w = (1.0 - cut_fraction) * self.model.max_power_w
        return self.plan_power_budget(budget_w, max_latency_p99_s)

    def plan_power_budget(
        self,
        budget_w: float,
        max_latency_p99_s: Optional[float] = None,
    ) -> AdaptivePlan:
        """Plan for an absolute power budget in watts."""
        target = self.model.best_under_power_budget(budget_w, max_latency_p99_s)
        if target is None:
            raise ValueError(
                f"{self.model.device_label}: no configuration fits "
                f"{budget_w:.2f} W"
                + (
                    f" with p99 <= {max_latency_p99_s * 1e3:.1f} ms"
                    if max_latency_p99_s is not None
                    else ""
                )
            )
        peak = self.model.max_point()
        return AdaptivePlan(
            target=target,
            power_w=target.power_w,
            throughput_bps=target.throughput_bps,
            curtailed_bps=max(peak.throughput_bps - target.throughput_bps, 0.0),
            power_saving_fraction=1.0 - target.power_w / self.model.max_power_w,
        )

    def required_power_for_load(self, load_bps: float) -> AdaptivePlan:
        """Least-power plan that still serves ``load_bps``.

        Raises:
            ValueError: If the device cannot serve the load at any setting.
        """
        target = self.model.cheapest_at_throughput(load_bps)
        if target is None:
            raise ValueError(
                f"{self.model.device_label} cannot sustain "
                f"{mib_per_s(load_bps):.0f} MiB/s in any configuration"
            )
        peak = self.model.max_point()
        return AdaptivePlan(
            target=target,
            power_w=target.power_w,
            throughput_bps=target.throughput_bps,
            curtailed_bps=max(peak.throughput_bps - target.throughput_bps, 0.0),
            power_saving_fraction=1.0 - target.power_w / self.model.max_power_w,
        )
