"""Safe rollout of power-adaptive storage (paper section 4.1).

"A power-adaptive storage system could be designed for incremental
deployment at the sub-rack granularity ... small-scale test deployments
should be distributed among power domains so that coordinated failures of
deployments to reduce power do not overwhelm a single domain."

This module turns that paragraph into checkable engineering:

- :class:`PowerDomain` -- a sub-rack breaker with the devices behind it;
  knows its worst-case draw when some fraction of the power-adaptive
  controllers *fail to reduce power* (the §4.1 failure mode: devices
  revert to maximum draw).
- :class:`RolloutPlanner` -- distributes a target number of adaptive
  deployments across domains so that even a *fully correlated* control
  failure keeps every breaker inside its limit, and grows the deployment
  in stages.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

__all__ = [
    "DeviceGroup",
    "PowerDomain",
    "RolloutPlanner",
    "RolloutStage",
    "measured_device_group",
]


@dataclass(frozen=True)
class DeviceGroup:
    """Homogeneous devices within one power domain.

    Attributes:
        count: Devices in the group.
        max_power_w: Per-device worst-case draw (uncapped, active).
        adaptive_power_w: Per-device draw the power-adaptive control
            achieves when it works (capped / shaped / standby mix).
        adaptive_count: How many of the group run adaptive control.
    """

    count: int
    max_power_w: float
    adaptive_power_w: float
    adaptive_count: int = 0

    def __post_init__(self) -> None:
        if self.count < 0 or not 0 <= self.adaptive_count <= self.count:
            raise ValueError("bad device counts")
        if not 0 < self.adaptive_power_w <= self.max_power_w:
            raise ValueError("need 0 < adaptive power <= max power")


def measured_device_group(
    count: int,
    adaptive_count: int,
    capped,
    uncontrolled,
) -> DeviceGroup:
    """Build a :class:`DeviceGroup` from two fault-study experiments.

    Closes the loop between the fault subsystem and the rollout planner:
    instead of trusting datasheet figures, the §4.1 hazard is *measured*
    by simulating the same workload twice --

    - ``capped``: the device under its power cap with control working,
      supplying ``adaptive_power_w``;
    - ``uncontrolled``: the same run with an injected governor failure
      (``FaultPlan(governor_failure=...)``), whose measured draw is the
      worst-case ``max_power_w`` a breaker must absorb.

    Args:
        count: Devices in the group.
        adaptive_count: How many run adaptive control.
        capped: :class:`~repro.core.experiment.ExperimentResult` of the
            working capped run (must actually have had a cap).
        uncontrolled: Result of the governor-failure run (must carry a
            :class:`~repro.faults.injector.FaultSummary` with
            ``governor_failed``).

    Raises:
        ValueError: If the two results do not form a valid hazard pair.
    """
    if capped.cap_w is None:
        raise ValueError("capped run must have an active power cap")
    summary = uncontrolled.faults
    if summary is None or not summary.governor_failed:
        raise ValueError(
            "uncontrolled run must carry a governor-failure fault summary; "
            "run it with FaultPlan(governor_failure=...)"
        )
    # The failed run can sit *below* the capped run when the failure fires
    # late in the window; order the measurements rather than trusting the
    # labels so the group still validates.
    powers = sorted((capped.true_mean_power_w, uncontrolled.true_mean_power_w))
    return DeviceGroup(
        count=count,
        max_power_w=powers[1],
        adaptive_power_w=powers[0],
        adaptive_count=adaptive_count,
    )


@dataclass(frozen=True)
class PowerDomain:
    """A sub-rack power domain behind one breaker.

    The domain is *provisioned* assuming adaptive devices hold their
    reduced draw; the safety question is what happens when they do not.
    """

    name: str
    breaker_limit_w: float
    groups: tuple[DeviceGroup, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.breaker_limit_w <= 0:
            raise ValueError("breaker limit must be positive")

    @property
    def device_count(self) -> int:
        return sum(g.count for g in self.groups)

    @property
    def adaptive_count(self) -> int:
        return sum(g.adaptive_count for g in self.groups)

    def expected_power_w(self) -> float:
        """Draw with every adaptive controller working."""
        return sum(
            g.adaptive_count * g.adaptive_power_w
            + (g.count - g.adaptive_count) * g.max_power_w
            for g in self.groups
        )

    def worst_case_power_w(self, failed_fraction: float = 1.0) -> float:
        """Draw when ``failed_fraction`` of adaptive controllers fail high.

        A failed controller leaves its device at maximum draw -- exactly
        the §4.1 hazard ("local failures of the storage system to control
        power").
        """
        if not 0 <= failed_fraction <= 1:
            raise ValueError("failed_fraction must be in [0, 1]")
        total = 0.0
        for g in self.groups:
            failed = g.adaptive_count * failed_fraction
            working = g.adaptive_count - failed
            total += (
                failed * g.max_power_w
                + working * g.adaptive_power_w
                + (g.count - g.adaptive_count) * g.max_power_w
            )
        return total

    def breaker_safe(self, failed_fraction: float = 1.0) -> bool:
        """Whether the breaker holds even under that failure."""
        return self.worst_case_power_w(failed_fraction) <= self.breaker_limit_w

    def headroom_w(self, failed_fraction: float = 1.0) -> float:
        return self.breaker_limit_w - self.worst_case_power_w(failed_fraction)


@dataclass(frozen=True)
class RolloutStage:
    """One stage of the incremental deployment."""

    stage: int
    domains: tuple[PowerDomain, ...]
    total_adaptive: int
    all_breakers_safe: bool

    def describe(self) -> str:
        spread = ", ".join(
            f"{d.name}:{d.adaptive_count}/{d.device_count}" for d in self.domains
        )
        return (
            f"stage {self.stage}: {self.total_adaptive} adaptive devices "
            f"({spread}) -- "
            f"{'safe' if self.all_breakers_safe else 'BREAKER AT RISK'}"
        )


class RolloutPlanner:
    """Distributes adaptive deployments across power domains.

    The planner only ever places an adaptive device where the domain's
    breaker would survive *all* of its adaptive devices failing high
    simultaneously -- the correlated-failure criterion of §4.1.  (Under
    that criterion a failed adaptive device draws what a non-adaptive one
    always draws, so safety reduces to the domain's all-max draw fitting
    the breaker; the planner still balances placements across domains so
    no single domain concentrates the *operational* risk of the new
    control plane.)
    """

    def __init__(self, domains: Sequence[PowerDomain]) -> None:
        if not domains:
            raise ValueError("need at least one power domain")
        self.domains = list(domains)

    def plan(self, target_adaptive: int, stages: int = 3) -> list[RolloutStage]:
        """Grow the deployment to ``target_adaptive`` devices in stages.

        Placements round-robin across domains (balancing blast radius);
        each stage roughly multiplies the deployment size, mirroring the
        paper's "gradually increased" confidence-building rollout.

        Raises:
            ValueError: If the target cannot be placed safely at all.
        """
        if target_adaptive < 1:
            raise ValueError("target must be >= 1")
        if stages < 1:
            raise ValueError("need at least one stage")
        capacity = sum(self._safe_capacity(d) for d in self.domains)
        if target_adaptive > capacity:
            raise ValueError(
                f"only {capacity} devices can run adaptive control without "
                f"risking a breaker; requested {target_adaptive}"
            )
        milestones = sorted(
            {
                max(1, round(target_adaptive * (k + 1) / stages))
                for k in range(stages)
            }
        )
        result = []
        for index, milestone in enumerate(milestones, start=1):
            domains = self._place(milestone)
            result.append(
                RolloutStage(
                    stage=index,
                    domains=tuple(domains),
                    total_adaptive=milestone,
                    all_breakers_safe=all(d.breaker_safe(1.0) for d in domains),
                )
            )
        return result

    def _safe_capacity(self, domain: PowerDomain) -> int:
        """Adaptive devices the domain can host under correlated failure."""
        # Correlated failure puts every adaptive device at max draw, i.e.
        # the domain draws its all-max power regardless of how many are
        # adaptive; capacity is all devices if that fits, else none.
        all_max = sum(g.count * g.max_power_w for g in domain.groups)
        return domain.device_count if all_max <= domain.breaker_limit_w else 0

    def _place(self, n_adaptive: int) -> list[PowerDomain]:
        """Round-robin placement of ``n_adaptive`` across safe domains."""
        placements = {d.name: 0 for d in self.domains}
        capacities = {d.name: self._safe_capacity(d) for d in self.domains}
        remaining = n_adaptive
        while remaining > 0:
            progressed = False
            for domain in self.domains:
                if remaining == 0:
                    break
                if placements[domain.name] < capacities[domain.name]:
                    placements[domain.name] += 1
                    remaining -= 1
                    progressed = True
            if not progressed:
                raise ValueError("placement exceeded safe capacity")
        updated = []
        for domain in self.domains:
            to_place = placements[domain.name]
            groups = []
            for group in domain.groups:
                here = min(to_place, group.count)
                groups.append(replace(group, adaptive_count=here))
                to_place -= here
            updated.append(replace(domain, groups=tuple(groups)))
        return updated

    @staticmethod
    def concentrated(domain: PowerDomain, n_adaptive: int) -> PowerDomain:
        """The naive alternative: pile the whole deployment in one domain.

        Used by the ablation bench to show why §4.1 says not to.
        """
        remaining = n_adaptive
        groups = []
        for group in domain.groups:
            here = min(remaining, group.count)
            groups.append(replace(group, adaptive_count=here))
            remaining -= here
        if remaining > 0:
            raise ValueError("domain too small for the deployment")
        return replace(domain, groups=tuple(groups))
