"""Leveraging asymmetric IO (paper section 4).

"Given the different performance trends in read versus write workloads when
the device is power capped, segregating write traffic to a small set of
disks, while power capping the remainder, is a possibility."

The planner takes *two* models per device class -- one measured under the
read workload, one under the write workload -- because capping is nearly
free for reads and expensive for writes (paper Fig. 4).  It sizes a write
set (uncapped) and a read set (capped) for a mixed offered load and
compares fleet power against the uniform alternative where every device
serves the blended mix and none can be deeply capped.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._units import mib_per_s
from repro.core.model import PowerThroughputModel

__all__ = ["AsymmetricPlan", "AsymmetricPlanner"]


@dataclass(frozen=True)
class AsymmetricPlan:
    """Sizing of the segregated fleet.

    Attributes:
        write_devices / read_devices: Set sizes.
        write_power_w / read_power_w: Power of each set.
        total_power_w: Fleet total with segregation.
        uniform_power_w: Fleet total if every device served the blended mix
            (write share prevents deep capping everywhere).
        savings_w: uniform minus segregated.
    """

    write_devices: int
    read_devices: int
    write_power_w: float
    read_power_w: float
    total_power_w: float
    uniform_power_w: float

    @property
    def savings_w(self) -> float:
        return self.uniform_power_w - self.total_power_w

    def describe(self) -> str:
        return (
            f"{self.write_devices} write devices ({self.write_power_w:.1f} W) + "
            f"{self.read_devices} capped read devices ({self.read_power_w:.1f} W) "
            f"= {self.total_power_w:.1f} W vs uniform {self.uniform_power_w:.1f} W "
            f"(saves {self.savings_w:.1f} W)"
        )


class AsymmetricPlanner:
    """Write-segregation planner over read/write models of one device class."""

    def __init__(
        self,
        read_model: PowerThroughputModel,
        write_model: PowerThroughputModel,
        n_devices: int,
        cap_power_w: float,
    ) -> None:
        """
        Args:
            read_model: Model measured under the read workload.
            write_model: Model measured under the write workload.
            n_devices: Fleet size.
            cap_power_w: The power cap applied to the read set (e.g. the
                device's deepest operational state).
        """
        if n_devices < 2:
            raise ValueError("segregation needs at least two devices")
        if cap_power_w <= 0:
            raise ValueError("cap must be positive")
        self.read_model = read_model
        self.write_model = write_model
        self.n_devices = n_devices
        self.cap_power_w = cap_power_w

    def plan(self, read_load_bps: float, write_load_bps: float) -> AsymmetricPlan:
        """Size the write set for the offered mix.

        Raises:
            ValueError: If the loads cannot be served by the fleet at all.
        """
        if read_load_bps < 0 or write_load_bps < 0:
            raise ValueError("loads must be non-negative")
        write_cap = self.write_model.max_throughput_bps
        n_write = max(1, -(-int(write_load_bps) // max(int(write_cap), 1)))
        n_read = self.n_devices - n_write
        if n_read < 1:
            raise ValueError(
                f"write load {mib_per_s(write_load_bps):.0f} MiB/s leaves no "
                "devices for the read set"
            )
        # Write set: uncapped, at the cheapest point serving its share.
        write_point = self.write_model.cheapest_at_throughput(
            write_load_bps / n_write
        )
        if write_point is None:
            raise ValueError("write set cannot serve its share at any setting")
        # Read set: capped; reads are cap-insensitive so the budgeted point
        # still serves the read share (paper Fig. 4b).
        read_point = self.read_model.best_under_power_budget(self.cap_power_w)
        if read_point is None:
            raise ValueError(
                f"no read configuration fits the {self.cap_power_w:.1f} W cap"
            )
        if read_point.throughput_bps * n_read < read_load_bps:
            raise ValueError(
                "capped read set cannot serve the read load; "
                "raise the cap or shrink the write set"
            )
        # Uniform baseline: every device serves its slice of both loads, so
        # its power is bounded below by the write work it must do plus the
        # read work, priced on the respective models.
        per_dev_write = write_load_bps / self.n_devices
        per_dev_read = read_load_bps / self.n_devices
        uni_write = self.write_model.cheapest_at_throughput(per_dev_write)
        uni_read = self.read_model.cheapest_at_throughput(per_dev_read)
        if uni_write is None or uni_read is None:
            raise ValueError("uniform baseline infeasible for this load")
        # Blended uniform power: write power dominates; read adds its
        # above-idle increment (approximation: sum minus one idle floor).
        idle_floor = self.read_model.min_power_w
        uniform_per_dev = uni_write.power_w + max(uni_read.power_w - idle_floor, 0.0)
        return AsymmetricPlan(
            write_devices=n_write,
            read_devices=n_read,
            write_power_w=n_write * write_point.power_w,
            read_power_w=n_read * read_point.power_w,
            total_power_w=n_write * write_point.power_w
            + n_read * read_point.power_w,
            uniform_power_w=self.n_devices * uniform_per_dev,
        )
