"""Power rail and power-measurement infrastructure.

This package reproduces Figure 1 of the paper in simulation:

1. Device components register their instantaneous draw on a
   :class:`~repro.power.rail.PowerRail` (the "power wire").
2. A :class:`~repro.power.shunt.ShuntResistor` converts the current to a
   differential voltage; a :class:`~repro.power.shunt.DifferentialAmplifier`
   scales it (adding realistic noise).
3. An :class:`~repro.power.adc.ADS1256` model quantizes at 24 bits and
   samples at 1 kHz.
4. A :class:`~repro.power.logger.DataLogger` reconstructs watts from the
   codes, exactly as the paper's Arduino + logging computer do.
5. :mod:`~repro.power.analysis` computes the statistics the paper reports
   (mean, median, quantiles / violin summaries, energy).

:class:`~repro.power.meter.PowerMeter` wires the whole chain together.
"""

from repro.power.adc import ADS1256, AdcConfig
from repro.power.analysis import PowerSummary, summarize_samples, summarize_trace
from repro.power.logger import DataLogger, PowerTrace
from repro.power.meter import MeterConfig, PowerMeter
from repro.power.rail import PowerRail
from repro.power.shunt import DifferentialAmplifier, ShuntResistor

__all__ = [
    "ADS1256",
    "AdcConfig",
    "DataLogger",
    "DifferentialAmplifier",
    "MeterConfig",
    "PowerMeter",
    "PowerRail",
    "PowerSummary",
    "PowerTrace",
    "ShuntResistor",
    "summarize_samples",
    "summarize_trace",
]
