"""Statistics over power traces.

Provides the summaries the paper reports: mean and median (the overlapping
horizontal lines in Figure 2b's violins), quantile envelopes for violin
plots, and energy.  Works both on measured sample arrays
(:class:`~repro.power.logger.PowerTrace`) and on ground-truth
:class:`~repro.sim.trace.StepTrace` objects.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.power.logger import PowerTrace
from repro.sim.trace import StepTrace

__all__ = ["PowerSummary", "summarize_samples", "summarize_trace", "violin_profile"]

#: Quantiles reported in violin summaries (5-number envelope + tails).
VIOLIN_QUANTILES = (0.01, 0.05, 0.25, 0.50, 0.75, 0.95, 0.99)


@dataclass(frozen=True)
class PowerSummary:
    """Summary statistics of one power measurement.

    Attributes:
        mean_w / median_w / min_w / max_w: Watts.
        std_w: Sample standard deviation.
        quantiles: Mapping quantile -> watts over :data:`VIOLIN_QUANTILES`.
        energy_j: Integrated energy in joules.
        duration_s: Window length.
        n_samples: Number of samples behind the summary (0 for step traces).
    """

    mean_w: float
    median_w: float
    min_w: float
    max_w: float
    std_w: float
    quantiles: dict[float, float]
    energy_j: float
    duration_s: float
    n_samples: int

    @property
    def peak_to_mean(self) -> float:
        """Ratio of peak to mean power (burstiness indicator)."""
        return self.max_w / self.mean_w if self.mean_w > 0 else float("nan")

    def __str__(self) -> str:
        return (
            f"mean {self.mean_w:.2f} W, median {self.median_w:.2f} W, "
            f"range [{self.min_w:.2f}, {self.max_w:.2f}] W over "
            f"{self.duration_s * 1e3:.0f} ms"
        )


def summarize_samples(trace: PowerTrace) -> PowerSummary:
    """Summarize a measured (sampled) power trace."""
    watts = trace.watts
    if len(watts) == 0:
        raise ValueError("cannot summarize an empty power trace")
    quantiles = {
        q: float(np.quantile(watts, q)) for q in VIOLIN_QUANTILES
    }
    return PowerSummary(
        mean_w=float(watts.mean()),
        median_w=float(np.median(watts)),
        min_w=float(watts.min()),
        max_w=float(watts.max()),
        std_w=float(watts.std(ddof=1)) if len(watts) > 1 else 0.0,
        quantiles=quantiles,
        energy_j=trace.energy_joules(),
        duration_s=trace.duration,
        n_samples=len(watts),
    )


def summarize_trace(trace: StepTrace, t_start: float, t_end: float) -> PowerSummary:
    """Summarize a ground-truth step trace over a window.

    Quantiles are time-weighted: a value held for 90 % of the window is the
    0.5 quantile even if it appears in a single long segment.
    """
    durations, values = trace._segments(t_start, t_end)
    order = np.argsort(values)
    values_sorted = values[order]
    weights = durations[order]
    cumulative = np.cumsum(weights) / weights.sum()
    quantiles = {
        q: float(values_sorted[np.searchsorted(cumulative, q, side="left")])
        for q in VIOLIN_QUANTILES
    }
    mean = float(np.dot(durations, values) / durations.sum())
    variance = float(np.dot(durations, (values - mean) ** 2) / durations.sum())
    return PowerSummary(
        mean_w=mean,
        median_w=quantiles[0.50],
        min_w=float(values.min()),
        max_w=float(values.max()),
        std_w=variance**0.5,
        quantiles=quantiles,
        energy_j=trace.integrate(t_start, t_end),
        duration_s=t_end - t_start,
        n_samples=0,
    )


def violin_profile(trace: PowerTrace, n_bins: int = 40) -> tuple[np.ndarray, np.ndarray]:
    """Histogram density profile of a trace, for violin-style rendering.

    Returns ``(bin_centers_w, density)`` with density normalized to a peak
    of 1.0 -- the horizontal half-width of a violin plot at each power level.
    """
    if len(trace.watts) == 0:
        raise ValueError("cannot profile an empty power trace")
    counts, edges = np.histogram(trace.watts, bins=n_bins)
    centers = (edges[:-1] + edges[1:]) / 2.0
    peak = counts.max()
    density = counts / peak if peak > 0 else counts.astype(float)
    return centers, density
