"""Model of the TI ADS1256 analog-to-digital converter.

The paper samples the amplified shunt voltage with a 24-bit ADS1256 at
1 kHz.  We model the properties that matter for measurement fidelity:

- finite full-scale input range (+-Vref with PGA gain),
- 24-bit two's-complement quantization,
- input-referred noise (the effective number of bits at 1 kSPS is well
  below 24; the datasheet's ~1.5 uV-rms class noise is modelled),
- saturation at the rails.

The ADC is purely functional: it converts an array of instantaneous analog
voltages (already sampled at its sample clock) into integer codes, and codes
back to voltage for the logger.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ADS1256", "AdcConfig"]

FULL_SCALE_CODE = 2**23 - 1  # 24-bit two's complement positive max


@dataclass(frozen=True)
class AdcConfig:
    """Configuration of one ADS1256 acquisition.

    Attributes:
        vref: Reference voltage in volts (2.5 V typical).
        pga_gain: Programmable gain (1, 2, 4, ... 64); input full scale is
            ``+-2*vref/pga_gain``.
        sample_rate_hz: Output data rate (paper: 1 kHz).
        noise_uv_rms: Input-referred conversion noise, RMS microvolts.
    """

    vref: float = 2.5
    pga_gain: int = 1
    sample_rate_hz: float = 1000.0
    noise_uv_rms: float = 1.5

    def __post_init__(self) -> None:
        if self.vref <= 0:
            raise ValueError("vref must be positive")
        if self.pga_gain not in (1, 2, 4, 8, 16, 32, 64):
            raise ValueError(f"unsupported PGA gain {self.pga_gain}")
        if self.sample_rate_hz <= 0:
            raise ValueError("sample rate must be positive")

    @property
    def full_scale_volts(self) -> float:
        """Largest representable input magnitude."""
        return 2.0 * self.vref / self.pga_gain

    @property
    def lsb_volts(self) -> float:
        """Voltage of one code step."""
        return self.full_scale_volts / FULL_SCALE_CODE


class ADS1256:
    """24-bit delta-sigma ADC front end.

    >>> import numpy as np
    >>> adc = ADS1256(AdcConfig())
    >>> codes = adc.convert(np.array([0.0, 1.25]), np.random.default_rng(0))
    >>> adc.to_volts(codes)[1]  # doctest: +SKIP
    1.2500003...
    """

    def __init__(self, config: AdcConfig | None = None) -> None:
        self.config = config or AdcConfig()

    def sample_times(self, t_start: float, t_end: float) -> np.ndarray:
        """Sample clock instants covering ``[t_start, t_end)``."""
        rate = self.config.sample_rate_hz
        n = int(np.floor((t_end - t_start) * rate))
        return t_start + np.arange(n) / rate

    def convert(self, volts: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Digitize analog ``volts`` into signed 24-bit integer codes."""
        config = self.config
        noisy = np.asarray(volts, float) + rng.normal(
            0.0, config.noise_uv_rms * 1e-6, size=np.shape(volts)
        )
        clipped = np.clip(noisy, -config.full_scale_volts, config.full_scale_volts)
        codes = np.rint(clipped / config.lsb_volts).astype(np.int64)
        return np.clip(codes, -FULL_SCALE_CODE - 1, FULL_SCALE_CODE)

    def to_volts(self, codes: np.ndarray) -> np.ndarray:
        """Convert integer codes back to volts (what the Arduino reads out)."""
        return np.asarray(codes, np.int64) * self.config.lsb_volts

    def saturates_at(self, volts: float) -> bool:
        """Whether an input of ``volts`` would clip at the rails."""
        return abs(volts) >= self.config.full_scale_volts
