"""The power rail: where component draws become a measurable signal.

Every simulated hardware component (controller, DRAM, each NAND die, link
PHY, spindle motor, voice coil...) owns a named channel on its device's
:class:`PowerRail` and updates that channel's draw in watts whenever its
activity changes.  The rail maintains the instantaneous total as a
:class:`~repro.sim.trace.StepTrace`, which is the ground-truth signal the
simulated measurement chain then observes through the shunt resistor.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.engine import Engine
from repro.sim.trace import StepTrace

__all__ = ["PowerRail"]


class PowerRail:
    """Aggregates per-component power draw into one ground-truth trace.

    Attributes:
        voltage: Supply voltage in volts (12 V for SATA drive motors and
            PCIe slots, 5 V for 2.5" SATA SSDs).  The measurement chain uses
            it to convert the sensed current back to power.
        trace: Ground-truth instantaneous total power (W) over time.
    """

    def __init__(self, engine: Engine, voltage: float = 12.0, name: str = "rail") -> None:
        if voltage <= 0:
            raise ValueError(f"rail voltage must be positive, got {voltage!r}")
        self.engine = engine
        self.voltage = voltage
        self.name = name
        self._draws: dict[str, float] = {}
        self._total = 0.0
        # Memoized prefix -> matching component names (insertion order).
        # The component set only ever grows, so each cached list stays
        # valid until a new component appears; the count stamp detects
        # that cheaply.  Governor feedback reads prefix sums on every
        # admission decision, which made the naive scan a sweep hot spot.
        self._prefix_members: dict[str, list[str]] = {}
        self._prefix_stamp = 0
        # Optional per-component shadow accounting (energy-conservation
        # validation).  None by default: the hot path pays one load +
        # None test, the same guard pattern as the null tracer.
        self._audit = None
        self.trace = StepTrace(t0=engine.now, initial=0.0)

    def attach_audit(self, audit) -> None:
        """Shadow every future draw update into ``audit``.

        ``audit`` is a :class:`repro.validate.audit.RailAudit`; it
        snapshots the current component draws on attachment and receives
        ``record(component, watts, t)`` for every subsequent change.
        Auditing is strictly passive -- it reads updates, never alters
        them -- so audited results are bit-identical to unaudited ones.
        """
        audit.attach(self)
        self._audit = audit

    @property
    def total_watts(self) -> float:
        """Current instantaneous total draw in watts."""
        return self._total

    @property
    def current_amps(self) -> float:
        """Current through the power wire, ``P / U``."""
        return self._total / self.voltage

    def set_draw(self, component: str, watts: float) -> None:
        """Set ``component``'s instantaneous draw (absolute, not a delta)."""
        if watts < 0:
            if watts > -1e-9:
                # Float round-off from repeated add/subtract cycles.
                watts = 0.0
            else:
                raise ValueError(
                    f"{self.name}/{component}: negative power draw {watts!r} W"
                )
        draws = self._draws
        previous = draws.get(component, 0.0)
        if watts == previous:
            return
        draws[component] = watts
        total = self._total + (watts - previous)
        # Guard against float drift accumulating into tiny negatives.
        if -1e-9 < total < 0:
            total = 0.0
        self._total = total
        # Inlined StepTrace.set (same semantics): the trace append runs on
        # every draw change, which is several times per simulated IO.
        trace = self.trace
        times = trace._times
        values = trace._values
        t = self.engine._now
        last_t = times[-1]
        if t < last_t:
            raise ValueError(
                f"StepTrace.set at t={t!r} before last breakpoint {last_t!r}"
            )
        if t == last_t:
            values[-1] = total
        elif total != values[-1]:
            times.append(t)
            values.append(total)
        audit = self._audit
        if audit is not None:
            audit.record(component, watts, t)

    def add_draw(self, component: str, delta_watts: float) -> None:
        """Adjust ``component``'s draw by a delta (e.g. one more die busy).

        Same semantics as ``set_draw(component, current + delta)`` with the
        body inlined: die busy/idle brackets call this twice per NAND op.
        """
        draws = self._draws
        previous = draws.get(component, 0.0)
        watts = previous + delta_watts
        if watts < 0:
            if watts > -1e-9:
                watts = 0.0
            else:
                raise ValueError(
                    f"{self.name}/{component}: negative power draw {watts!r} W"
                )
        if watts == previous:
            return
        draws[component] = watts
        total = self._total + (watts - previous)
        if -1e-9 < total < 0:
            total = 0.0
        self._total = total
        trace = self.trace
        times = trace._times
        values = trace._values
        t = self.engine._now
        last_t = times[-1]
        if t < last_t:
            raise ValueError(
                f"StepTrace.set at t={t!r} before last breakpoint {last_t!r}"
            )
        if t == last_t:
            values[-1] = total
        elif total != values[-1]:
            times.append(t)
            values.append(total)
        audit = self._audit
        if audit is not None:
            audit.record(component, watts, t)

    def draw_of(self, component: str) -> float:
        """Current draw registered for ``component`` (0 if never set)."""
        return self._draws.get(component, 0.0)

    def components(self) -> dict[str, float]:
        """Snapshot of all component draws (copy)."""
        return dict(self._draws)

    def draw_of_prefix(self, prefix: str) -> float:
        """Total draw of all components whose name starts with ``prefix``.

        Used by feedback power governors to separate, e.g., total NAND
        draw (components ``die0`` .. ``dieN``) from the rest of the device.
        """
        draws = self._draws
        if len(draws) != self._prefix_stamp:
            self._prefix_members.clear()
            self._prefix_stamp = len(draws)
        members = self._prefix_members.get(prefix)
        if members is None:
            # Insertion order, exactly like scanning draws.items(): the
            # cached path must sum the same floats in the same order so
            # results stay bit-identical to the naive scan.
            members = [name for name in draws if name.startswith(prefix)]
            self._prefix_members[prefix] = members
        # map() keeps the same left-to-right float additions as the naive
        # scan without a generator frame per element.
        return sum(map(draws.__getitem__, members))

    def mean_power(self, t_start: Optional[float] = None, t_end: Optional[float] = None) -> float:
        """Ground-truth time-weighted mean power over a window.

        Defaults to the whole recorded span up to "now".  This is the value
        measurement-chain accuracy is judged against.
        """
        t0 = self.trace.start_time if t_start is None else t_start
        t1 = self.engine.now if t_end is None else t_end
        if t1 <= t0:
            return self.trace.last_value
        return self.trace.mean(t0, t1)
