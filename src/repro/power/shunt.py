"""Shunt resistor and differential amplifier models.

The paper instruments the drive's power wires with a 0.1 ohm shunt: the
current ``I`` through the wire produces a differential voltage
``dV = I * R_shunt`` which, after amplification, is digitized by the ADC.
We model the two analog stages with their dominant error terms so that the
end-to-end accuracy claim (<1 % relative error) is something the simulation
demonstrates rather than assumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DifferentialAmplifier", "ShuntResistor"]


@dataclass(frozen=True)
class ShuntResistor:
    """A current-sense resistor in series with the power wire.

    Attributes:
        resistance_ohm: Nominal resistance (paper: 0.1 ohm).
        tolerance: Relative resistance error of the physical part; a fixed
            per-instance bias drawn once at build time models it.
    """

    resistance_ohm: float = 0.1
    tolerance: float = 0.001  # 0.1 % precision sense resistor

    def __post_init__(self) -> None:
        if self.resistance_ohm <= 0:
            raise ValueError("shunt resistance must be positive")
        if not 0 <= self.tolerance < 0.1:
            raise ValueError("tolerance out of plausible range")

    def actual_resistance(self, rng: np.random.Generator) -> float:
        """Draw the as-built resistance once (uniform within tolerance)."""
        return self.resistance_ohm * (
            1.0 + rng.uniform(-self.tolerance, self.tolerance)
        )

    def sense_voltage(self, current_amps: np.ndarray, actual_resistance: float) -> np.ndarray:
        """Differential voltage across the shunt, ``dV = I * R``."""
        return np.asarray(current_amps, float) * actual_resistance


@dataclass(frozen=True)
class DifferentialAmplifier:
    """An instrumentation amplifier stage.

    Attributes:
        gain: Nominal voltage gain.
        gain_error: Relative gain error (fixed per instance).
        offset_uv: Input-referred offset voltage in microvolts.
        noise_uv_rms: Input-referred RMS noise in microvolts per sample.
    """

    gain: float = 10.0
    gain_error: float = 0.001
    offset_uv: float = 5.0
    noise_uv_rms: float = 2.0

    def __post_init__(self) -> None:
        if self.gain <= 0:
            raise ValueError("amplifier gain must be positive")

    def actual_gain(self, rng: np.random.Generator) -> float:
        """Draw the as-built gain once (uniform within gain_error)."""
        return self.gain * (1.0 + rng.uniform(-self.gain_error, self.gain_error))

    def amplify(
        self,
        sense_voltage: np.ndarray,
        actual_gain: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Apply gain, a fixed offset, and per-sample Gaussian noise."""
        sense = np.asarray(sense_voltage, float)
        offset_v = self.offset_uv * 1e-6
        noise = rng.normal(0.0, self.noise_uv_rms * 1e-6, size=sense.shape)
        return (sense + offset_v + noise) * actual_gain
