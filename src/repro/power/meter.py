"""End-to-end power meter: rail -> shunt -> amplifier -> ADC -> logger.

:class:`PowerMeter` is the facade the experiment harness uses.  Given a
:class:`~repro.power.rail.PowerRail` whose ground-truth trace has been
recorded during a simulation, :meth:`PowerMeter.measure` replays the analog
chain over a time window and returns the reconstructed
:class:`~repro.power.logger.PowerTrace` -- what the paper's logging computer
would have on disk after an experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.power.adc import ADS1256, AdcConfig
from repro.power.logger import DataLogger, PowerTrace
from repro.power.rail import PowerRail
from repro.power.shunt import DifferentialAmplifier, ShuntResistor

__all__ = ["MeterConfig", "PowerMeter"]


@dataclass(frozen=True)
class MeterConfig:
    """Assembly of the measurement chain.

    Defaults reproduce the paper's rig: 0.1 ohm shunt, instrumentation
    amplifier, ADS1256 at 1 kHz.  ``ideal=True`` bypasses all error terms,
    giving a perfect sampler -- useful for separating device behaviour from
    measurement behaviour in tests and ablations.
    """

    shunt: ShuntResistor = field(default_factory=ShuntResistor)
    amplifier: DifferentialAmplifier = field(default_factory=DifferentialAmplifier)
    adc: AdcConfig = field(default_factory=AdcConfig)
    ideal: bool = False

    @property
    def sample_rate_hz(self) -> float:
        return self.adc.sample_rate_hz


class PowerMeter:
    """Measures a power rail through the simulated analog chain.

    The as-built shunt resistance and amplifier gain are drawn once at
    construction (part tolerances are fixed properties of a physical rig),
    while per-sample noise is drawn per measurement.
    """

    def __init__(
        self,
        rail: PowerRail,
        config: MeterConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.rail = rail
        self.config = config or MeterConfig()
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._adc = ADS1256(self.config.adc)
        if self.config.ideal:
            self._actual_shunt = self.config.shunt.resistance_ohm
            self._actual_gain = self.config.amplifier.gain
        else:
            self._actual_shunt = self.config.shunt.actual_resistance(self._rng)
            self._actual_gain = self.config.amplifier.actual_gain(self._rng)
        self._logger = DataLogger(
            nominal_shunt_ohm=self.config.shunt.resistance_ohm,
            nominal_gain=self.config.amplifier.gain,
            rail_voltage=rail.voltage,
        )

    @property
    def sample_rate_hz(self) -> float:
        return self.config.sample_rate_hz

    def measure(self, t_start: float, t_end: float, label: str = "") -> PowerTrace:
        """Measure the rail over ``[t_start, t_end)``.

        Returns the power trace as reconstructed by the logger, including
        shunt/amplifier/ADC error terms unless the meter is ``ideal``.
        """
        if t_end <= t_start:
            raise ValueError("measurement window must have positive length")
        times = self._adc.sample_times(t_start, t_end)
        true_watts = self.rail.trace.sample(times)
        true_current = true_watts / self.rail.voltage

        if self.config.ideal:
            return PowerTrace(
                times=times,
                watts=true_watts,
                rail_voltage=self.rail.voltage,
                sample_rate_hz=self.sample_rate_hz,
                label=label,
            )

        sense = self.config.shunt.sense_voltage(true_current, self._actual_shunt)
        amplified = self.config.amplifier.amplify(sense, self._actual_gain, self._rng)
        codes = self._adc.convert(amplified, self._rng)
        volts = self._adc.to_volts(codes)
        return self._logger.reconstruct(
            times, volts, self.sample_rate_hz, label=label
        )

    def relative_error(self, t_start: float, t_end: float) -> float:
        """Relative error of the measured vs ground-truth mean power.

        This is the quantity behind the paper's "<1 % relative error" claim
        for the measurement system.
        """
        measured = self.measure(t_start, t_end).mean()
        truth = self.rail.trace.mean(t_start, t_end)
        if truth == 0:
            return 0.0 if measured == 0 else float("inf")
        return abs(measured - truth) / truth
