"""Data logger: code stream -> calibrated power trace.

In the paper an Arduino UNO reads the ADC and ships voltage codes to a
logging computer which reconstructs power as ``P = U * I`` with
``I = V_amp / (gain * R_shunt)``.  :class:`DataLogger` performs that
reconstruction using the *nominal* shunt resistance and amplifier gain --
the same values a real experimenter would use -- so that part-tolerance
biases show up as genuine measurement error rather than being silently
calibrated away.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["DataLogger", "PowerTrace"]


@dataclass
class PowerTrace:
    """A recorded power measurement series.

    Attributes:
        times: Sample instants in seconds (length N).
        watts: Reconstructed power at each instant (length N).
        rail_voltage: Supply voltage used in the ``P = U * I`` computation.
        sample_rate_hz: Acquisition rate.
    """

    times: np.ndarray
    watts: np.ndarray
    rail_voltage: float
    sample_rate_hz: float
    label: str = field(default="")

    def __post_init__(self) -> None:
        self.times = np.asarray(self.times, float)
        self.watts = np.asarray(self.watts, float)
        if self.times.shape != self.watts.shape:
            raise ValueError("times and watts must have the same shape")

    def __len__(self) -> int:
        return len(self.times)

    @property
    def duration(self) -> float:
        """Span from first to one period past the last sample."""
        if len(self.times) == 0:
            return 0.0
        return float(self.times[-1] - self.times[0]) + 1.0 / self.sample_rate_hz

    def mean(self) -> float:
        """Mean measured power in watts."""
        return float(self.watts.mean())

    def median(self) -> float:
        return float(np.median(self.watts))

    def min(self) -> float:
        return float(self.watts.min())

    def max(self) -> float:
        return float(self.watts.max())

    def energy_joules(self) -> float:
        """Riemann-sum energy over the trace."""
        return float(self.watts.sum() / self.sample_rate_hz)

    def window(self, t_start: float, t_end: float) -> "PowerTrace":
        """Sub-trace restricted to ``[t_start, t_end)``."""
        mask = (self.times >= t_start) & (self.times < t_end)
        return PowerTrace(
            times=self.times[mask],
            watts=self.watts[mask],
            rail_voltage=self.rail_voltage,
            sample_rate_hz=self.sample_rate_hz,
            label=self.label,
        )


class DataLogger:
    """Reconstructs power from amplified-shunt-voltage ADC codes."""

    def __init__(
        self,
        nominal_shunt_ohm: float,
        nominal_gain: float,
        rail_voltage: float,
    ) -> None:
        if nominal_shunt_ohm <= 0 or nominal_gain <= 0 or rail_voltage <= 0:
            raise ValueError("logger calibration constants must be positive")
        self.nominal_shunt_ohm = nominal_shunt_ohm
        self.nominal_gain = nominal_gain
        self.rail_voltage = rail_voltage

    def reconstruct(
        self,
        times: np.ndarray,
        amplified_volts: np.ndarray,
        sample_rate_hz: float,
        label: str = "",
    ) -> PowerTrace:
        """Convert amplified shunt voltages to a :class:`PowerTrace`.

        ``I = V / (gain * R_shunt)``; ``P = U * I``.  Values are clamped at
        zero: a real logger would report tiny negative wattages from noise
        around zero current, which downstream statistics do not want.
        """
        current = np.asarray(amplified_volts, float) / (
            self.nominal_gain * self.nominal_shunt_ohm
        )
        watts = np.maximum(self.rail_voltage * current, 0.0)
        return PowerTrace(
            times=np.asarray(times, float),
            watts=watts,
            rail_voltage=self.rail_voltage,
            sample_rate_hz=sample_rate_hz,
            label=label,
        )
