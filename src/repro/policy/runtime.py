"""The policy loop: sense the rail, ask the controller, move the device.

:class:`PolicyRuntime` is instantiated by
:func:`repro.core.experiment.run_experiment` only when the config
carries a :class:`~repro.policy.spec.PolicySpec` -- the import itself is
lazy, so runs without a policy never touch this package (the
``bench_policy_overhead`` gate holds that to bit-identity).

Determinism contract:

- The decision cadence is the only randomness: each tick waits
  ``interval_s`` jittered +/-10% from the keyed ``policy.interval``
  stream, so decisions cannot phase-lock with the device's program-
  intensity wave yet replay exactly from the seed.  The stream is only
  ever created here -- an inert run draws nothing and stays
  bit-identical to a build without this package.
- Sensing is selected by ``PolicySpec.sense``.  The default,
  ``"rail"``, reads the rail trace (ground truth) so controller
  behaviour does not depend on meter part tolerance -- and is
  bit-identical to every run before the seam existed.  ``"meter"``
  senses through :class:`repro.faults.control.SensedPower`, the meter
  path the fault plan's sensor spec can bias, freeze, or kill; a clean
  meter computes the same trailing mean, so ``sense="meter"`` without
  sensor faults changes no numbers either.
- Actuation is skipped when the commanded target is unchanged.  This is
  not an optimisation: a redundant ``governor.set_cap`` still drains
  the admission queue against *live* power and would perturb grant
  timing, so "no decision change" must mean "no device interaction".
  (The watchdog's safe mode is the one exception: a degraded tick
  re-commands the safe cap unconditionally so a lossy actuator cannot
  starve it, which is acceptable precisely because safe mode already
  forfeits bit-comparability with the clean run.)
- When the fault plan carries an actuator spec, commands route through
  :class:`repro.faults.control.PolicyActuator`; otherwise the runtime
  calls the device directly -- the seam costs clean runs nothing.

Actuator mapping per device class:

- SSD with an NVMe power-state table: the policy cap rides *alongside*
  the state cap via :meth:`~repro.devices.ssd.SimulatedSSD.set_policy_cap`
  (the governor enforces the min of both); ladder rungs are the
  operational states' max powers.
- SSD without a table (consumer SATA): same entry point, with the
  physical range taken from the validation envelope and synthetic
  evenly-spaced rungs.
- HDD: EPC idle conditions via
  :meth:`~repro.devices.hdd_drive.SimulatedHdd.set_idle_condition` --
  the only sub-idle mechanism the paper found, and one any media access
  instantly undoes.  Under load the harvest is therefore ~0, which *is*
  the paper's finding, reproduced rather than papered over.
"""

from __future__ import annotations

from typing import Optional

from repro.faults.injector import NULL_INJECTOR
from repro.obs.events import EventKind
from repro.policy.api import PolicyObservation, PolicySummary
from repro.policy.controllers import build_policy
from repro.policy.spec import PolicySpec

__all__ = ["PolicyRuntime"]


def _ssd_range(config) -> tuple[float, float, tuple[float, ...]]:
    """Floor/ceiling/rungs for an SSD actuator."""
    operational = tuple(
        sorted(
            {
                state.max_power_w
                for state in config.power_states
                if state.operational
            }
        )
    )
    if operational:
        return operational[0], operational[-1], operational
    # No power-state table (consumer SATA): fall back to the physics
    # envelope and quantize it into a synthetic five-rung ladder.
    from repro.validate.envelope import power_envelope

    envelope = power_envelope(config)
    floor_w, ceiling_w = envelope.floor_w, envelope.peak_w
    rungs = tuple(
        floor_w + i * (ceiling_w - floor_w) / 4.0 for i in range(5)
    )
    return floor_w, ceiling_w, rungs


def _hdd_range(config) -> tuple[float, float, tuple[float, ...]]:
    """Floor/ceiling/rungs for an HDD's EPC actuator."""
    idle = config.idle_power_w
    floor_w = idle - config.idle_c_savings_w
    ceiling_w = idle + config.seek_power_w + config.transfer_power_w
    rungs = (floor_w, idle - config.idle_b_savings_w, ceiling_w)
    return floor_w, ceiling_w, rungs


class PolicyRuntime:
    """Runs one controller against one device for the life of a run."""

    def __init__(self, engine, device, spec: PolicySpec, rngs) -> None:
        self.engine = engine
        self.device = device
        self.spec = spec
        if hasattr(device, "set_policy_cap"):
            self.floor_w, self.ceiling_w, self.rungs = _ssd_range(
                device.config
            )
            self._actuate = self._actuate_ssd
        elif hasattr(device, "set_idle_condition"):
            self.floor_w, self.ceiling_w, self.rungs = _hdd_range(
                device.config
            )
            self._actuate = self._actuate_hdd
        else:
            raise TypeError(
                f"device {device!r} exposes neither set_policy_cap nor "
                "set_idle_condition; no policy actuator available"
            )
        self._component = f"{device.name}.policy"
        self.controller = build_policy(
            spec, self.floor_w, self.ceiling_w, self.rungs
        )
        self.controller.reset()
        self._rng = rngs.get("policy.interval")
        # Control-plane seams.  All three are optional and imported
        # lazily: the legacy rail-sensing, direct-actuation,
        # watchdog-off configuration builds none of them and never
        # imports repro.faults.control or repro.policy.watchdog.
        injector = getattr(device, "faults", NULL_INJECTOR)
        plan = getattr(injector, "plan", None)
        sensor_spec = plan.sensor if plan is not None else None
        actuator_spec = plan.actuator if plan is not None else None
        self._sensed = None
        if spec.sense == "meter":
            from repro.faults.control import SensedPower

            self._sensed = SensedPower(
                device, spec.window_s, sensor_spec, injector
            )
        self._actuator = None
        if actuator_spec is not None:
            from repro.faults.control import PolicyActuator

            self._actuator = PolicyActuator(
                engine,
                self._actuate,
                self._component,
                actuator_spec,
                injector,
            )
        #: The tightest sustainable static cap: the schedule's minimum
        #: budget clamped to the actuator's physical range.  Safe mode
        #: pins this, and it never exceeds max(budget, floor) at any t.
        self.safe_cap_w = max(
            self.floor_w, min(spec.budget.min_w, self.ceiling_w)
        )
        self._watchdog = None
        if spec.watchdog is not None:
            from repro.policy.watchdog import Watchdog

            self._watchdog = Watchdog(spec.watchdog, self.safe_cap_w)
        self._target_w: Optional[float] = None
        self._decisions = 0
        self._set_point_changes = 0
        self._max_overshoot_w = 0.0
        self._samples: list[tuple[float, float, float, float]] = []
        self._stride = 1
        self._ticks = 0
        self.process = engine.process(self._loop())

    # -- actuators -------------------------------------------------------

    def _actuate_ssd(self, target_w: float) -> None:
        self.device.set_policy_cap(target_w)

    def _actuate_hdd(self, target_w: float) -> None:
        from repro.devices.hdd_drive import IdleCondition

        config = self.device.config
        # The epsilon absorbs float noise at the rung boundaries: a rung
        # target of exactly ``idle - idle_b_savings`` must map to IDLE_B,
        # not spuriously deepen to IDLE_C.
        need = config.idle_power_w - target_w
        if need > config.idle_b_savings_w + 1e-9:
            condition = IdleCondition.IDLE_C
        elif need > 1e-12:
            condition = IdleCondition.IDLE_B
        else:
            condition = IdleCondition.IDLE_A
        self.device.set_idle_condition(condition)

    # -- the loop --------------------------------------------------------

    def _loop(self):
        engine = self.engine
        interval_s = self.spec.interval_s
        uniform = self._rng.uniform
        while True:
            yield engine.timeout(interval_s * float(uniform(0.9, 1.1)))
            self._tick(engine.now)

    def _tick(self, now: float) -> None:
        spec = self.spec
        if self._sensed is not None:
            reading = self._sensed.read(now)
            measured_w = reading.value_w
            age_s = reading.age_s
        else:
            measured_w = self.device.rail.trace.mean(
                max(0.0, now - spec.window_s), now
            )
            age_s = 0.0
        budget_w = spec.budget.watts_at(now)
        watchdog = self._watchdog
        if watchdog is not None:
            transition = watchdog.step(
                now,
                age_s=age_s,
                measured_w=measured_w,
                budget_w=budget_w,
                target_w=self._target_w,
            )
            tracer = self.engine.tracer
            if transition == "degrade":
                if tracer.enabled:
                    tracer.emit(
                        EventKind.WATCHDOG_DEGRADE,
                        self._component,
                        reason=watchdog.last_reason,
                        safe_cap_w=self.safe_cap_w,
                        measured_w=measured_w,
                        budget_w=budget_w,
                    )
            elif transition == "rearm":
                # Fresh start for the controller: its integrators and
                # rung index accumulated through an incident it could
                # not observe honestly.
                self.controller.reset()
                if tracer.enabled:
                    tracer.emit(
                        EventKind.WATCHDOG_REARM,
                        self._component,
                        measured_w=measured_w,
                        budget_w=budget_w,
                    )
            if watchdog.degraded:
                self._decisions += 1
                # Re-command every degraded tick (force=True): a lossy
                # or delayed actuator must not be allowed to starve the
                # safe cap indefinitely.
                self._command(
                    self.safe_cap_w, budget_w, measured_w, force=True
                )
                overshoot = measured_w - budget_w
                if overshoot > self._max_overshoot_w:
                    self._max_overshoot_w = overshoot
                self._record(now, budget_w, self.safe_cap_w, measured_w)
                return
        obs = PolicyObservation(
            now=now,
            measured_w=measured_w,
            budget_w=budget_w,
            target_w=self._target_w,
            inflight=int(getattr(self.device, "_inflight_ios", 0)),
        )
        target_w = self.controller.decide(obs)
        self._decisions += 1
        self._command(target_w, budget_w, measured_w)
        overshoot = measured_w - budget_w
        if overshoot > self._max_overshoot_w:
            self._max_overshoot_w = overshoot
        self._record(now, budget_w, target_w, measured_w)

    def _command(
        self,
        target_w: float,
        budget_w: float,
        measured_w: float,
        force: bool = False,
    ) -> None:
        """Route one commanded target through the (possibly faulted)
        actuator, keeping the unchanged-target fast path."""
        changed = target_w != self._target_w
        if not changed and not force:
            return
        if self._actuator is not None:
            self._actuator.command(target_w)
        elif changed:
            self._actuate(target_w)
        if not changed:
            return
        self._target_w = target_w
        self._set_point_changes += 1
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.emit(
                EventKind.SET_POINT,
                self._component,
                target_w=target_w,
                budget_w=budget_w,
                measured_w=measured_w,
            )

    def _record(
        self, now: float, budget_w: float, target_w: float, measured_w: float
    ) -> None:
        # Stride-doubling decimation: retention stays within sample_limit
        # without ever re-weighting -- retained samples are always an
        # evenly spaced subsequence of the decision ticks.
        if self._ticks % self._stride == 0:
            self._samples.append((now, budget_w, target_w, measured_w))
            if len(self._samples) > self.spec.sample_limit:
                del self._samples[1::2]
                self._stride *= 2
        self._ticks += 1

    # -- results ---------------------------------------------------------

    def summary(self) -> PolicySummary:
        wd = self._watchdog
        return PolicySummary(
            spec=self.spec,
            floor_w=self.floor_w,
            ceiling_w=self.ceiling_w,
            decisions=self._decisions,
            set_point_changes=self._set_point_changes,
            sample_stride=self._stride,
            samples=tuple(self._samples),
            max_overshoot_w=self._max_overshoot_w,
            degraded_fraction=wd.degraded_fraction if wd else 0.0,
            watchdog_trips=wd.trips if wd else 0,
            watchdog_episodes=(
                tuple(tuple(e) for e in wd.episodes) if wd else ()
            ),
            safe_cap_w=self.safe_cap_w if wd else None,
        )
