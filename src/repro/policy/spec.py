"""Declarative descriptions of power-adaptive control policies.

A policy run is fully described by two frozen dataclasses:

- :class:`BudgetSchedule` -- the *time-varying power budget* the
  controller must track, as a pure function of simulated time.  The
  paper's motivating scenarios (SI 5) are diurnal datacenter envelopes
  and step-shaped demand-response events, so those are the built-in
  shapes alongside a constant budget.
- :class:`PolicySpec` -- which controller to run against that schedule
  and its tuning (sense cadence, measurement window, feedback gains,
  ladder hysteresis, optional latency SLO).

Both are hashable value types: they ride on
:class:`~repro.core.experiment.ExperimentConfig`, participate in sweep
cache keys via ``config_content_hash``, and must therefore contain only
plain floats/ints/strings.  Everything time-dependent is a *pure*
function of ``t`` -- no RNG, no state -- so that two runs with the same
seed see bit-identical budgets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

__all__ = ["POLICY_KINDS", "BudgetSchedule", "PolicySpec", "WatchdogSpec"]

#: Controller kinds understood by :func:`repro.policy.build_policy`.
#: ``unsafe`` (the deliberately-broken chaos fixture) is additionally
#: accepted by :class:`PolicySpec` but kept out of this tuple so it never
#: appears in ``--policy`` CLI choices or study grids by default.
POLICY_KINDS = ("static", "feedback", "ladder")

_EXTRA_KINDS = ("unsafe",)

_SENSE_PATHS = ("rail", "meter")

_SCHEDULE_SHAPES = ("constant", "step", "diurnal")


@dataclass(frozen=True)
class BudgetSchedule:
    """A power budget as a pure function of simulated time.

    Attributes:
        shape: One of ``constant``, ``step``, ``diurnal``.
        high_w: Budget ceiling in watts (the generous phase).
        low_w: Budget floor in watts (the constrained phase).
        period_s: Repetition period of the shape in simulated seconds.
        duty: For ``step``: fraction of each period spent at ``high_w``.
    """

    shape: str
    high_w: float
    low_w: float
    period_s: float = 1.0
    duty: float = 0.5

    def __post_init__(self) -> None:
        if self.shape not in _SCHEDULE_SHAPES:
            raise ValueError(
                f"unknown budget shape {self.shape!r}; "
                f"expected one of {_SCHEDULE_SHAPES}"
            )
        if not self.low_w > 0:
            raise ValueError(f"low_w must be positive, got {self.low_w!r}")
        if self.high_w < self.low_w:
            raise ValueError(
                f"high_w ({self.high_w!r}) must be >= low_w ({self.low_w!r})"
            )
        if not self.period_s > 0:
            raise ValueError(
                f"period_s must be positive, got {self.period_s!r}"
            )
        if not 0.0 < self.duty < 1.0:
            raise ValueError(f"duty must be in (0, 1), got {self.duty!r}")

    # -- constructors ----------------------------------------------------

    @classmethod
    def constant(cls, watts: float) -> "BudgetSchedule":
        """A fixed budget: ``watts`` forever."""
        return cls(shape="constant", high_w=watts, low_w=watts)

    @classmethod
    def step(
        cls,
        high_w: float,
        low_w: float,
        period_s: float,
        duty: float = 0.5,
    ) -> "BudgetSchedule":
        """A square wave: ``high_w`` for ``duty`` of each period, then
        ``low_w`` (a demand-response event per period)."""
        return cls(
            shape="step",
            high_w=high_w,
            low_w=low_w,
            period_s=period_s,
            duty=duty,
        )

    @classmethod
    def diurnal(
        cls, high_w: float, low_w: float, period_s: float
    ) -> "BudgetSchedule":
        """A smooth day/night sinusoid starting at ``high_w``."""
        return cls(
            shape="diurnal", high_w=high_w, low_w=low_w, period_s=period_s
        )

    # -- evaluation ------------------------------------------------------

    @property
    def min_w(self) -> float:
        """The tightest budget the schedule ever imposes."""
        return self.low_w

    def watts_at(self, t: float) -> float:
        """The instantaneous budget at simulated time ``t`` (seconds)."""
        if self.shape == "constant":
            return self.high_w
        phase = math.fmod(t, self.period_s) / self.period_s
        if self.shape == "step":
            return self.high_w if phase < self.duty else self.low_w
        # diurnal: cosine from high_w at phase 0 down to low_w at 0.5.
        mid = 0.5 * (self.high_w + self.low_w)
        amp = 0.5 * (self.high_w - self.low_w)
        return mid + amp * math.cos(2.0 * math.pi * phase)


@dataclass(frozen=True)
class WatchdogSpec:
    """Tuning for the policy watchdog's fault detectors.

    All three detectors feed one safe-mode latch: on any trip the
    runtime abandons the controller and pins the tightest sustainable
    static cap until the detectors stay quiet for ``rearm_ticks``
    consecutive decisions.

    Attributes:
        stale_after_s: A sensor reading older than this trips the
            staleness detector (meter dropout).
        freeze_ticks: Consecutive bit-identical readings that trip the
            frozen-sensor detector.
        breach_w: Tracking-error guard band in watts: measured power
            must exceed budget (or the commanded target, for the
            non-response detector) by more than this to count as a
            breach tick.
        breach_ticks: Consecutive breach ticks that trip the
            tracking-error / actuation-non-response detector.
        rearm_ticks: Consecutive healthy ticks required before safe
            mode re-arms the controller.
    """

    stale_after_s: float = 0.01
    freeze_ticks: int = 8
    breach_w: float = 1.0
    breach_ticks: int = 6
    rearm_ticks: int = 10

    def __post_init__(self) -> None:
        if not self.stale_after_s > 0:
            raise ValueError(
                f"stale_after_s must be positive, got {self.stale_after_s!r}"
            )
        if self.freeze_ticks < 2:
            raise ValueError(
                f"freeze_ticks must be >= 2, got {self.freeze_ticks!r}"
            )
        if not self.breach_w > 0:
            raise ValueError(
                f"breach_w must be positive, got {self.breach_w!r}"
            )
        if self.breach_ticks < 1:
            raise ValueError(
                f"breach_ticks must be >= 1, got {self.breach_ticks!r}"
            )
        if self.rearm_ticks < 1:
            raise ValueError(
                f"rearm_ticks must be >= 1, got {self.rearm_ticks!r}"
            )


@dataclass(frozen=True)
class PolicySpec:
    """Which controller to run, and how it senses and reacts.

    Attributes:
        kind: Controller family -- one of :data:`POLICY_KINDS`.
        budget: The :class:`BudgetSchedule` to track.
        interval_s: Nominal decision cadence.  The runtime jitters each
            tick by +/-10% from the keyed ``policy.interval`` stream so
            decisions do not phase-lock with device waves.
        window_s: Trailing rail-power averaging window for the sensed
            mean.  Must span at least one decision interval.
        gain: Proportional gain of the feedback controller (watts of
            set-point motion per watt of budget error).
        integral_gain: Integral gain of the feedback controller.
        hysteresis_w: Ladder guard band: a rung is climbed only once the
            budget clears it by this margin.
        slo_p99_s: Optional p99 latency SLO checked post-hoc by the
            ``slo_adherence`` invariant.
        settle_intervals: Decision ticks the validator grants the
            controller to converge after a budget step before holding
            the measured mean to the budget.
        sample_limit: Cap on retained ``(t, budget, target, measured)``
            samples; older samples are decimated by stride doubling.
        sense: Which sensing path the runtime uses.  ``"rail"`` (the
            default) reads the rail trace directly -- the legacy path,
            bit-identical to every pre-seam run.  ``"meter"`` senses
            through :class:`repro.faults.control.SensedPower`, the seam
            the fault plan's sensor spec distorts.
        watchdog: Optional :class:`WatchdogSpec` arming the safe-mode
            watchdog.  ``None`` (the default) never imports the
            watchdog module.
    """

    kind: str
    budget: BudgetSchedule
    interval_s: float = 2e-3
    window_s: float = 4e-3
    gain: float = 0.6
    integral_gain: float = 0.2
    hysteresis_w: float = 0.25
    slo_p99_s: Optional[float] = None
    settle_intervals: int = 6
    sample_limit: int = 512
    sense: str = "rail"
    watchdog: Optional[WatchdogSpec] = None

    def __post_init__(self) -> None:
        if self.kind not in POLICY_KINDS + _EXTRA_KINDS:
            raise ValueError(
                f"unknown policy kind {self.kind!r}; "
                f"expected one of {POLICY_KINDS + _EXTRA_KINDS}"
            )
        if self.sense not in _SENSE_PATHS:
            raise ValueError(
                f"unknown sense path {self.sense!r}; "
                f"expected one of {_SENSE_PATHS}"
            )
        if self.watchdog is not None and not isinstance(
            self.watchdog, WatchdogSpec
        ):
            raise TypeError(
                f"watchdog must be a WatchdogSpec, got {self.watchdog!r}"
            )
        if not isinstance(self.budget, BudgetSchedule):
            raise TypeError(
                f"budget must be a BudgetSchedule, got {self.budget!r}"
            )
        if not self.interval_s > 0:
            raise ValueError(
                f"interval_s must be positive, got {self.interval_s!r}"
            )
        if self.window_s < self.interval_s:
            raise ValueError(
                f"window_s ({self.window_s!r}) must be >= interval_s "
                f"({self.interval_s!r}): a shorter window would let "
                "decisions alias unobserved intervals"
            )
        if self.gain < 0 or self.integral_gain < 0:
            raise ValueError("feedback gains must be non-negative")
        if self.hysteresis_w < 0:
            raise ValueError(
                f"hysteresis_w must be >= 0, got {self.hysteresis_w!r}"
            )
        if self.slo_p99_s is not None and not self.slo_p99_s > 0:
            raise ValueError(
                f"slo_p99_s must be positive, got {self.slo_p99_s!r}"
            )
        if self.settle_intervals < 0:
            raise ValueError(
                f"settle_intervals must be >= 0, got {self.settle_intervals!r}"
            )
        if self.sample_limit < 16:
            raise ValueError(
                f"sample_limit must be >= 16, got {self.sample_limit!r}"
            )

    def describe(self) -> str:
        """Short human-readable tag (used by ``ExperimentConfig.describe``)."""
        budget = self.budget
        return (
            f"{self.kind}[{budget.shape} "
            f"{budget.low_w:.2f}-{budget.high_w:.2f}W]"
        )
