"""Declarative descriptions of power-adaptive control policies.

A policy run is fully described by two frozen dataclasses:

- :class:`BudgetSchedule` -- the *time-varying power budget* the
  controller must track, as a pure function of simulated time.  The
  paper's motivating scenarios (SI 5) are diurnal datacenter envelopes
  and step-shaped demand-response events, so those are the built-in
  shapes alongside a constant budget.
- :class:`PolicySpec` -- which controller to run against that schedule
  and its tuning (sense cadence, measurement window, feedback gains,
  ladder hysteresis, optional latency SLO).

Both are hashable value types: they ride on
:class:`~repro.core.experiment.ExperimentConfig`, participate in sweep
cache keys via ``config_content_hash``, and must therefore contain only
plain floats/ints/strings.  Everything time-dependent is a *pure*
function of ``t`` -- no RNG, no state -- so that two runs with the same
seed see bit-identical budgets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

__all__ = ["POLICY_KINDS", "BudgetSchedule", "PolicySpec"]

#: Controller kinds understood by :func:`repro.policy.build_policy`.
POLICY_KINDS = ("static", "feedback", "ladder")

_SCHEDULE_SHAPES = ("constant", "step", "diurnal")


@dataclass(frozen=True)
class BudgetSchedule:
    """A power budget as a pure function of simulated time.

    Attributes:
        shape: One of ``constant``, ``step``, ``diurnal``.
        high_w: Budget ceiling in watts (the generous phase).
        low_w: Budget floor in watts (the constrained phase).
        period_s: Repetition period of the shape in simulated seconds.
        duty: For ``step``: fraction of each period spent at ``high_w``.
    """

    shape: str
    high_w: float
    low_w: float
    period_s: float = 1.0
    duty: float = 0.5

    def __post_init__(self) -> None:
        if self.shape not in _SCHEDULE_SHAPES:
            raise ValueError(
                f"unknown budget shape {self.shape!r}; "
                f"expected one of {_SCHEDULE_SHAPES}"
            )
        if not self.low_w > 0:
            raise ValueError(f"low_w must be positive, got {self.low_w!r}")
        if self.high_w < self.low_w:
            raise ValueError(
                f"high_w ({self.high_w!r}) must be >= low_w ({self.low_w!r})"
            )
        if not self.period_s > 0:
            raise ValueError(
                f"period_s must be positive, got {self.period_s!r}"
            )
        if not 0.0 < self.duty < 1.0:
            raise ValueError(f"duty must be in (0, 1), got {self.duty!r}")

    # -- constructors ----------------------------------------------------

    @classmethod
    def constant(cls, watts: float) -> "BudgetSchedule":
        """A fixed budget: ``watts`` forever."""
        return cls(shape="constant", high_w=watts, low_w=watts)

    @classmethod
    def step(
        cls,
        high_w: float,
        low_w: float,
        period_s: float,
        duty: float = 0.5,
    ) -> "BudgetSchedule":
        """A square wave: ``high_w`` for ``duty`` of each period, then
        ``low_w`` (a demand-response event per period)."""
        return cls(
            shape="step",
            high_w=high_w,
            low_w=low_w,
            period_s=period_s,
            duty=duty,
        )

    @classmethod
    def diurnal(
        cls, high_w: float, low_w: float, period_s: float
    ) -> "BudgetSchedule":
        """A smooth day/night sinusoid starting at ``high_w``."""
        return cls(
            shape="diurnal", high_w=high_w, low_w=low_w, period_s=period_s
        )

    # -- evaluation ------------------------------------------------------

    @property
    def min_w(self) -> float:
        """The tightest budget the schedule ever imposes."""
        return self.low_w

    def watts_at(self, t: float) -> float:
        """The instantaneous budget at simulated time ``t`` (seconds)."""
        if self.shape == "constant":
            return self.high_w
        phase = math.fmod(t, self.period_s) / self.period_s
        if self.shape == "step":
            return self.high_w if phase < self.duty else self.low_w
        # diurnal: cosine from high_w at phase 0 down to low_w at 0.5.
        mid = 0.5 * (self.high_w + self.low_w)
        amp = 0.5 * (self.high_w - self.low_w)
        return mid + amp * math.cos(2.0 * math.pi * phase)


@dataclass(frozen=True)
class PolicySpec:
    """Which controller to run, and how it senses and reacts.

    Attributes:
        kind: Controller family -- one of :data:`POLICY_KINDS`.
        budget: The :class:`BudgetSchedule` to track.
        interval_s: Nominal decision cadence.  The runtime jitters each
            tick by +/-10% from the keyed ``policy.interval`` stream so
            decisions do not phase-lock with device waves.
        window_s: Trailing rail-power averaging window for the sensed
            mean.  Must span at least one decision interval.
        gain: Proportional gain of the feedback controller (watts of
            set-point motion per watt of budget error).
        integral_gain: Integral gain of the feedback controller.
        hysteresis_w: Ladder guard band: a rung is climbed only once the
            budget clears it by this margin.
        slo_p99_s: Optional p99 latency SLO checked post-hoc by the
            ``slo_adherence`` invariant.
        settle_intervals: Decision ticks the validator grants the
            controller to converge after a budget step before holding
            the measured mean to the budget.
        sample_limit: Cap on retained ``(t, budget, target, measured)``
            samples; older samples are decimated by stride doubling.
    """

    kind: str
    budget: BudgetSchedule
    interval_s: float = 2e-3
    window_s: float = 4e-3
    gain: float = 0.6
    integral_gain: float = 0.2
    hysteresis_w: float = 0.25
    slo_p99_s: Optional[float] = None
    settle_intervals: int = 6
    sample_limit: int = 512

    def __post_init__(self) -> None:
        if self.kind not in POLICY_KINDS:
            raise ValueError(
                f"unknown policy kind {self.kind!r}; "
                f"expected one of {POLICY_KINDS}"
            )
        if not isinstance(self.budget, BudgetSchedule):
            raise TypeError(
                f"budget must be a BudgetSchedule, got {self.budget!r}"
            )
        if not self.interval_s > 0:
            raise ValueError(
                f"interval_s must be positive, got {self.interval_s!r}"
            )
        if self.window_s < self.interval_s:
            raise ValueError(
                f"window_s ({self.window_s!r}) must be >= interval_s "
                f"({self.interval_s!r}): a shorter window would let "
                "decisions alias unobserved intervals"
            )
        if self.gain < 0 or self.integral_gain < 0:
            raise ValueError("feedback gains must be non-negative")
        if self.hysteresis_w < 0:
            raise ValueError(
                f"hysteresis_w must be >= 0, got {self.hysteresis_w!r}"
            )
        if self.slo_p99_s is not None and not self.slo_p99_s > 0:
            raise ValueError(
                f"slo_p99_s must be positive, got {self.slo_p99_s!r}"
            )
        if self.settle_intervals < 0:
            raise ValueError(
                f"settle_intervals must be >= 0, got {self.settle_intervals!r}"
            )
        if self.sample_limit < 16:
            raise ValueError(
                f"sample_limit must be >= 16, got {self.sample_limit!r}"
            )

    def describe(self) -> str:
        """Short human-readable tag (used by ``ExperimentConfig.describe``)."""
        budget = self.budget
        return (
            f"{self.kind}[{budget.shape} "
            f"{budget.low_w:.2f}-{budget.high_w:.2f}W]"
        )
