"""The three controller families, as pure decision functions.

Each controller is constructed with the actuator's physical range
(``floor_w``/``ceiling_w``/``rungs``, discovered by the runtime from the
device catalog) and a :class:`~repro.policy.spec.PolicySpec`, and then
makes decisions purely from :class:`~repro.policy.api.PolicyObservation`
values -- no device access, no RNG, no wall clock.  See
:mod:`repro.policy.api` for why purity is the load-bearing property.

Taxonomy (DESIGN.md SS12):

- :class:`StaticCapPolicy` -- the do-no-harm baseline: pin the target to
  the schedule's *tightest* budget so the device is safe at every
  instant, forfeiting all the headroom the generous phases offer.
- :class:`FeedbackBudgetPolicy` -- PI feedback on the budget error,
  clamped so the *commanded* target can never exceed the instantaneous
  budget.  Harvests the dynamic range; pays convergence lag after steps.
- :class:`HysteresisLadderPolicy` -- discrete rung climbing with a guard
  band, modeling a controller restricted to the device's native power
  states; trades tracking granularity for actuation stability.
"""

from __future__ import annotations

from repro.policy.api import PolicyObservation
from repro.policy.spec import PolicySpec

__all__ = [
    "FeedbackBudgetPolicy",
    "HysteresisLadderPolicy",
    "StaticCapPolicy",
    "UnsafeTrustingPolicy",
    "build_policy",
]


class StaticCapPolicy:
    """Always command the schedule's floor: safe, and harvests nothing.

    This is today's governor behaviour wrapped in the policy interface:
    pick the one cap that satisfies the budget at its tightest and never
    move.  It is the baseline the adaptive controllers are scored
    against.
    """

    def __init__(
        self,
        spec: PolicySpec,
        floor_w: float,
        ceiling_w: float,
        rungs: tuple[float, ...],
    ) -> None:
        self.spec = spec
        self._target_w = max(floor_w, min(spec.budget.min_w, ceiling_w))

    def reset(self) -> None:
        pass  # stateless by design

    def decide(self, obs: PolicyObservation) -> float:
        return self._target_w


class FeedbackBudgetPolicy:
    """PI feedback on the budget error, clamped under the budget.

    Each tick the target moves by ``gain * error + integral_gain *
    integral`` where ``error = budget - measured``; the result is
    clamped into ``[floor_w, min(ceiling_w, budget_w)]``.  The upper
    clamp is the controller's safety contract: the *commanded* target
    never exceeds the instantaneous budget (the property the hypothesis
    suite checks), so any measured overshoot is transient device
    dynamics, not controller intent.  The integral term is clamped to
    the span it could ever usefully command (anti-windup), otherwise a
    long budget-starved phase would slingshot the target at the next
    step up.
    """

    def __init__(
        self,
        spec: PolicySpec,
        floor_w: float,
        ceiling_w: float,
        rungs: tuple[float, ...],
    ) -> None:
        self.spec = spec
        self._floor_w = floor_w
        self._ceiling_w = ceiling_w
        span = max(ceiling_w - floor_w, 1e-9)
        self._integral_limit = span / max(spec.integral_gain, 1e-9)
        self._target_w: float | None = None
        self._integral = 0.0

    def reset(self) -> None:
        self._target_w = None
        self._integral = 0.0

    def decide(self, obs: PolicyObservation) -> float:
        upper = min(self._ceiling_w, obs.budget_w)
        if self._target_w is None:
            # First tick: start at the budget (clamped), not the floor,
            # so a generous phase is harvested immediately.
            self._target_w = max(self._floor_w, min(upper, upper))
            return self._target_w
        error = obs.budget_w - obs.measured_w
        self._integral += error
        limit = self._integral_limit
        if self._integral > limit:
            self._integral = limit
        elif self._integral < -limit:
            self._integral = -limit
        raw = (
            self._target_w
            + self.spec.gain * error
            + self.spec.integral_gain * self._integral
        )
        self._target_w = max(self._floor_w, min(raw, upper))
        return self._target_w


class HysteresisLadderPolicy:
    """Climb/descend a discrete rung ladder with a guard band.

    Rungs are the device's realizable cap levels in ascending order
    (NVMe power-state max powers; EPC tiers for HDDs).  Descents are
    immediate -- the moment the current rung exceeds the budget the
    controller drops to the highest admissible rung.  Ascents are
    guarded: the next rung is taken only once the budget clears it by
    ``hysteresis_w``, so a budget hovering at a rung boundary cannot
    make the device oscillate between power states.  When no rung fits
    under the budget the floor rung is held: the device simply cannot go
    lower, and the validator treats a floor-pinned target as a
    mechanism limitation rather than a controller violation.
    """

    def __init__(
        self,
        spec: PolicySpec,
        floor_w: float,
        ceiling_w: float,
        rungs: tuple[float, ...],
    ) -> None:
        if not rungs:
            raise ValueError("ladder policy needs at least one rung")
        self.spec = spec
        self._rungs = tuple(sorted(rungs))
        self._index: int | None = None

    def reset(self) -> None:
        self._index = None

    def _highest_admissible(self, budget_w: float) -> int:
        index = 0
        for i, rung in enumerate(self._rungs):
            if rung <= budget_w:
                index = i
        return index

    def decide(self, obs: PolicyObservation) -> float:
        rungs = self._rungs
        if self._index is None:
            self._index = self._highest_admissible(obs.budget_w)
            return rungs[self._index]
        if rungs[self._index] > obs.budget_w:
            self._index = self._highest_admissible(obs.budget_w)
        elif (
            self._index + 1 < len(rungs)
            and rungs[self._index + 1] + self.spec.hysteresis_w <= obs.budget_w
        ):
            self._index += 1
        return rungs[self._index]


class UnsafeTrustingPolicy:
    """Deliberately broken: trusts the sensor, skips the budget clamp.

    The chaos campaign's seeded-violation fixture (kind ``"unsafe"``,
    excluded from :data:`~repro.policy.spec.POLICY_KINDS` so it never
    enters normal grids).  It is the :class:`FeedbackBudgetPolicy`
    without its safety contract: the commanded target is clamped only to
    the actuator's physical range, never to the instantaneous budget.
    With a clean meter the feedback loop happens to settle near the
    budget; feed it a low-reading sensor (``sensor:bias=-1.5``) and it
    integrates the phantom headroom straight past the budget -- exactly
    the violation ``budget_safety_under_faults`` exists to catch, and
    the case that proves the campaign harness can find and shrink one.
    """

    def __init__(
        self,
        spec: PolicySpec,
        floor_w: float,
        ceiling_w: float,
        rungs: tuple[float, ...],
    ) -> None:
        self.spec = spec
        self._floor_w = floor_w
        self._ceiling_w = ceiling_w
        self._target_w: float | None = None

    def reset(self) -> None:
        self._target_w = None

    def decide(self, obs: PolicyObservation) -> float:
        if self._target_w is None:
            self._target_w = max(
                self._floor_w, min(obs.budget_w, self._ceiling_w)
            )
            return self._target_w
        raw = self._target_w + self.spec.gain * (
            obs.budget_w - obs.measured_w
        )
        # No min(..., budget_w) clamp: the bug under test.
        self._target_w = max(self._floor_w, min(raw, self._ceiling_w))
        return self._target_w


_CONTROLLERS = {
    "static": StaticCapPolicy,
    "feedback": FeedbackBudgetPolicy,
    "ladder": HysteresisLadderPolicy,
    "unsafe": UnsafeTrustingPolicy,
}


def build_policy(
    spec: PolicySpec,
    floor_w: float,
    ceiling_w: float,
    rungs: tuple[float, ...],
):
    """Instantiate the controller named by ``spec.kind``."""
    try:
        cls = _CONTROLLERS[spec.kind]
    except KeyError:
        raise ValueError(
            f"unknown policy kind {spec.kind!r}; "
            f"expected one of {tuple(_CONTROLLERS)}"
        ) from None
    return cls(spec, floor_w, ceiling_w, rungs)
