"""The sense/decide/actuate contract between controllers and devices.

The split of responsibilities:

- The **runtime** (:mod:`repro.policy.runtime`) owns the device: it
  senses (trailing rail-power mean, queue depth), packages a
  :class:`PolicyObservation`, and actuates whatever target the
  controller returns through the device's own mechanisms (NVMe
  power-state ceiling / governor cap for SSDs, EPC idle conditions for
  HDDs).
- A **controller** (anything satisfying :class:`PolicyAPI`) is a pure
  decision function with internal state but *no* device access and *no*
  RNG: given the same observation sequence it must emit the same target
  sequence.  All randomness in the policy loop lives in the runtime's
  keyed ``policy.*`` streams.

That purity is what makes the determinism story small enough to test:
the subprocess determinism suite only has to pin the runtime's sensing
cadence, because controllers cannot introduce nondeterminism of their
own.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol

from repro.policy.spec import PolicySpec

__all__ = ["PolicyAPI", "PolicyObservation", "PolicySummary"]


@dataclass(frozen=True)
class PolicyObservation:
    """One sensing snapshot handed to a controller.

    Attributes:
        now: Simulated time of the decision tick, in seconds.
        measured_w: Trailing mean rail power over the spec's window.
        budget_w: The schedule's instantaneous budget at ``now``.
        target_w: The currently commanded target, or ``None`` before the
            first actuation.
        inflight: IOs currently outstanding at the device.
    """

    now: float
    measured_w: float
    budget_w: float
    target_w: Optional[float]
    inflight: int


class PolicyAPI(Protocol):
    """What the runtime requires of a controller."""

    def reset(self) -> None:
        """Clear internal state before a run."""

    def decide(self, obs: PolicyObservation) -> float:
        """Return the power target (watts) to command for ``obs``."""


@dataclass(frozen=True)
class PolicySummary:
    """Post-run record of what a policy saw and did.

    Rides on :class:`~repro.core.experiment.ExperimentResult` (as
    ``result.policy``) so the validate subsystem can replay the budget
    against the decision trail, and studies can score tracking quality.

    Attributes:
        spec: The :class:`PolicySpec` that ran.
        floor_w: Lowest target the device's actuator can realize.
        ceiling_w: Highest target the device's actuator can realize.
        decisions: Total decision ticks taken.
        set_point_changes: Decisions that changed the commanded target
            (and therefore actually touched the device).
        sample_stride: Decimation stride of ``samples``: every retained
            sample is ``stride`` decision ticks after the previous one.
        samples: Retained ``(t, budget_w, target_w, measured_w)``
            tuples, oldest first.
        max_overshoot_w: Largest observed excess of the measured mean
            over the instantaneous budget (0 if never exceeded).
        degraded_fraction: Fraction of decision ticks spent in watchdog
            safe mode (0.0 when no watchdog was armed).
        watchdog_trips: Safe-mode entries during the run.
        watchdog_episodes: ``(t_enter, t_exit_or_None, reason)`` per
            safe-mode episode; ``t_exit`` is ``None`` if the run ended
            still degraded.
        safe_cap_w: The static cap safe mode pins, or ``None`` when no
            watchdog was armed.
    """

    spec: PolicySpec
    floor_w: float
    ceiling_w: float
    decisions: int
    set_point_changes: int
    sample_stride: int
    samples: tuple[tuple[float, float, float, float], ...]
    max_overshoot_w: float
    degraded_fraction: float = 0.0
    watchdog_trips: int = 0
    watchdog_episodes: tuple = ()
    safe_cap_w: Optional[float] = None

    def mean_abs_error_w(self) -> float:
        """Mean |measured - budget| over the retained samples."""
        if not self.samples:
            return 0.0
        total = sum(abs(m - b) for (_t, b, _tg, m) in self.samples)
        return total / len(self.samples)

    def describe(self) -> str:
        return (
            f"{self.spec.describe()}: {self.decisions} decisions, "
            f"{self.set_point_changes} set-point changes, "
            f"tracking error {self.mean_abs_error_w():.3f}W"
        )
