"""Safe-mode watchdog: the last line of defence for a lied-to controller.

A controller whose meter or actuator has failed can command anything --
the watchdog is the small, dumb supervisor that notices three symptom
classes and latches safe mode:

- **stale**: the sensor reading's age exceeds ``stale_after_s`` (meter
  dropout -- no new samples are arriving);
- **frozen**: ``freeze_ticks`` consecutive bit-identical readings (a
  meter that latched a value but still claims freshness);
- **breach / no_response**: measured power exceeds the budget
  (``breach``) or the commanded target (``no_response``) by more than
  ``breach_w`` for ``breach_ticks`` consecutive decisions -- either the
  controller lost tracking or its commands stopped landing.

Safe mode means the runtime stops consulting the controller and pins the
tightest sustainable static cap (``safe_cap_w``, never above the
schedule's minimum budget) every tick -- re-commanded unconditionally so
a lossy actuator eventually applies it.  After ``rearm_ticks``
consecutive healthy ticks the watchdog re-arms: the runtime resets the
controller and resumes normal control.

The watchdog is pure bookkeeping over values the runtime already has --
no RNG, no engine access, no tracer -- so it cannot perturb a run's
event ordering; it only changes which cap gets commanded.  It is
imported lazily by the runtime only when ``PolicySpec.watchdog`` is set
(the ``bench_chaos_overhead`` gate holds the watchdog-off path to
never-imported).
"""

from __future__ import annotations

from typing import Optional

from repro.policy.spec import WatchdogSpec

__all__ = ["Watchdog"]


class Watchdog:
    """Detector state machine for one :class:`PolicyRuntime`.

    Args:
        spec: Detector tuning.
        safe_cap_w: The cap to pin while degraded (the runtime computes
            the tightest sustainable value: schedule minimum clamped to
            the actuator range).
    """

    def __init__(self, spec: WatchdogSpec, safe_cap_w: float) -> None:
        self.spec = spec
        self.safe_cap_w = safe_cap_w
        self.degraded = False
        self.trips = 0
        self.degraded_ticks = 0
        self.total_ticks = 0
        self.last_reason: Optional[str] = None
        #: ``[t_enter, t_exit_or_None, reason]`` per safe-mode episode.
        self.episodes: list[list] = []
        self._freeze_count = 0
        self._last_measured: Optional[float] = None
        self._breach_count = 0
        self._healthy_count = 0

    def step(
        self,
        now: float,
        *,
        age_s: float,
        measured_w: float,
        budget_w: float,
        target_w: Optional[float],
    ) -> Optional[str]:
        """Advance one decision tick; returns ``"degrade"``, ``"rearm"``
        or ``None`` (no transition)."""
        spec = self.spec
        self.total_ticks += 1

        stale = age_s > spec.stale_after_s
        if (
            self._last_measured is not None
            and measured_w == self._last_measured
        ):
            self._freeze_count += 1
        else:
            self._freeze_count = 0
        self._last_measured = measured_w
        # freeze_ticks identical *pairs* means freeze_ticks+1 readings;
        # counting pairs keeps the threshold meaning "this many
        # consecutive ticks confirmed the value never moved".
        frozen = self._freeze_count >= spec.freeze_ticks

        breach_reason = None
        if measured_w > budget_w + spec.breach_w:
            breach_reason = "breach"
        elif target_w is not None and measured_w > target_w + spec.breach_w:
            breach_reason = "no_response"
        if breach_reason is not None:
            self._breach_count += 1
        else:
            self._breach_count = 0
        breached = self._breach_count >= spec.breach_ticks

        result: Optional[str] = None
        if self.degraded:
            healthy = (
                not stale
                and not frozen
                and measured_w
                <= max(budget_w, self.safe_cap_w) + spec.breach_w
            )
            if healthy:
                self._healthy_count += 1
            else:
                self._healthy_count = 0
            if self._healthy_count >= spec.rearm_ticks:
                self.degraded = False
                self._healthy_count = 0
                self._freeze_count = 0
                self._breach_count = 0
                self.episodes[-1][1] = now
                result = "rearm"
        elif stale or frozen or breached:
            if stale:
                reason = "stale"
            elif frozen:
                reason = "frozen"
            else:
                reason = breach_reason
            self.degraded = True
            self.trips += 1
            self.last_reason = reason
            self.episodes.append([now, None, reason])
            self._healthy_count = 0
            result = "degrade"
        if self.degraded:
            self.degraded_ticks += 1
        return result

    @property
    def degraded_fraction(self) -> float:
        """Fraction of decision ticks spent in safe mode."""
        if self.total_ticks == 0:
            return 0.0
        return self.degraded_ticks / self.total_ticks
