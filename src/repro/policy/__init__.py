"""Online power-adaptive control policies (paper SS5's open question).

The measurement study showed *mechanisms* -- NVMe power states, ALPM,
EPC -- expose a real dynamic range; this package asks whether an online
*controller* can harvest it, and at what tail-latency cost:

- :mod:`repro.policy.spec` -- :class:`BudgetSchedule` (time-varying
  power budgets: constant / step / diurnal) and :class:`PolicySpec`
  (controller choice + tuning), both hashable config values.
- :mod:`repro.policy.api` -- the :class:`PolicyAPI` sense/decide
  protocol, :class:`PolicyObservation`, and the post-run
  :class:`PolicySummary`.
- :mod:`repro.policy.controllers` -- :class:`StaticCapPolicy`,
  :class:`FeedbackBudgetPolicy`, :class:`HysteresisLadderPolicy`, and
  the :func:`build_policy` factory.
- :mod:`repro.policy.runtime` -- :class:`PolicyRuntime`, the in-engine
  loop wiring sensing and actuation to a device (imported lazily by the
  experiment driver; inert runs never load it).
- :mod:`repro.policy.watchdog` -- the safe-mode :class:`Watchdog`
  armed by ``PolicySpec.watchdog`` (imported lazily by the runtime;
  watchdog-off runs never load it).

Attach a policy with ``ExperimentConfig(policy=PolicySpec(...))`` or
sweep-wide via ``ExecutionOptions(policy=...)``; score it with the
``repro policy`` CLI subcommand / :mod:`repro.studies.policy_tracking`.
"""

from repro.policy.api import PolicyAPI, PolicyObservation, PolicySummary
from repro.policy.controllers import (
    FeedbackBudgetPolicy,
    HysteresisLadderPolicy,
    StaticCapPolicy,
    UnsafeTrustingPolicy,
    build_policy,
)
from repro.policy.spec import (
    POLICY_KINDS,
    BudgetSchedule,
    PolicySpec,
    WatchdogSpec,
)

__all__ = [
    "POLICY_KINDS",
    "BudgetSchedule",
    "FeedbackBudgetPolicy",
    "HysteresisLadderPolicy",
    "PolicyAPI",
    "PolicyObservation",
    "PolicySpec",
    "PolicySummary",
    "StaticCapPolicy",
    "UnsafeTrustingPolicy",
    "WatchdogSpec",
    "build_policy",
]
