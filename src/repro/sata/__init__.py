"""SATA host control: link power management and ATA power commands.

- :mod:`~repro.sata.alpm` -- Aggressive Link Power Management, the
  mechanism the paper uses to put the 860 EVO into SLUMBER (Fig. 7),
  including the transition power transient.
- :mod:`~repro.sata.ata` -- the ATA power command set the paper exercises
  on the HDD: STANDBY IMMEDIATE (spin down), IDLE IMMEDIATE (spin up) and
  CHECK POWER MODE.
"""

from repro.sata.alpm import AlpmController, AlpmTransition
from repro.sata.ata import AtaPowerMode, check_power_mode, idle_immediate, standby_immediate

__all__ = [
    "AlpmController",
    "AlpmTransition",
    "AtaPowerMode",
    "check_power_mode",
    "idle_immediate",
    "standby_immediate",
]
