"""Aggressive Link Power Management (ALPM).

ALPM lets the host place a SATA link into PARTIAL or SLUMBER.  On the
860 EVO the paper measures idle power dropping from 0.35 W to 0.17 W in
SLUMBER, with the transition completing inside 0.5 s and drawing *extra*
power while it runs (Fig. 7's bumps at the 200 ms / 400 ms command marks).

The transient exists because entering a low-power link state is not free:
the device flushes volatile state and retrains/parks the PHY.  We model it
as a configurable rectangle of additional draw during the transition.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.link import LinkPowerMode
from repro.devices.ssd import SimulatedSSD
from repro.obs.events import EventKind

__all__ = ["AlpmController", "AlpmTransition"]


@dataclass(frozen=True)
class AlpmTransition:
    """Power transient of one link-state transition.

    Attributes:
        duration_s: Transition length (paper: EVO completes within 0.5 s).
        extra_power_w: Additional draw while the transition runs.
    """

    duration_s: float
    extra_power_w: float

    def __post_init__(self) -> None:
        if self.duration_s < 0 or self.extra_power_w < 0:
            raise ValueError("transition parameters must be non-negative")


#: Defaults calibrated to the Fig. 7 traces.
ENTER_SLUMBER = AlpmTransition(duration_s=0.15, extra_power_w=0.60)
EXIT_SLUMBER = AlpmTransition(duration_s=0.25, extra_power_w=0.95)
ENTER_PARTIAL = AlpmTransition(duration_s=0.01, extra_power_w=0.20)
EXIT_PARTIAL = AlpmTransition(duration_s=0.01, extra_power_w=0.20)


class AlpmController:
    """Host-side ALPM for one SATA device.

    >>> # typical use inside a simulation process:
    >>> # yield from alpm.set_mode(LinkPowerMode.SLUMBER)
    """

    def __init__(
        self,
        device: SimulatedSSD,
        enter_slumber: AlpmTransition = ENTER_SLUMBER,
        exit_slumber: AlpmTransition = EXIT_SLUMBER,
        enter_partial: AlpmTransition = ENTER_PARTIAL,
        exit_partial: AlpmTransition = EXIT_PARTIAL,
    ) -> None:
        self.device = device
        self._transitions = {
            (LinkPowerMode.ACTIVE, LinkPowerMode.SLUMBER): enter_slumber,
            (LinkPowerMode.SLUMBER, LinkPowerMode.ACTIVE): exit_slumber,
            (LinkPowerMode.ACTIVE, LinkPowerMode.PARTIAL): enter_partial,
            (LinkPowerMode.PARTIAL, LinkPowerMode.ACTIVE): exit_partial,
            (LinkPowerMode.PARTIAL, LinkPowerMode.SLUMBER): enter_slumber,
            (LinkPowerMode.SLUMBER, LinkPowerMode.PARTIAL): exit_slumber,
        }
        self.transitions_completed = 0

    @property
    def mode(self) -> LinkPowerMode:
        return self.device.link.mode

    def set_mode(self, mode: LinkPowerMode):
        """Process generator: transition the link to ``mode``.

        On the 860 EVO the PHY saving (ACTIVE 0.19 W -> SLUMBER 0.01 W)
        accounts for the measured 0.35 W -> 0.17 W idle drop.
        """
        current = self.device.link.mode
        if mode is current:
            return
        transition = self._transitions[(current, mode)]
        engine = self.device.engine
        rail = self.device.rail
        tracer = engine.tracer
        component = f"{self.device.name}.alpm"
        if tracer.enabled:
            tracer.emit(
                EventKind.ALPM_START,
                component,
                from_mode=current.value,
                to_mode=mode.value,
                extra_w=transition.extra_power_w,
            )
        faults = self.device.faults
        if faults.enabled:
            # A stuck link transition re-pays the transient (time and the
            # extra draw) per failed PHY handshake before it completes.
            stuck = faults.transition_stuck(component, "alpm")
            for attempt in range(1, stuck + 1):
                faults.note_retry("stuck_transition", component, attempt)
                if transition.duration_s > 0:
                    rail.add_draw("alpm.transition", transition.extra_power_w)
                    try:
                        yield engine.timeout(transition.duration_s)
                    finally:
                        rail.add_draw(
                            "alpm.transition", -transition.extra_power_w
                        )
        if transition.duration_s > 0:
            rail.add_draw("alpm.transition", transition.extra_power_w)
            try:
                yield engine.timeout(transition.duration_s)
            finally:
                rail.add_draw("alpm.transition", -transition.extra_power_w)
        self.device.link.set_mode(mode)
        self.transitions_completed += 1
        if tracer.enabled:
            tracer.emit(EventKind.ALPM_END, component, mode=mode.value)
