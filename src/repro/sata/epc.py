"""ATA Extended Power Conditions (EPC).

The EPC feature set gives the host explicit control over the HDD's idle
sub-states -- the shallow rungs between full idle and standby that the
paper's section 2 alludes to as "low-power idle modes".  On the modelled
Exos-class drive:

==========  ============  ===================  =================
condition   power         saving vs idle       recovery cost
==========  ============  ===================  =================
idle_a      3.76 W        --                   none
idle_b      ~3.21 W       heads unloaded       ~0.4 s head reload
idle_c      ~2.41 W       + reduced rpm        ~2 s re-spin
standby_z   1.10 W        spindle stopped      ~8 s spin-up
==========  ============  ===================  =================

These rungs matter for power-adaptive design: they let a redirection
policy trade less saving for a much smaller wake penalty than full
standby (cf. the paper's QoS discussion).
"""

from __future__ import annotations

from repro.devices.hdd_drive import IdleCondition, SimulatedHDD

__all__ = [
    "EPC_CONDITIONS",
    "set_power_condition",
    "standby_z",
]

#: EPC condition identifiers (ATA/ACS naming) -> device idle condition.
EPC_CONDITIONS: dict[str, IdleCondition] = {
    "idle_a": IdleCondition.IDLE_A,
    "idle_b": IdleCondition.IDLE_B,
    "idle_c": IdleCondition.IDLE_C,
}


def set_power_condition(device: SimulatedHDD, condition: str) -> None:
    """EPC SET POWER CONDITION for the idle sub-states.

    Use :func:`standby_z` for the spindle-stopping condition (it must
    flush the cache and therefore takes simulated time).

    Raises:
        ValueError: For unknown condition names.
    """
    try:
        idle = EPC_CONDITIONS[condition]
    except KeyError:
        raise ValueError(
            f"unknown EPC condition {condition!r}; "
            f"known: {sorted(EPC_CONDITIONS)} (or use standby_z())"
        ) from None
    device.set_idle_condition(idle)


def standby_z(device: SimulatedHDD):
    """Process generator: EPC Standby_Z (equivalent to STANDBY IMMEDIATE)."""
    yield from device.enter_standby()
