"""ATA power command set for the HDD.

The three commands the paper's HDD methodology relies on:

- ``STANDBY IMMEDIATE``: flush the write cache and spin the platters down
  (paper: saves 2.66 W against idle, but recovery takes seconds).
- ``IDLE IMMEDIATE``: spin back up.
- ``CHECK POWER MODE``: report the current power condition.
"""

from __future__ import annotations

import enum

from repro.devices.hdd_drive import SimulatedHDD
from repro.hdd.spindle import SpindleState

__all__ = ["AtaPowerMode", "check_power_mode", "idle_immediate", "standby_immediate"]


class AtaPowerMode(enum.Enum):
    """CHECK POWER MODE return values (ATA/ACS nomenclature)."""

    ACTIVE_OR_IDLE = 0xFF
    STANDBY = 0x00
    TRANSITIONING = 0x80  # not a standard code; exposed for observability


def check_power_mode(device: SimulatedHDD) -> AtaPowerMode:
    """ATA CHECK POWER MODE."""
    state = device.spindle.state
    if state is SpindleState.SPINNING:
        return AtaPowerMode.ACTIVE_OR_IDLE
    if state is SpindleState.STANDBY:
        return AtaPowerMode.STANDBY
    return AtaPowerMode.TRANSITIONING


def standby_immediate(device: SimulatedHDD):
    """Process generator: ATA STANDBY IMMEDIATE.

    Flushes cached writes to media, then halts rotation.  Returns once the
    drive reports standby (or stays up because new IO arrived mid-flush).
    """
    yield from device.enter_standby()


def idle_immediate(device: SimulatedHDD):
    """Process generator: ATA IDLE IMMEDIATE (spin the drive back up)."""
    yield from device.exit_standby()
