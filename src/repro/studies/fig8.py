"""Figure 8: random-write power and throughput as chunk size varies (QD64).

Across all four devices, at queue depth 64:

(a) average power rises with chunk size -- 4 KiB chunks consume up to ~30 %
    less power than 2 MiB chunks (more of the time is spent in per-command
    controller work, less in the power-hungry array);
(b) throughput rises with chunk size -- 4 KiB chunks lose up to ~50 % of
    throughput (command processing becomes the bottleneck).

Chunk size is therefore one axis of the "IO shaping" control the paper
proposes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.reporting import format_table
from repro.iogen.spec import IoPattern, PAPER_CHUNK_SIZES
from repro.studies.common import DEFAULT, StudyScale, run_point

__all__ = ["Fig8Result", "render", "run"]

DEVICES = ("ssd2", "ssd1", "ssd3", "hdd")
QUEUE_DEPTH = 64


@dataclass(frozen=True)
class Fig8Result:
    """Per-device power and throughput series over :attr:`chunk_sizes`."""

    chunk_sizes: tuple[int, ...]
    power_w: dict[str, tuple[float, ...]]
    throughput_mib: dict[str, tuple[float, ...]]

    def power_saving_small_chunks(self, device: str) -> float:
        """Fractional power saving of the 4 KiB point vs the 2 MiB point."""
        series = self.power_w[device]
        return 1.0 - series[0] / series[-1]

    def throughput_loss_small_chunks(self, device: str) -> float:
        """Fractional throughput loss of 4 KiB vs 2 MiB."""
        series = self.throughput_mib[device]
        return 1.0 - series[0] / series[-1]


def run(scale: StudyScale = DEFAULT) -> Fig8Result:
    chunks = tuple(PAPER_CHUNK_SIZES)
    power: dict[str, tuple[float, ...]] = {}
    tput: dict[str, tuple[float, ...]] = {}
    for device in DEVICES:
        p_series, t_series = [], []
        for block_size in chunks:
            result = run_point(
                device, IoPattern.RANDWRITE, block_size, QUEUE_DEPTH, scale=scale
            )
            p_series.append(result.mean_power_w)
            t_series.append(result.throughput_mib_s)
        power[device] = tuple(p_series)
        tput[device] = tuple(t_series)
    return Fig8Result(chunk_sizes=chunks, power_w=power, throughput_mib=tput)


def render(result: Fig8Result) -> str:
    power_rows = []
    tput_rows = []
    for i, chunk in enumerate(result.chunk_sizes):
        label = f"{chunk // 1024} KiB"
        power_rows.append([label] + [result.power_w[d][i] for d in DEVICES])
        tput_rows.append([label] + [result.throughput_mib[d][i] for d in DEVICES])
    headers = ["Chunk"] + [d.upper() for d in DEVICES]
    blocks = [
        format_table(
            headers,
            power_rows,
            title="Figure 8a. Random-write average power (W), QD64.",
        ),
        format_table(
            headers,
            tput_rows,
            title="Figure 8b. Random-write throughput (MiB/s), QD64.",
        ),
    ]
    savings = max(result.power_saving_small_chunks(d) for d in ("ssd1", "ssd2"))
    losses = max(result.throughput_loss_small_chunks(d) for d in ("ssd1", "ssd2"))
    blocks.append(
        f"4 KiB vs 2 MiB on the NVMe SSDs: up to {savings:.0%} less power "
        f"(paper: up to 30%), up to {losses:.0%} less throughput "
        f"(paper: up to 50%)"
    )
    return "\n\n".join(blocks)


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(render(run()))
