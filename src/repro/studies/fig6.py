"""Figure 6: SSD2 random-read latency under power states (queue depth 1).

The paper's "non-trade-off": read latency shows *no* noticeable difference
between power states, average or p99, because a single-depth read stream
never drives the device anywhere near a cap.  In the model this is
structural -- array reads are not power-governed (their draw fits under
every operational cap), so the three state curves coincide exactly up to
measurement noise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.reporting import format_table
from repro.iogen.spec import IoPattern, PAPER_CHUNK_SIZES
from repro.studies.common import DEFAULT, StudyScale, run_point

__all__ = ["Fig6Result", "render", "run"]

DEVICE = "ssd2"
POWER_STATES = (0, 1, 2)


@dataclass(frozen=True)
class Fig6Result:
    """Latency series per power state over :attr:`chunk_sizes` (seconds)."""

    chunk_sizes: tuple[int, ...]
    avg_latency: dict[int, tuple[float, ...]]
    p99_latency: dict[int, tuple[float, ...]]

    @property
    def worst_deviation(self) -> float:
        """Largest |ratio - 1| of any capped state vs ps0 (avg or p99)."""
        worst = 0.0
        for series in (self.avg_latency, self.p99_latency):
            for ps in POWER_STATES[1:]:
                for v, b in zip(series[ps], series[0]):
                    worst = max(worst, abs(v / b - 1.0))
        return worst


def run(scale: StudyScale = DEFAULT) -> Fig6Result:
    chunks = tuple(PAPER_CHUNK_SIZES)
    avg: dict[int, list[float]] = {ps: [] for ps in POWER_STATES}
    p99: dict[int, list[float]] = {ps: [] for ps in POWER_STATES}
    for ps in POWER_STATES:
        for block_size in chunks:
            result = run_point(
                DEVICE,
                IoPattern.RANDREAD,
                block_size,
                iodepth=1,
                power_state=ps,
                scale=scale,
            )
            stats = result.latency()
            avg[ps].append(stats.mean)
            p99[ps].append(stats.p99)
    return Fig6Result(
        chunk_sizes=chunks,
        avg_latency={ps: tuple(avg[ps]) for ps in POWER_STATES},
        p99_latency={ps: tuple(p99[ps]) for ps in POWER_STATES},
    )


def render(result: Fig6Result) -> str:
    blocks = []
    for panel, series, name in (
        ("a", result.avg_latency, "average"),
        ("b", result.p99_latency, "99th percentile"),
    ):
        rows = []
        for i, chunk in enumerate(result.chunk_sizes):
            base = series[0][i]
            rows.append(
                [f"{chunk // 1024} KiB"]
                + [series[ps][i] / base for ps in POWER_STATES]
            )
        blocks.append(
            format_table(
                ["Chunk", "ps0 (norm)", "ps1 (norm)", "ps2 (norm)"],
                rows,
                title=(
                    f"Figure 6{panel}. SSD2 random-read {name} latency, "
                    "normalized to ps0 (QD1)."
                ),
            )
        )
    blocks.append(
        f"Worst deviation from ps0 across states: "
        f"{result.worst_deviation:.1%} (paper: no noticeable difference)"
    )
    return "\n\n".join(blocks)


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(render(run()))
