"""Figure 5: SSD2 random-write latency under power states (queue depth 1).

Latencies normalized to ps0, per chunk size.  The paper's observations:

- average latency inflates with the cap by up to ~2x,
- tail (99th percentile) latency inflates dramatically -- up to 6.19x at
  ps2 -- because device housekeeping bursts compete with the host for the
  throttled program budget,
- small chunks are unaffected (the capped flush still keeps up).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.reporting import format_table
from repro.iogen.spec import IoPattern, PAPER_CHUNK_SIZES
from repro.studies.common import DEFAULT, StudyScale, run_point

__all__ = ["Fig5Result", "render", "run"]

DEVICE = "ssd2"
POWER_STATES = (0, 1, 2)


@dataclass(frozen=True)
class Fig5Result:
    """Latency series per power state over :attr:`chunk_sizes` (seconds)."""

    chunk_sizes: tuple[int, ...]
    avg_latency: dict[int, tuple[float, ...]]
    p99_latency: dict[int, tuple[float, ...]]

    def normalized(self, series: dict[int, tuple[float, ...]], ps: int) -> tuple[float, ...]:
        """Series of ``ps`` divided by ps0, per chunk (the figure's y-axis)."""
        base = series[0]
        return tuple(v / b for v, b in zip(series[ps], base))

    @property
    def max_avg_inflation(self) -> float:
        """Worst avg-latency ratio vs ps0 across states/chunks (paper ~2x)."""
        return max(
            max(self.normalized(self.avg_latency, ps)) for ps in POWER_STATES[1:]
        )

    @property
    def max_p99_inflation(self) -> float:
        """Worst p99 ratio vs ps0 (paper: up to 6.19x)."""
        return max(
            max(self.normalized(self.p99_latency, ps)) for ps in POWER_STATES[1:]
        )


def run(scale: StudyScale = DEFAULT) -> Fig5Result:
    chunks = tuple(PAPER_CHUNK_SIZES)
    avg: dict[int, list[float]] = {ps: [] for ps in POWER_STATES}
    p99: dict[int, list[float]] = {ps: [] for ps in POWER_STATES}
    for ps in POWER_STATES:
        for block_size in chunks:
            result = run_point(
                DEVICE,
                IoPattern.RANDWRITE,
                block_size,
                iodepth=1,
                power_state=ps,
                scale=scale,
                latency_study=True,
            )
            stats = result.latency()
            avg[ps].append(stats.mean)
            p99[ps].append(stats.p99)
    return Fig5Result(
        chunk_sizes=chunks,
        avg_latency={ps: tuple(avg[ps]) for ps in POWER_STATES},
        p99_latency={ps: tuple(p99[ps]) for ps in POWER_STATES},
    )


def render(result: Fig5Result) -> str:
    blocks = []
    for panel, series, name in (
        ("a", result.avg_latency, "Average"),
        ("b", result.p99_latency, "99th percentile"),
    ):
        rows = []
        for i, chunk in enumerate(result.chunk_sizes):
            base = series[0][i]
            rows.append(
                [f"{chunk // 1024} KiB"]
                + [series[ps][i] / base for ps in POWER_STATES]
            )
        blocks.append(
            format_table(
                ["Chunk", "ps0 (norm)", "ps1 (norm)", "ps2 (norm)"],
                rows,
                title=(
                    f"Figure 5{panel}. SSD2 random-write {name.lower()} "
                    "latency, normalized to ps0 (QD1)."
                ),
            )
        )
    blocks.append(
        f"Max inflation: avg {result.max_avg_inflation:.2f}x (paper ~2x), "
        f"p99 {result.max_p99_inflation:.2f}x (paper up to 6.19x)"
    )
    return "\n\n".join(blocks)


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(render(run()))
