"""Chaos resilience study: controller robustness under control-plane faults.

The paper-style close of the control-plane hardening work: sweep the
fault-plan vocabulary (lying/dead meters, lossy/stuck actuators, the
§4.1 governor failure) against every controller family and report, per
controller, how much of the clean run's harvested dynamic range
survives, what the p99 pays, and whether any invariant --
``budget_safety_under_faults`` above all -- broke.  Violating cells are
shrunk to minimal ``--faults`` reproducers.

Thin driver over :mod:`repro.faults.campaign`; the ``repro chaos`` CLI
subcommand calls the same entry points.
"""

from __future__ import annotations

from repro.core.reporting import format_table
from repro.faults.campaign import CampaignResult, run_campaign
from repro.studies.common import DEFAULT, StudyScale

__all__ = ["render", "run"]


def run(
    scale: StudyScale = DEFAULT,
    n_workers: int | None = 1,
    seed: int = 0,
    devices: tuple[str, ...] = ("ssd2",),
    controllers=None,
    budget_cells=None,
    watchdog: bool = True,
    cache_dir=None,
    ledger=None,
) -> CampaignResult:
    """Run the chaos campaign at study scale (see :func:`run_campaign`)."""
    return run_campaign(
        scale=scale,
        devices=devices,
        controllers=controllers,
        budget_cells=budget_cells,
        watchdog=watchdog,
        seed=seed,
        n_workers=n_workers,
        cache_dir=cache_dir,
        ledger=ledger,
    )


def render(result: CampaignResult) -> str:
    rows = [
        [
            controller,
            f"{retained:.1%}",
            f"{blowup:.2f}x",
            violations,
        ]
        for controller, retained, blowup, violations in result.ranking()
    ]
    blocks = [
        format_table(
            ["Controller", "Harvest retained", "Max p99", "Violations"],
            rows,
            title=(
                "Chaos resilience. Harvested-range retention and p99 "
                f"blowup under control-plane faults "
                f"({result.checked} cells, watchdog "
                f"{'armed' if result.watchdog_armed else 'off'})."
            ),
        )
    ]
    if result.reproducers:
        lines = ["minimized reproducers:"]
        for cell, spec in result.reproducers:
            lines.append(
                f"  {cell.device}/{cell.controller} [{cell.plan_name}]: "
                f"--faults '{spec}'"
            )
        blocks.append("\n".join(lines))
    blocks.append(result.validation.render())
    return "\n\n".join(blocks)


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(render(run()))
