"""Figure 3: SSD2 random-write average power under power states.

Average power versus chunk size at (a) queue depth 64 and (b) queue depth
1, for ps0/ps1/ps2.  The paper's observations this reproduces:

- the cap bounds average power (ps1 ~12 W, ps2 ~10 W at deep queues),
- at QD1 the device rarely reaches any cap, so the three curves converge
  at small chunks and separate as chunks grow.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.reporting import ascii_series, format_table
from repro.iogen.spec import IoPattern, PAPER_CHUNK_SIZES
from repro.studies.common import DEFAULT, StudyScale, run_point

__all__ = ["Fig3Result", "render", "run"]

DEVICE = "ssd2"
POWER_STATES = (0, 1, 2)
QUEUE_DEPTHS = (64, 1)


@dataclass(frozen=True)
class Fig3Result:
    """``power_w[(qd, ps)]`` is the series over :attr:`chunk_sizes`."""

    chunk_sizes: tuple[int, ...]
    power_w: dict[tuple[int, int], tuple[float, ...]]
    cap_w: dict[int, float]


def run(scale: StudyScale = DEFAULT) -> Fig3Result:
    chunks = tuple(PAPER_CHUNK_SIZES)
    power: dict[tuple[int, int], tuple[float, ...]] = {}
    for iodepth in QUEUE_DEPTHS:
        for ps in POWER_STATES:
            series = []
            for block_size in chunks:
                result = run_point(
                    DEVICE,
                    IoPattern.RANDWRITE,
                    block_size,
                    iodepth,
                    power_state=ps,
                    scale=scale,
                )
                series.append(result.mean_power_w)
            power[(iodepth, ps)] = tuple(series)
    return Fig3Result(
        chunk_sizes=chunks,
        power_w=power,
        cap_w={0: 25.0, 1: 12.0, 2: 10.0},
    )


def render(result: Fig3Result) -> str:
    blocks = []
    for iodepth in QUEUE_DEPTHS:
        rows = []
        for i, chunk in enumerate(result.chunk_sizes):
            rows.append(
                [f"{chunk // 1024} KiB"]
                + [result.power_w[(iodepth, ps)][i] for ps in POWER_STATES]
            )
        blocks.append(
            format_table(
                ["Chunk", "ps0 (W)", "ps1 (W)", "ps2 (W)"],
                rows,
                title=(
                    f"Figure 3{'a' if iodepth == 64 else 'b'}. SSD2 random-"
                    f"write average power, queue depth {iodepth}."
                ),
            )
        )
        blocks.append(
            ascii_series(
                [c // 1024 for c in result.chunk_sizes],
                list(result.power_w[(iodepth, 0)]),
                label=f"  ps0 power profile (QD{iodepth}):",
            )
        )
    return "\n\n".join(blocks)


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(render(run()))
