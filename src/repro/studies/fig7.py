"""Figure 7: 860 EVO power during ALPM standby transitions.

Two 1-second traces with the ALPM command issued mid-trace:

(a) idle -> standby: the command at 200 ms; power drops from the 0.35 W
    idle level to the 0.17 W SLUMBER level, with a transient bump while the
    transition runs.
(b) standby -> idle: the command at 400 ms; power returns to idle, again
    with a transition transient.

The paper's takeaways this reproduces: standby roughly halves SSD idle
power, and the whole transition completes within 0.5 s.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.devices.catalog import build_device
from repro.devices.link import LinkPowerMode
from repro.power.logger import PowerTrace
from repro.power.meter import MeterConfig, PowerMeter
from repro.sata.alpm import AlpmController
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams

__all__ = ["Fig7Result", "render", "run"]

TRACE_SECONDS = 1.0
ENTER_CMD_AT = 0.2
EXIT_CMD_AT = 0.4


@dataclass(frozen=True)
class Fig7Result:
    """Both transition traces plus the settled levels.

    Attributes:
        enter_trace / exit_trace: 1 kHz measured traces for panels (a)/(b).
        idle_power_w / slumber_power_w: Settled levels (paper: 0.35/0.17).
        enter_settle_s / exit_settle_s: Time from the ALPM command until
            power stays within 10 % of the destination level.
    """

    enter_trace: PowerTrace
    exit_trace: PowerTrace
    idle_power_w: float
    slumber_power_w: float
    enter_settle_s: float
    exit_settle_s: float


def _settle_time(trace: PowerTrace, cmd_at: float, target_w: float) -> float:
    """Time after ``cmd_at`` until the trace stays within 10 % of target."""
    tolerance = 0.1 * target_w
    after = trace.times >= cmd_at
    times, watts = trace.times[after], trace.watts[after]
    outside = np.abs(watts - target_w) > tolerance
    if not outside.any():
        return 0.0
    last_outside = np.flatnonzero(outside)[-1]
    if last_outside + 1 >= len(times):
        return float(times[-1] - cmd_at)
    return float(times[last_outside + 1] - cmd_at)


def _capture(seed: int, scenario: str) -> tuple[PowerTrace, float, float]:
    """Run one transition scenario; returns (trace, level_before, level_after)."""
    engine = Engine()
    rngs = RngStreams(seed)
    device = build_device(engine, "860evo", rng=rngs)
    alpm = AlpmController(device)
    target = (
        LinkPowerMode.SLUMBER if scenario == "enter" else LinkPowerMode.ACTIVE
    )
    cmd_at = ENTER_CMD_AT if scenario == "enter" else EXIT_CMD_AT
    if scenario == "exit":
        # Pre-position in SLUMBER, then reset the clock window by running
        # the preparation before the trace starts.
        prep = engine.process(alpm.set_mode(LinkPowerMode.SLUMBER))
        while prep.is_alive:
            engine.step()
    t0 = engine.now
    engine.call_at(t0 + cmd_at, lambda: engine.process(alpm.set_mode(target)))
    engine.run(until=t0 + TRACE_SECONDS)
    meter = PowerMeter(device.rail, MeterConfig(), rng=rngs.get("meter"))
    trace = meter.measure(t0, t0 + TRACE_SECONDS, label=f"860evo {scenario}")
    # Shift times so the trace starts at 0 like the figure's x-axis.
    trace = PowerTrace(
        times=trace.times - t0,
        watts=trace.watts,
        rail_voltage=trace.rail_voltage,
        sample_rate_hz=trace.sample_rate_hz,
        label=trace.label,
    )
    before = float(trace.window(0.0, cmd_at).watts.mean())
    after = float(trace.window(TRACE_SECONDS - 0.2, TRACE_SECONDS).watts.mean())
    return trace, before, after


def run(seed: int = 0) -> Fig7Result:
    enter_trace, idle_w, slumber_w = _capture(seed, "enter")
    exit_trace, __, idle_after = _capture(seed, "exit")
    return Fig7Result(
        enter_trace=enter_trace,
        exit_trace=exit_trace,
        idle_power_w=(idle_w + idle_after) / 2.0,
        slumber_power_w=slumber_w,
        enter_settle_s=_settle_time(enter_trace, ENTER_CMD_AT, slumber_w),
        exit_settle_s=_settle_time(exit_trace, EXIT_CMD_AT, idle_w),
    )


def render(result: Fig7Result) -> str:
    return "\n".join(
        [
            "Figure 7. 860 EVO power across ALPM standby transitions.",
            (
                f"  idle {result.idle_power_w:.3f} W (paper 0.35), "
                f"slumber {result.slumber_power_w:.3f} W (paper 0.17) -- "
                f"{1 - result.slumber_power_w / result.idle_power_w:.0%} saving"
            ),
            (
                f"  (a) idle->standby: command at {ENTER_CMD_AT * 1e3:.0f} ms, "
                f"settled in {result.enter_settle_s * 1e3:.0f} ms, "
                f"transient peak {result.enter_trace.max():.2f} W"
            ),
            (
                f"  (b) standby->idle: command at {EXIT_CMD_AT * 1e3:.0f} ms, "
                f"settled in {result.exit_settle_s * 1e3:.0f} ms, "
                f"transient peak {result.exit_trace.max():.2f} W"
            ),
            "  (paper: transitions complete within 0.5 s)",
        ]
    )


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(render(run()))
