"""Shared scaling and helpers for the figure drivers.

The paper runs every point for one minute or 4 GiB.  A pure-Python event
simulation reproduces steady-state *rates* from far shorter windows, so the
drivers use scaled stop rules.  HDD points need longer simulated spans than
SSD points (mechanical service times are milliseconds, and write-cache
fill must be excluded from steady state), which is what
:class:`StudyScale` encodes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._units import GiB, MiB
from repro.core.experiment import ExperimentConfig, ExperimentResult, run_experiment
from repro.iogen.spec import IoPattern, JobSpec

__all__ = ["DEFAULT", "QUICK", "StudyScale", "point_config", "run_point"]


@dataclass(frozen=True)
class StudyScale:
    """Stop rules per device class and experiment type.

    ``latency`` variants apply to QD1 latency studies (Figs. 5/6), which
    need enough completions for a stable p99.
    """

    ssd_runtime_s: float = 0.08
    ssd_bytes: int = 48 * MiB
    ssd_latency_runtime_s: float = 0.5
    ssd_latency_bytes: int = 2 * GiB
    hdd_runtime_s: float = 6.0
    hdd_bytes: int = 64 * MiB
    hdd_warmup: float = 0.5
    ssd_warmup: float = 0.25

    def job(
        self,
        pattern: IoPattern,
        block_size: int,
        iodepth: int,
        device: str,
        latency_study: bool = False,
    ) -> JobSpec:
        if device == "hdd":
            runtime, nbytes = self.hdd_runtime_s, self.hdd_bytes
        elif latency_study:
            runtime, nbytes = self.ssd_latency_runtime_s, self.ssd_latency_bytes
        else:
            runtime, nbytes = self.ssd_runtime_s, self.ssd_bytes
        return JobSpec(
            pattern=pattern,
            block_size=block_size,
            iodepth=iodepth,
            runtime_s=runtime,
            size_limit_bytes=nbytes,
        )

    def warmup(self, device: str) -> float:
        return self.hdd_warmup if device == "hdd" else self.ssd_warmup


#: Benchmark-scale runs (what EXPERIMENTS.md records).
DEFAULT = StudyScale()

#: CI-speed runs for integration tests: coarser but same mechanisms.
#: The byte budget must stay well above the SSD write buffer (8 MiB on the
#: NVMe presets) so steady-state ack rate, not buffer fill, dominates the
#: measurement window.
QUICK = StudyScale(
    ssd_runtime_s=0.05,
    ssd_bytes=32 * MiB,
    ssd_latency_runtime_s=0.15,
    ssd_latency_bytes=GiB // 2,
    hdd_runtime_s=2.0,
    hdd_bytes=24 * MiB,
    ssd_warmup=0.3,
)


def point_config(
    device: str,
    pattern: IoPattern,
    block_size: int,
    iodepth: int,
    power_state: int | None = None,
    scale: StudyScale = DEFAULT,
    latency_study: bool = False,
    seed: int = 0,
    keep_trace: bool = False,
) -> ExperimentConfig:
    """Config for one figure data point, with the study's scaling conventions.

    Split out from :func:`run_point` so drivers can build whole batches of
    configs and hand them to :func:`repro.core.parallel.run_configs`.
    """
    return ExperimentConfig(
        device=device,
        job=scale.job(pattern, block_size, iodepth, device, latency_study),
        power_state=power_state,
        warmup_fraction=scale.warmup(device),
        seed=seed,
        keep_trace=keep_trace,
    )


def run_point(
    device: str,
    pattern: IoPattern,
    block_size: int,
    iodepth: int,
    power_state: int | None = None,
    scale: StudyScale = DEFAULT,
    latency_study: bool = False,
    seed: int = 0,
    keep_trace: bool = False,
) -> ExperimentResult:
    """Run one figure data point with the study's scaling conventions."""
    return run_experiment(
        point_config(
            device,
            pattern,
            block_size,
            iodepth,
            power_state=power_state,
            scale=scale,
            latency_study=latency_study,
            seed=seed,
            keep_trace=keep_trace,
        )
    )
