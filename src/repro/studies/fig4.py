"""Figure 4: SSD2 throughput under power states (queue depth 64).

(a) Sequential writes collapse under the caps -- the paper reports ps1 at
~74 % and ps2 at ~55 % of ps0 -- because power caps ration the concurrent
NAND program operations that carry write bandwidth.

(b) Sequential reads are essentially unaffected, because array reads draw
an order of magnitude less power and fit under every operational cap.

The asymmetry is the paper's key input to the "leveraging asymmetric IO"
design discussion (section 4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.reporting import format_table
from repro.iogen.spec import IoPattern, PAPER_CHUNK_SIZES
from repro.studies.common import DEFAULT, StudyScale, run_point

__all__ = ["Fig4Result", "render", "run"]

DEVICE = "ssd2"
POWER_STATES = (0, 1, 2)
QUEUE_DEPTH = 64

#: Paper-reported throughput ratios for sequential writes at QD64.
PAPER_WRITE_RATIOS = {1: 0.74, 2: 0.55}


@dataclass(frozen=True)
class Fig4Result:
    """``throughput_mib[(pattern, ps)]`` over :attr:`chunk_sizes`."""

    chunk_sizes: tuple[int, ...]
    throughput_mib: dict[tuple[IoPattern, int], tuple[float, ...]]

    def state_ratio(self, pattern: IoPattern, ps: int, chunk_index: int = 3) -> float:
        """Throughput of ``ps`` relative to ps0 at one chunk size."""
        base = self.throughput_mib[(pattern, 0)][chunk_index]
        return self.throughput_mib[(pattern, ps)][chunk_index] / base

    def mean_state_ratio(self, pattern: IoPattern, ps: int) -> float:
        """Throughput ratio ps/ps0 averaged over chunk sizes >= 64 KiB.

        Small chunks are controller-bound on every state, so the paper's
        headline ratios describe the NAND-bound regime.
        """
        ratios = []
        for i, chunk in enumerate(self.chunk_sizes):
            if chunk < 64 * 1024:
                continue
            ratios.append(self.state_ratio(pattern, ps, i))
        return sum(ratios) / len(ratios)


def run(scale: StudyScale = DEFAULT) -> Fig4Result:
    chunks = tuple(PAPER_CHUNK_SIZES)
    series: dict[tuple[IoPattern, int], tuple[float, ...]] = {}
    for pattern in (IoPattern.WRITE, IoPattern.READ):
        for ps in POWER_STATES:
            values = []
            for block_size in chunks:
                result = run_point(
                    DEVICE,
                    pattern,
                    block_size,
                    QUEUE_DEPTH,
                    power_state=ps,
                    scale=scale,
                )
                values.append(result.throughput_mib_s)
            series[(pattern, ps)] = tuple(values)
    return Fig4Result(chunk_sizes=chunks, throughput_mib=series)


def render(result: Fig4Result) -> str:
    blocks = []
    for panel, pattern in (("a", IoPattern.WRITE), ("b", IoPattern.READ)):
        rows = []
        for i, chunk in enumerate(result.chunk_sizes):
            rows.append(
                [f"{chunk // 1024} KiB"]
                + [result.throughput_mib[(pattern, ps)][i] for ps in POWER_STATES]
            )
        blocks.append(
            format_table(
                ["Chunk", "ps0 MiB/s", "ps1 MiB/s", "ps2 MiB/s"],
                rows,
                title=(
                    f"Figure 4{panel}. SSD2 sequential "
                    f"{'write' if pattern is IoPattern.WRITE else 'read'} "
                    "throughput (QD64)."
                ),
            )
        )
    write_r1 = result.mean_state_ratio(IoPattern.WRITE, 1)
    write_r2 = result.mean_state_ratio(IoPattern.WRITE, 2)
    read_r2 = result.mean_state_ratio(IoPattern.READ, 2)
    blocks.append(
        "Key ratios (vs ps0): "
        f"seq-write ps1 {write_r1:.0%} (paper 74%), "
        f"ps2 {write_r2:.0%} (paper 55%); "
        f"seq-read ps2 {read_r2:.0%} (paper: minimal drop)"
    )
    return "\n\n".join(blocks)


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(render(run()))
