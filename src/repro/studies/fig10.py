"""Figure 10: the power-throughput model (paper section 3.3).

Normalized power versus normalized throughput for the random-write
workload, across every combination of power-control mechanism (device
power state x chunk size x queue depth):

(a) across the four storage devices -- the models "generalize across
    storage devices";
(b) SSD2 broken out by power state.

Headline numbers the study checks: SSD2's power dynamic range reaches
~59.4 % of its maximum power, and the HDD's throughput floor is ~4 % of
its maximum.  The module also reproduces the worked SSD1 example: a 20 %
power cut maps to a configuration that curtails ~40 % of peak throughput
(~1.3 GiB/s of best-effort load).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._units import GiB, KiB
from repro.core.adaptive import AdaptivePlan, PowerAdaptivePlanner
from repro.core.experiment import ExperimentResult
from repro.core.model import ModelPoint, PowerThroughputModel
from repro.core.options import ExecutionOptions
from repro.core.parallel import PointFailure, SweepExecutionError, run_configs
from repro.core.reporting import ascii_scatter, format_table
from repro.core.sweep import SweepPoint
from repro.iogen.spec import IoPattern
from repro.studies.common import DEFAULT, StudyScale, point_config

__all__ = ["Fig10Result", "build_model", "render", "run"]

#: Power states per device for the mechanism sweep (None = no NVMe table).
DEVICE_STATES: dict[str, tuple[int | None, ...]] = {
    "ssd1": (0, 1, 2),
    "ssd2": (0, 1, 2),
    "ssd3": (None,),
    "hdd": (None,),
}

#: The sweep's IO-shaping grid (a representative subset of the paper's
#: 6 x 6 full grid keeps the flagship sweep tractable in pure Python).
SWEEP_CHUNKS = (4 * KiB, 64 * KiB, 256 * KiB, 2048 * KiB)
SWEEP_DEPTHS = (1, 8, 64)


def build_model(
    device: str,
    pattern: IoPattern = IoPattern.RANDWRITE,
    scale: StudyScale = DEFAULT,
    chunks: tuple[int, ...] = SWEEP_CHUNKS,
    depths: tuple[int, ...] = SWEEP_DEPTHS,
    states: tuple[int | None, ...] | None = None,
    n_workers: int | None = 1,
) -> PowerThroughputModel:
    """Sweep one device's mechanism grid and fit its model.

    ``n_workers > 1`` (or ``None`` for all cores) fans the grid out across
    a process pool; results are identical to the sequential run.
    """
    if states is None:
        states = DEVICE_STATES.get(device, (None,))
    points = [
        SweepPoint(pattern, block_size, iodepth, ps)
        for ps in states
        for block_size in chunks
        for iodepth in depths
    ]
    outcomes = run_configs(
        [
            point_config(
                device,
                point.pattern,
                point.block_size,
                point.iodepth,
                power_state=point.power_state,
                scale=scale,
            )
            for point in points
        ],
        ExecutionOptions(n_workers=n_workers),
    )
    failures = [o for o in outcomes if isinstance(o, PointFailure)]
    if failures:
        raise SweepExecutionError(failures)
    results: dict[SweepPoint, ExperimentResult] = dict(zip(points, outcomes))
    return PowerThroughputModel.from_sweep(device, results)


@dataclass(frozen=True)
class Fig10Result:
    """Models for all devices plus the worked example.

    Attributes:
        models: Per-device power-throughput models (the scatter data).
        ssd1_plan: The section-3.3 worked example: SSD1's plan for a 20 %
            power cut.
    """

    models: dict[str, PowerThroughputModel]
    ssd1_plan: AdaptivePlan

    def dynamic_range(self, device: str) -> float:
        return self.models[device].dynamic_range_fraction

    def throughput_floor(self, device: str) -> float:
        return self.models[device].min_normalized_throughput


def run(scale: StudyScale = DEFAULT, n_workers: int | None = 1) -> Fig10Result:
    models = {
        device: build_model(device, scale=scale, n_workers=n_workers)
        for device in DEVICE_STATES
    }
    planner = PowerAdaptivePlanner(models["ssd1"])
    plan = planner.plan_power_cut(0.20)
    return Fig10Result(models=models, ssd1_plan=plan)


def render(result: Fig10Result) -> str:
    rows = []
    for device, model in result.models.items():
        rows.append(
            [
                device.upper(),
                len(model.points),
                model.max_power_w,
                model.min_power_w,
                f"{model.dynamic_range_fraction:.1%}",
                f"{model.min_normalized_throughput:.1%}",
            ]
        )
    blocks = [
        format_table(
            [
                "Device",
                "Points",
                "Max W",
                "Min W",
                "Dyn range",
                "Tput floor",
            ],
            rows,
            title=(
                "Figure 10. Power-throughput model, random write "
                "(normalized per device)."
            ),
        ),
        (
            f"SSD2 dynamic range {result.dynamic_range('ssd2'):.1%} "
            "(paper: 59.4%); HDD throughput floor "
            f"{result.throughput_floor('hdd'):.1%} (paper: ~4%)"
        ),
        (
            "Worked example (paper section 3.3) -- SSD1 under a 20% power "
            "cut:\n  " + result.ssd1_plan.describe()
            + f"\n  curtailed load {result.ssd1_plan.curtailed_bps / GiB:.1f}"
            " GiB/s (paper: ~1.3 GiB/s)"
        ),
    ]
    # Panel (a): the normalized scatter across devices, as the paper plots.
    scatter = {
        label: [(t, p) for t, p, __ in model.normalized()]
        for label, model in result.models.items()
    }
    blocks.append(
        "Figure 10a. Normalized power vs normalized throughput "
        "(random write):\n"
        + ascii_scatter(
            scatter, x_label="norm throughput", y_label="norm power"
        )
    )
    # Scatter listing for panel (b): SSD2 by power state.
    ssd2 = result.models["ssd2"]
    scatter_rows = [
        [
            point.point.describe(),
            f"{norm_tput:.2f}",
            f"{norm_power:.2f}",
        ]
        for norm_tput, norm_power, point in sorted(
            ssd2.normalized(), key=lambda triple: (triple[0], triple[1])
        )
    ]
    blocks.append(
        format_table(
            ["SSD2 configuration", "Norm tput", "Norm power"],
            scatter_rows,
            title="Figure 10b. SSD2 operating points by power state.",
        )
    )
    return "\n\n".join(blocks)


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(render(run()))
