"""Table 1: evaluated storage devices and their measured power ranges.

Paper values::

    SSD1  NVMe  Samsung PM9A3       3.5 - 13.5 W
    SSD2  NVMe  Intel D7-P5510      5   - 15.1 W
    SSD3  SATA  Intel D3-S4510      1   - 3.5 W
    HDD   SATA  Seagate Exos 7E2000 1   - 5.3 W

The *minimum* of each range is the device's quiescent draw (idle; for the
HDD, standby rounds to ~1 W); the *maximum* is the highest instantaneous
sample observed across the workload sweep -- which is why it exceeds the
maximum *average* power (program-current pulses, Fig. 2a).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._units import KiB
from repro.core.options import ExecutionOptions
from repro.core.parallel import PointFailure, SweepExecutionError, run_configs
from repro.devices.catalog import build_device
from repro.iogen.spec import IoPattern
from repro.power.meter import MeterConfig, PowerMeter
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams
from repro.core.reporting import format_table
from repro.studies.common import DEFAULT, StudyScale, point_config

__all__ = ["DeviceRange", "PAPER_RANGES", "render", "run"]

#: Paper Table 1: label -> (protocol, model, min W, max W).
PAPER_RANGES: dict[str, tuple[str, str, float, float]] = {
    "ssd1": ("NVMe", "Samsung PM9A3", 3.5, 13.5),
    "ssd2": ("NVMe", "Intel D7-P5510", 5.0, 15.1),
    "ssd3": ("SATA", "Intel D3-S4510", 1.0, 3.5),
    "hdd": ("SATA", "Seagate Exos 7E2000", 1.0, 5.3),
}

#: Heavy workloads probed for the maximum-power end of each range.
_HEAVY = (
    (IoPattern.RANDWRITE, 2048 * KiB, 64),
    (IoPattern.WRITE, 256 * KiB, 64),
)


@dataclass(frozen=True)
class DeviceRange:
    """One row of the reproduced Table 1."""

    label: str
    protocol: str
    model: str
    measured_min_w: float
    measured_max_w: float
    paper_min_w: float
    paper_max_w: float


def _quiescent_power(label: str, seed: int = 0) -> float:
    """Device power with no IO offered (idle; standby for the HDD)."""
    engine = Engine()
    device = build_device(engine, label, rng=RngStreams(seed))
    if label == "hdd":
        proc = engine.process(device.enter_standby())
        while proc.is_alive:
            engine.step()
    start = engine.now
    engine.run(until=start + 0.3)
    meter = PowerMeter(device.rail, MeterConfig(), rng=RngStreams(seed).get("meter"))
    return meter.measure(start + 0.1, start + 0.3).mean()


def run(
    scale: StudyScale = DEFAULT, n_workers: int | None = 1
) -> list[DeviceRange]:
    """Reproduce Table 1.

    The heavy max-power probes (two workloads per device) are independent
    experiments, so they fan out across ``n_workers`` processes.
    """
    labels = list(PAPER_RANGES)
    probes = [
        (label, workload) for label in labels for workload in _HEAVY
    ]
    outcomes = run_configs(
        [
            point_config(label, pattern, block_size, iodepth, scale=scale)
            for label, (pattern, block_size, iodepth) in probes
        ],
        ExecutionOptions(n_workers=n_workers),
    )
    failures = [o for o in outcomes if isinstance(o, PointFailure)]
    if failures:
        raise SweepExecutionError(failures)
    max_w: dict[str, float] = {label: 0.0 for label in labels}
    for (label, __), result in zip(probes, outcomes):
        max_w[label] = max(max_w[label], result.power.max_w)

    rows = []
    for label, (protocol, model, p_min, p_max) in PAPER_RANGES.items():
        low = _quiescent_power(label)
        high = max_w[label]
        rows.append(
            DeviceRange(
                label=label,
                protocol=protocol,
                model=model,
                measured_min_w=low,
                measured_max_w=high,
                paper_min_w=p_min,
                paper_max_w=p_max,
            )
        )
    return rows


def render(rows: list[DeviceRange]) -> str:
    """Paper-style Table 1 with paper-vs-measured columns."""
    return format_table(
        ["Label", "Protocol", "Model", "Measured Range", "Paper Range"],
        [
            [
                row.label.upper(),
                row.protocol,
                row.model,
                f"{row.measured_min_w:.1f}-{row.measured_max_w:.1f} W",
                f"{row.paper_min_w}-{row.paper_max_w} W",
            ]
            for row in rows
        ],
        title="Table 1. Evaluated storage devices.",
    )


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(render(run()))
