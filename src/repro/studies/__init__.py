"""Per-figure reproduction drivers.

One module per table/figure of the paper's evaluation.  Each module exposes

- ``run(scale)`` returning a plain dataclass of the figure's series, and
- ``render(result)`` returning the text the benchmark harness prints --
  the same rows the paper plots.

``scale`` is a :class:`~repro.studies.common.StudyScale`: ``DEFAULT`` for
benchmark runs, ``QUICK`` for CI-speed integration tests.

======== ======================================================
module    reproduces
======== ======================================================
table1    Table 1 (measured power range per device)
fig2      Fig. 2 (power trace + per-device power distribution)
fig3      Fig. 3 (SSD2 rand-write power vs chunk under ps0-2)
fig4      Fig. 4 (SSD2 seq write/read throughput under ps0-2)
fig5      Fig. 5 (SSD2 rand-write latency vs chunk, QD1)
fig6      Fig. 6 (SSD2 rand-read latency vs chunk, QD1)
fig7      Fig. 7 (860 EVO standby transition traces)
fig8      Fig. 8 (rand-write power/throughput vs chunk, all devices)
fig9      Fig. 9 (rand-read power/throughput vs depth, all devices)
fig10     Fig. 10 (power-throughput model + worked example)
claims    headline claims of sections 1-3
proportionality  footnote 1: proportionality vs adaptivity
======== ======================================================
"""

from repro.studies.common import DEFAULT, QUICK, StudyScale

__all__ = ["DEFAULT", "QUICK", "StudyScale"]
