"""Policy tracking study: can a controller harvest the dynamic range?

The paper's measurement study (sections 3-4) established that the
*mechanisms* -- NVMe power states, ALPM, EPC -- expose a real power
dynamic range; its section 5 asks whether an online *controller* can
harvest that range against a time-varying budget, and at what tail-
latency cost.  This study closes that loop, Table-1 / Fig-10 style:

- Phase 1 (baseline): one uncontrolled random-write run per catalog
  device establishes each device's natural operating power and p99.
- Phase 2 (tracking): each controller family runs the same workload
  against a budget schedule derived from that baseline -- a step wave
  for the governed NVMe devices, a diurnal sinusoid for the consumer
  SATA device, a gentle step for the HDD (whose only sub-idle mechanism
  any media access undoes).

Reported per (device, policy): harvested power (baseline mean vs.
policy-run mean), p99 blowup, set-point changes, and mean budget-
tracking error.  The expected shape matches the paper: SSDs harvest
double-digit percentages for single-digit p99 cost; the HDD harvests
~nothing because EPC cannot bite under load.

Both phases share one result cache / checkpoint journal, so ``repro
policy --cache --resume`` skips completed points; validation is always
post-hoc over the returned results, cache hits included.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro._units import KiB
from repro.core.checkpoint import CheckpointJournal
from repro.core.experiment import ExperimentConfig, ExperimentResult
from repro.core.options import ExecutionOptions
from repro.core.parallel import PointFailure, SweepExecutionError, run_configs
from repro.core.reporting import format_table
from repro.faults.plan import FaultPlan
from repro.iogen.spec import IoPattern
from repro.policy import POLICY_KINDS, BudgetSchedule, PolicySpec
from repro.studies.common import DEFAULT, StudyScale, point_config
from repro.validate.checkers import RESULT_INVARIANTS, check_result
from repro.validate.report import Tolerances, ValidationReport

__all__ = ["DEVICES", "PolicyTrackingResult", "render", "run", "spec_for"]

#: The paper's four catalog devices, in its presentation order.
DEVICES = ("ssd1", "ssd2", "ssd3", "hdd")

#: Validation tolerances for the study (``None`` = library defaults).
#: Module-level so the CLI tests can monkeypatch a zero-slack set and
#: prove violations surface as a nonzero exit even over cache hits.
TOLERANCES: Optional[Tolerances] = None

_PATTERN = IoPattern.RANDWRITE
_BLOCK_SIZE = 256 * KiB
_IODEPTH = 8


def _runtime_s(device: str, scale: StudyScale) -> float:
    return scale.hdd_runtime_s if device == "hdd" else scale.ssd_runtime_s


def spec_for(
    device: str, kind: str, baseline_mean_w: float, scale: StudyScale
) -> PolicySpec:
    """A policy spec whose budget exercises the device's dynamic range.

    Budgets are fractions of the *baseline* mean so every device is
    stressed relative to its own draw; the schedule period is tied to
    the run length so each run sees multiple budget phases.  Public:
    the chaos campaign (:mod:`repro.faults.campaign`) reuses these
    specs so its cells stress controllers exactly like this study does.
    """
    runtime_s = _runtime_s(device, scale)
    if device == "hdd":
        # Mechanical timescales: decide at tens of milliseconds, and
        # only shave the budget -- EPC cannot cut a busy disk deeper.
        budget = BudgetSchedule.step(
            high_w=baseline_mean_w,
            low_w=0.92 * baseline_mean_w,
            period_s=runtime_s / 2.0,
        )
        return PolicySpec(
            kind=kind, budget=budget, interval_s=0.05, window_s=0.1
        )
    if device == "ssd3":
        # No NVMe power-state table: the diurnal shape exercises the
        # continuous governor-cap actuator.
        budget = BudgetSchedule.diurnal(
            high_w=0.95 * baseline_mean_w,
            low_w=0.75 * baseline_mean_w,
            period_s=runtime_s,
        )
    else:
        budget = BudgetSchedule.step(
            high_w=0.95 * baseline_mean_w,
            low_w=0.75 * baseline_mean_w,
            period_s=runtime_s / 2.0,
        )
    return PolicySpec(
        kind=kind, budget=budget, interval_s=1.5e-3, window_s=3e-3
    )


@dataclass(frozen=True)
class PolicyTrackingResult:
    """Baselines, per-(device, policy) tracking runs, and validation.

    Attributes:
        baselines: Uncontrolled run per device.
        results: Policy runs keyed by ``(device, policy_kind)``.
        validation: Post-hoc invariant report over every result above.
    """

    baselines: dict[str, ExperimentResult]
    results: dict[tuple[str, str], ExperimentResult]
    validation: ValidationReport

    @property
    def ok(self) -> bool:
        return self.validation.ok

    def harvest_fraction(self, device: str, kind: str) -> float:
        """Power harvested vs. the uncontrolled baseline (0 = none)."""
        base = self.baselines[device].true_mean_power_w
        if base <= 0:
            return 0.0
        run_mean = self.results[(device, kind)].true_mean_power_w
        return (base - run_mean) / base

    def p99_blowup(self, device: str, kind: str) -> float:
        """p99 latency ratio vs. the uncontrolled baseline (1.0 = free)."""
        base = self.baselines[device].latency().p99
        if base <= 0:
            return 1.0
        return self.results[(device, kind)].latency().p99 / base


def run(
    scale: StudyScale = DEFAULT,
    n_workers: int | None = 1,
    seed: int = 0,
    devices: tuple[str, ...] = DEVICES,
    policies: tuple[str, ...] = POLICY_KINDS,
    faults: Optional[FaultPlan] = None,
    cache_dir=None,
    checkpoint=None,
    resume: bool = False,
    ledger=None,
) -> PolicyTrackingResult:
    """Run the tracking study.

    ``faults`` applies to the *policy* runs only: the baselines stay
    clean so budget derivation (and its cache keys) cannot drift with
    the fault plan under test.

    ``ledger`` (a path or :class:`~repro.core.ledger.RunLedger`) appends
    one provenance record per point plus a study-level summary carrying
    the validation verdict, so ``repro report`` can audit the study
    later.  Purely passive: results are identical with or without it.
    """
    if ledger is not None:
        from repro.core.ledger import RunLedger

        ledger = ledger if isinstance(ledger, RunLedger) else RunLedger(ledger)
    options = ExecutionOptions(
        n_workers=n_workers, cache_dir=cache_dir, ledger=ledger
    )
    journal = None
    if checkpoint is not None:
        journal = CheckpointJournal(checkpoint)
        journal.open(fresh=not resume)
    try:
        baseline_configs = [
            point_config(
                device, _PATTERN, _BLOCK_SIZE, _IODEPTH,
                scale=scale, seed=seed,
            )
            for device in devices
        ]
        outcomes = run_configs(baseline_configs, options, journal=journal)
        failures = [o for o in outcomes if isinstance(o, PointFailure)]
        if failures:
            raise SweepExecutionError(failures)
        baselines: dict[str, ExperimentResult] = dict(zip(devices, outcomes))

        pairs = [(device, kind) for device in devices for kind in policies]
        policy_configs: list[ExperimentConfig] = []
        for device, kind in pairs:
            spec = spec_for(
                device, kind, baselines[device].true_mean_power_w, scale
            )
            policy_configs.append(
                replace(baselines[device].config, policy=spec, faults=faults)
            )
        outcomes = run_configs(policy_configs, options, journal=journal)
        failures = [o for o in outcomes if isinstance(o, PointFailure)]
        if failures:
            raise SweepExecutionError(failures)
        results: dict[tuple[str, str], ExperimentResult] = dict(
            zip(pairs, outcomes)
        )
    finally:
        if journal is not None:
            journal.close()

    everything = list(baselines.values()) + list(results.values())
    violations = []
    for result in everything:
        violations.extend(check_result(result, TOLERANCES))
    validation = ValidationReport(
        violations=tuple(violations),
        checked=len(everything),
        invariants=RESULT_INVARIANTS,
    )
    if ledger is not None:
        from repro.core.ledger import run_record
        from repro.core.parallel import ResultCache

        ledger.append(
            run_record(
                "policy",
                validation=validation,
                points=len(everything),
                failures=0,
                cache=cache_dir.stats
                if isinstance(cache_dir, ResultCache)
                else None,
            )
        )
    return PolicyTrackingResult(
        baselines=baselines, results=results, validation=validation
    )


def render(result: PolicyTrackingResult) -> str:
    rows = []
    for (device, kind), run_result in result.results.items():
        summary = run_result.policy
        rows.append(
            [
                device.upper(),
                kind,
                f"{result.baselines[device].true_mean_power_w:.2f}",
                f"{run_result.true_mean_power_w:.2f}",
                f"{result.harvest_fraction(device, kind):.1%}",
                f"{result.p99_blowup(device, kind):.2f}x",
                summary.set_point_changes,
                f"{summary.mean_abs_error_w():.2f}",
            ]
        )
    ssd_best = max(
        (
            result.harvest_fraction(device, kind)
            for (device, kind) in result.results
            if device != "hdd"
        ),
        default=0.0,
    )
    hdd_best = max(
        (
            result.harvest_fraction(device, kind)
            for (device, kind) in result.results
            if device == "hdd"
        ),
        default=0.0,
    )
    blocks = [
        format_table(
            [
                "Device",
                "Policy",
                "Base W",
                "Run W",
                "Harvest",
                "p99",
                "Set-points",
                "Track err W",
            ],
            rows,
            title=(
                "Policy tracking. Harvested dynamic range vs. p99 cost "
                "per controller (random write)."
            ),
        ),
        (
            f"best SSD harvest {ssd_best:.1%}; best HDD harvest "
            f"{hdd_best:.1%} (paper section 5: HDDs are not power "
            "adaptive under load -- EPC savings vanish on media access)"
        ),
        result.validation.render(),
    ]
    return "\n\n".join(blocks)


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(render(run()))
