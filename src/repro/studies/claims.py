"""Headline claims of sections 1-3, each checked against the simulation.

=====  ==============================================================
claim  paper statement
=====  ==============================================================
C1     measurement system: <1 % relative error at millisecond sampling
C2     HDD standby 1.1 W vs 3.76 W idle -- saves 2.66 W, comparable to
       the idle-to-active span
C3     HDD spin-down/spin-up takes up to 10 seconds
C4     860 EVO standby transition completes within 0.5 s; standby halves
       idle power
C5     PM1743: 9 W cap is ~40 % of uncapped maximum and 1.8x its 5 W idle
C6     power dynamic range up to 59.4 % of maximum operating power (SSD2)
C7     applying mechanisms blindly can drop throughput to ~1/25 (4 %) of
       maximum (the HDD floor)
=====  ==============================================================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._units import KiB
from repro.core.reporting import format_table
from repro.devices.catalog import build_device
from repro.iogen.spec import IoPattern
from repro.power.meter import MeterConfig, PowerMeter
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams
from repro.studies import fig7, fig10
from repro.studies.common import DEFAULT, StudyScale, run_point

__all__ = ["Claim", "render", "run"]


@dataclass(frozen=True)
class Claim:
    """One checked claim."""

    claim_id: str
    statement: str
    paper_value: str
    measured_value: str
    holds: bool


def _meter_error_claim() -> Claim:
    """C1: drive a device, compare metered vs ground-truth mean power."""
    result = run_point(
        "ssd2", IoPattern.RANDWRITE, 256 * KiB, 64, scale=DEFAULT
    )
    error = result.meter_relative_error
    return Claim(
        "C1",
        "power meter relative error at 1 kHz sampling",
        "< 1%",
        f"{error:.3%}",
        error < 0.01,
    )


def _hdd_standby_claim() -> tuple[Claim, Claim]:
    """C2 and C3: HDD standby power and spin-up duration."""
    engine = Engine()
    hdd = build_device(engine, "hdd")
    engine.run(until=0.5)
    idle_w = hdd.rail.trace.mean(0.2, 0.5)
    proc = engine.process(hdd.enter_standby())
    while proc.is_alive:
        engine.step()
    t0 = engine.now
    engine.run(until=t0 + 0.5)
    standby_w = hdd.rail.trace.mean(t0 + 0.2, t0 + 0.5)
    spinup_start = engine.now
    proc = engine.process(hdd.exit_standby())
    while proc.is_alive:
        engine.step()
    spinup_s = engine.now - spinup_start
    saving = idle_w - standby_w
    c2 = Claim(
        "C2",
        "HDD standby saves most of idle power",
        "3.76 W -> 1.1 W (saves 2.66 W)",
        f"{idle_w:.2f} W -> {standby_w:.2f} W (saves {saving:.2f} W)",
        2.0 <= saving <= 3.2 and standby_w < 1.5,
    )
    c3 = Claim(
        "C3",
        "HDD spin-up duration",
        "up to 10 s",
        f"{spinup_s:.1f} s",
        1.0 <= spinup_s <= 10.0,
    )
    return c2, c3


def _evo_claim() -> Claim:
    """C4: EVO standby halves idle power within 0.5 s."""
    result = fig7.run()
    halved = result.slumber_power_w <= 0.6 * result.idle_power_w
    fast = max(result.enter_settle_s, result.exit_settle_s) <= 0.5
    return Claim(
        "C4",
        "860 EVO: standby halves idle power, transition < 0.5 s",
        "0.35 -> 0.17 W within 0.5 s",
        (
            f"{result.idle_power_w:.2f} -> {result.slumber_power_w:.2f} W, "
            f"settle {max(result.enter_settle_s, result.exit_settle_s):.2f} s"
        ),
        halved and fast,
    )


def _pm1743_claim(scale: StudyScale) -> Claim:
    """C5: the PM1743 cap arithmetic from section 2."""
    uncapped = run_point(
        "pm1743", IoPattern.RANDWRITE, 2048 * KiB, 64, power_state=0, scale=scale
    )
    capped = run_point(
        "pm1743", IoPattern.RANDWRITE, 2048 * KiB, 64, power_state=2, scale=scale
    )
    engine = Engine()
    device = build_device(engine, "pm1743", rng=RngStreams(0))
    engine.run(until=0.3)
    meter = PowerMeter(device.rail, MeterConfig(), rng=RngStreams(0).get("m"))
    idle_w = meter.measure(0.1, 0.3).mean()
    cap_vs_max = capped.mean_power_w / uncapped.mean_power_w
    cap_vs_idle = capped.mean_power_w / idle_w
    return Claim(
        "C5",
        "PM1743: 9 W cap ~40% of uncapped max, ~1.8x idle (5 W)",
        "40% of max, 1.8x idle",
        f"{cap_vs_max:.0%} of max, {cap_vs_idle:.1f}x idle ({idle_w:.1f} W)",
        0.3 <= cap_vs_max <= 0.55 and 1.4 <= cap_vs_idle <= 2.2,
    )


def _model_claims(scale: StudyScale) -> tuple[Claim, Claim]:
    """C6 and C7 from the fig10 models."""
    ssd2 = fig10.build_model("ssd2", scale=scale)
    hdd = fig10.build_model("hdd", scale=scale)
    c6 = Claim(
        "C6",
        "power dynamic range up to 59.4% of max (SSD2, random write)",
        "59.4%",
        f"{ssd2.dynamic_range_fraction:.1%}",
        0.45 <= ssd2.dynamic_range_fraction <= 0.70,
    )
    floor = hdd.min_normalized_throughput
    c7 = Claim(
        "C7",
        "blind mechanism choice can drop throughput to ~1/25 of max (HDD)",
        "~4%",
        f"{floor:.1%}",
        floor <= 0.10,
    )
    return c6, c7


def run(scale: StudyScale = DEFAULT) -> list[Claim]:
    claims = [_meter_error_claim()]
    claims.extend(_hdd_standby_claim())
    claims.append(_evo_claim())
    claims.append(_pm1743_claim(scale))
    claims.extend(_model_claims(scale))
    return claims


def render(claims: list[Claim]) -> str:
    return format_table(
        ["ID", "Claim", "Paper", "Measured", "Holds"],
        [
            [c.claim_id, c.statement, c.paper_value, c.measured_value,
             "yes" if c.holds else "NO"]
            for c in claims
        ],
        title="Headline claims, paper vs simulation.",
    )


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(render(run()))
