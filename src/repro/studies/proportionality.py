"""Power proportionality versus power adaptivity (paper footnote 1).

"Power adaptivity is related to but different from power proportionality,
the design of storage systems whose average power use scales up and down
with workload intensity."  This study quantifies the distinction on the
simulated devices:

- **proportionality**: drive each device with an *open-loop* random-write
  load at fractions of its peak rate and record power versus utilization.
  The proportionality index is 1 minus the normalized area between the
  measured curve and the ideal (power proportional to load, zero at zero
  load); idle draw is what kills it.
- **adaptivity**: the mechanism-driven dynamic range the rest of this
  repository measures (Fig. 10).

The punchline the paper's framing predicts: devices are *poorly
proportional* (idle floors of 35-75 % of peak) even when they are usefully
*adaptive* -- which is exactly why explicit control mechanisms matter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._units import KiB
from repro.core.reporting import ascii_series, format_table
from repro.devices.catalog import build_device
from repro.iogen.arrivals import ArrivalProcess, LoadProfile, OpenLoopJob
from repro.iogen.spec import IoPattern
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams
from repro.studies.common import DEFAULT, StudyScale, run_point

__all__ = ["ProportionalityCurve", "render", "run"]

DEVICES = ("ssd2", "ssd1", "ssd3", "hdd")
UTILIZATIONS = (0.0, 0.25, 0.5, 0.75, 1.0)
CHUNK = 256 * KiB


@dataclass(frozen=True)
class ProportionalityCurve:
    """Power-versus-utilization curve for one device.

    Attributes:
        device: Preset label.
        utilizations: Offered load as a fraction of peak throughput.
        power_w: Measured mean power at each utilization.
        peak_power_w: Power at full utilization.
        idle_fraction: Idle power over peak power (0 = perfectly
            proportional at the bottom end).
        proportionality_index: 1 - mean |measured - ideal| / peak, where
            ideal(u) = u * peak power.  1.0 is Barroso-ideal.
    """

    device: str
    utilizations: tuple[float, ...]
    power_w: tuple[float, ...]

    @property
    def peak_power_w(self) -> float:
        return self.power_w[-1]

    @property
    def idle_fraction(self) -> float:
        return self.power_w[0] / self.peak_power_w

    @property
    def proportionality_index(self) -> float:
        measured = np.asarray(self.power_w)
        ideal = np.asarray(self.utilizations) * self.peak_power_w
        return float(1.0 - np.mean(np.abs(measured - ideal)) / self.peak_power_w)


def _peak_rate_bps(device: str, scale: StudyScale) -> float:
    result = run_point(device, IoPattern.RANDWRITE, CHUNK, 64, scale=scale)
    return result.throughput_bps


def _power_at_load(device: str, rate_bps: float, duration_s: float, seed: int) -> float:
    engine = Engine()
    rngs = RngStreams(seed)
    dev = build_device(engine, device, rng=rngs)
    if rate_bps <= 0:
        engine.run(until=duration_s)
        return dev.rail.trace.mean(duration_s * 0.3, duration_s)
    job = OpenLoopJob(
        engine,
        dev,
        ArrivalProcess(
            LoadProfile.constant(rate_bps),
            request_bytes=CHUNK,
            poisson=True,
            rng=rngs.get("arrivals"),
        ),
        pattern=IoPattern.RANDWRITE,
        duration_s=duration_s,
        max_outstanding=128,
        rng=rngs.get("offsets"),
    )
    proc = job.start()
    while proc.is_alive:
        engine.step()
    return dev.rail.trace.mean(duration_s * 0.3, engine.now)


def run(scale: StudyScale = DEFAULT) -> list[ProportionalityCurve]:
    curves = []
    for device in DEVICES:
        duration = 2.0 if device == "hdd" else 0.08
        peak = _peak_rate_bps(device, scale)
        powers = []
        for utilization in UTILIZATIONS:
            # At u=1.0 an open loop at exactly peak rate queues unboundedly;
            # drive it 5% above peak so the device saturates cleanly.
            rate = peak * (utilization if utilization < 1.0 else 1.05)
            powers.append(_power_at_load(device, rate, duration, seed=11))
        curves.append(
            ProportionalityCurve(
                device=device,
                utilizations=UTILIZATIONS,
                power_w=tuple(powers),
            )
        )
    return curves


def render(curves: list[ProportionalityCurve]) -> str:
    rows = []
    for curve in curves:
        rows.append(
            [curve.device.upper()]
            + [f"{w:.2f}" for w in curve.power_w]
            + [f"{curve.idle_fraction:.0%}", f"{curve.proportionality_index:.2f}"]
        )
    blocks = [
        format_table(
            ["Device"]
            + [f"u={u:.0%}" for u in UTILIZATIONS]
            + ["Idle/peak", "Prop. index"],
            rows,
            title=(
                "Power proportionality under random-write load "
                "(paper footnote 1)."
            ),
        )
    ]
    worst = min(curves, key=lambda c: c.proportionality_index)
    blocks.append(
        ascii_series(
            list(worst.utilizations),
            list(worst.power_w),
            label=f"  least proportional device ({worst.device}): power vs load",
        )
    )
    blocks.append(
        "Devices are weakly proportional (high idle floors) even though "
        "their *adaptive* range is wide -- the gap explicit power control "
        "mechanisms close."
    )
    return "\n\n".join(blocks)


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(render(run()))
