"""Figure 2: millisecond-scale power measurement example.

(a) SSD1's power trace over ~1.2 s of a random-write experiment (256 KiB
chunks, queue depth 64): substantial variability on small timescales,
produced in our model by NAND program-intensity waves and per-op pulses.

(b) Violin-style distribution of the power samples for all four devices
under the same workload: medians and means nearly overlap, and devices
differ in spread.

This study uses the paper's actual 1 kHz sampling over near-full-length
windows (unlike the throughput sweeps, which use scaled windows with a
faster sampler), and demonstrates the methodological point of section 3.1:
resampling the same experiment at a slow rate hides the variability
entirely.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._units import GiB, KiB
from repro.core.experiment import ExperimentConfig, run_experiment
from repro.core.reporting import format_table
from repro.iogen.spec import IoPattern, JobSpec
from repro.power.analysis import PowerSummary
from repro.power.logger import PowerTrace
from repro.power.meter import MeterConfig

__all__ = ["Fig2Result", "render", "run"]

_DEVICES = ("ssd2", "ssd3", "ssd1", "hdd")  # Fig. 2b order

#: Trace length for panel (a); the paper's x-axis spans ~1.2 s.
TRACE_SECONDS = 1.25
#: Window per device for the distribution panel.
DISTRIBUTION_SECONDS = 0.35


@dataclass(frozen=True)
class Fig2Result:
    """Series behind both panels.

    Attributes:
        trace: SSD1's measured 1 kHz power trace (panel a).
        distributions: Per-device power summaries (panel b's violins).
        slow_rate_spread / full_rate_spread: Power spread visible at 10 Hz
            versus at the full 1 kHz rate -- quantifying what a slow
            sampler (IPMI-class reporting) would miss.
    """

    trace: PowerTrace
    distributions: dict[str, PowerSummary]
    slow_rate_spread: float
    full_rate_spread: float


def _measure_device(label: str, runtime_s: float):
    config = ExperimentConfig(
        device=label,
        job=JobSpec(
            IoPattern.RANDWRITE,
            block_size=256 * KiB,
            iodepth=64,
            runtime_s=runtime_s,
            size_limit_bytes=8 * GiB,
        ),
        warmup_fraction=0.1,
        meter=MeterConfig(),  # the paper's 1 kHz chain
        keep_trace=True,
    )
    return run_experiment(config)


def run(trace_seconds: float = TRACE_SECONDS) -> Fig2Result:
    distributions: dict[str, PowerSummary] = {}
    trace = None
    for label in _DEVICES:
        runtime = trace_seconds if label == "ssd1" else DISTRIBUTION_SECONDS
        result = _measure_device(label, runtime)
        assert result.trace is not None
        distributions[label] = result.power
        if label == "ssd1":
            trace = result.trace
    assert trace is not None
    watts = trace.watts
    # Resample at 10 Hz: average per 100 ms bucket, the best a slow
    # polling interface could report.
    bucket = max(int(trace.sample_rate_hz / 10), 1)
    n_buckets = len(watts) // bucket
    slow = watts[: n_buckets * bucket].reshape(n_buckets, bucket).mean(axis=1)
    slow_spread = float(slow.max() - slow.min()) if len(slow) else 0.0
    return Fig2Result(
        trace=trace,
        distributions=distributions,
        slow_rate_spread=slow_spread,
        full_rate_spread=float(watts.max() - watts.min()),
    )


def render(result: Fig2Result) -> str:
    lines = [
        "Figure 2a. SSD1 random-write power trace (256 KiB, QD64):",
        (
            f"  {len(result.trace)} samples at "
            f"{result.trace.sample_rate_hz:.0f} Hz, "
            f"range [{result.trace.min():.2f}, {result.trace.max():.2f}] W, "
            f"mean {result.trace.mean():.2f} W"
        ),
        (
            f"  variability: {result.full_rate_spread:.2f} W at 1 kHz vs "
            f"{result.slow_rate_spread:.2f} W visible at 10 Hz"
        ),
        "",
    ]
    rows = []
    for label, summary in result.distributions.items():
        rows.append(
            [
                label.upper(),
                summary.mean_w,
                summary.median_w,
                summary.quantiles[0.05],
                summary.quantiles[0.95],
                summary.max_w,
            ]
        )
    lines.append(
        format_table(
            ["Device", "Mean W", "Median W", "p5 W", "p95 W", "Max W"],
            rows,
            title="Figure 2b. Power distribution during the same workload.",
        )
    )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(render(run()))
