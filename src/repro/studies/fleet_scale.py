"""Fleet-scale study: harvested dynamic range vs. p99 cost at N devices.

The single-device studies established that each catalog device exposes
a real power dynamic range and that an online controller can harvest it
(:mod:`repro.studies.policy_tracking`).  This study asks the datacenter
question the paper's section 5 gestures at: when a *cluster governor*
re-divides one global, diurnally varying power budget across tens of
heterogeneous devices serving a tenant-skewed front-end stream, how
much fleet-level dynamic range does it drive -- and what does the
fleet-wide p99 pay?

The headline table is one row per governor epoch (budget asked,
allocated, measured vs. uncontrolled baseline, exact fleet p99 both
ways), followed by the three scalar verdicts: harvested power fraction,
governed peak-to-trough dynamic range in watts, and the worst-epoch p99
blowup.  Everything is deterministic: the rendered report -- digest
line included -- must be byte-identical across processes and
``PYTHONHASHSEED`` values (pinned by ``tests/fleet/test_determinism.py``).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.reporting import format_table
from repro.fleet.cluster import DEFAULT_MIX, FleetResult, FleetSpec, run_fleet
from repro.studies.common import DEFAULT, StudyScale
from repro.validate.report import Tolerances

__all__ = ["render", "run"]

#: Validation tolerances for the study (``None`` = library defaults).
#: Module-level so the CLI tests can monkeypatch a zero-slack set and
#: prove violations surface as a nonzero exit code.
TOLERANCES: Optional[Tolerances] = None


def run(
    scale: StudyScale = DEFAULT,
    n_workers: int | None = 1,
    seed: int = 0,
    n_devices: int = 64,
    epochs: int = 4,
    tenants: int = 96,
    skew: float = 1.1,
    budget_low: float = 0.55,
    budget_high: float = 0.85,
    mix: Sequence[str] = DEFAULT_MIX,
    cache_dir=None,
    ledger=None,
) -> FleetResult:
    """Run the fleet study: ``n_devices`` slots cycling through ``mix``.

    Thin composition over :func:`repro.fleet.cluster.run_fleet`: the
    spec is built from the scalar knobs the CLI exposes, and the
    module-level ``TOLERANCES`` feed validation so tests can tighten
    them without re-plumbing every call site.
    """
    spec = FleetSpec.sized(
        n_devices,
        mix=tuple(mix),
        epochs=epochs,
        tenants=tenants,
        skew=skew,
        budget_low=budget_low,
        budget_high=budget_high,
        seed=seed,
    )
    return run_fleet(
        spec,
        scale,
        n_workers=n_workers,
        cache_dir=cache_dir,
        ledger=ledger,
        tolerances=TOLERANCES,
    )


def render(result: FleetResult) -> str:
    rows = []
    for e in result.epochs:
        rows.append(
            [
                e.index,
                f"{e.intensity:.2f}",
                f"{e.budget_w:.1f}",
                f"{e.allocated_w:.1f}",
                f"{e.deficit_w:.1f}",
                f"{e.baseline_w:.1f}",
                f"{e.measured_w:.1f}",
                f"{e.baseline_p99_s * 1e3:.2f}",
                f"{e.p99_s * 1e3:.2f}",
            ]
        )
    n = len(result.spec.devices)
    blocks = [
        format_table(
            [
                "Epoch",
                "Load",
                "Budget W",
                "Alloc W",
                "Deficit W",
                "Base W",
                "Fleet W",
                "Base p99 ms",
                "p99 ms",
            ],
            rows,
            title=(
                f"Fleet of {n} devices under a diurnal global budget. "
                "Governed draw vs. uncontrolled baseline per epoch."
            ),
        ),
        (
            f"harvested {result.harvest_fraction:.1%} of fleet power; "
            f"governed dynamic range {result.dynamic_range_w:.1f} W "
            f"({result.baseline_power_w:.1f} W uncontrolled); worst-epoch "
            f"p99 blowup {result.p99_blowup:.2f}x"
        ),
        result.validation.render(),
        f"digest {result.digest()}",
    ]
    return "\n\n".join(blocks)


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(render(run()))
