"""Figure 9: random-read power and throughput as queue depth varies (4 KiB).

Across all four devices, with 4 KiB chunks:

(a) average power rises with depth -- depth 1 consumes up to ~40 % less
    power than depth 64 (a single outstanding IO keeps one die busy at a
    time; deep queues light up the array and the controller);
(b) throughput rises steeply with depth -- depth 1 may deliver only ~10 %
    of the depth-64 throughput.

Queue depth is the second axis of IO shaping.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._units import KiB
from repro.core.reporting import format_table
from repro.iogen.spec import IoPattern, PAPER_QUEUE_DEPTHS
from repro.studies.common import DEFAULT, StudyScale, run_point

__all__ = ["Fig9Result", "render", "run"]

DEVICES = ("ssd2", "ssd1", "ssd3", "hdd")
CHUNK = 4 * KiB


@dataclass(frozen=True)
class Fig9Result:
    """Per-device power and throughput series over :attr:`iodepths`."""

    iodepths: tuple[int, ...]
    power_w: dict[str, tuple[float, ...]]
    throughput_mib: dict[str, tuple[float, ...]]

    def _at_depth(self, series: tuple[float, ...], depth: int) -> float:
        return series[self.iodepths.index(depth)]

    def power_saving_qd1(self, device: str) -> float:
        """Fractional power saving of QD1 vs QD64."""
        series = self.power_w[device]
        return 1.0 - self._at_depth(series, 1) / self._at_depth(series, 64)

    def throughput_fraction_qd1(self, device: str) -> float:
        """QD1 throughput as a fraction of QD64 throughput."""
        series = self.throughput_mib[device]
        return self._at_depth(series, 1) / self._at_depth(series, 64)


def run(scale: StudyScale = DEFAULT) -> Fig9Result:
    depths = tuple(PAPER_QUEUE_DEPTHS)
    power: dict[str, tuple[float, ...]] = {}
    tput: dict[str, tuple[float, ...]] = {}
    for device in DEVICES:
        p_series, t_series = [], []
        for iodepth in depths:
            result = run_point(
                device, IoPattern.RANDREAD, CHUNK, iodepth, scale=scale
            )
            p_series.append(result.mean_power_w)
            t_series.append(result.throughput_mib_s)
        power[device] = tuple(p_series)
        tput[device] = tuple(t_series)
    return Fig9Result(iodepths=depths, power_w=power, throughput_mib=tput)


def render(result: Fig9Result) -> str:
    power_rows = []
    tput_rows = []
    for i, depth in enumerate(result.iodepths):
        power_rows.append([depth] + [result.power_w[d][i] for d in DEVICES])
        tput_rows.append([depth] + [result.throughput_mib[d][i] for d in DEVICES])
    headers = ["IO depth"] + [d.upper() for d in DEVICES]
    blocks = [
        format_table(
            headers,
            power_rows,
            title="Figure 9a. Random-read average power (W), 4 KiB chunks.",
        ),
        format_table(
            headers,
            tput_rows,
            title="Figure 9b. Random-read throughput (MiB/s), 4 KiB chunks.",
        ),
    ]
    saving = max(result.power_saving_qd1(d) for d in ("ssd1", "ssd2"))
    fraction = min(result.throughput_fraction_qd1(d) for d in ("ssd1", "ssd2"))
    blocks.append(
        f"QD1 vs QD64 on the NVMe SSDs: up to {saving:.0%} less power "
        f"(paper: up to 40%), throughput as low as {fraction:.0%} of QD64 "
        f"(paper: ~10%)"
    )
    return "\n\n".join(blocks)


if __name__ == "__main__":  # pragma: no cover - manual driver
    print(render(run()))
