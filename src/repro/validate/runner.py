"""Entry points tying checkers, contracts, and auditors together.

- :func:`validate_result` -- every post-hoc invariant over one result.
- :func:`validate_results` / :func:`validate_outcome` -- a whole sweep:
  per-result checkers plus the cross-result monotonicity contracts,
  aggregated into one :class:`~repro.validate.report.ValidationReport`.
- :func:`live_validate` -- run one experiment with the live auditors
  attached (rail energy conservation, event-stream invariants) on top of
  the post-hoc checks.
- :func:`emit_violations` -- mirror violations into a tracer as
  ``EventKind.VIOLATION`` events so they land in exported traces next to
  the mechanism events that caused them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Optional

from repro.core.experiment import ExperimentConfig, ExperimentResult
from repro.validate.audit import LiveAuditor, RailAudit
from repro.validate.checkers import RESULT_INVARIANTS, check_result
from repro.validate.contracts import CONTRACT_INVARIANTS, check_contracts
from repro.validate.report import (
    Tolerances,
    ValidationReport,
    Violation,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.sweep import SweepOutcome, SweepPoint

__all__ = [
    "emit_violations",
    "live_validate",
    "validate_outcome",
    "validate_result",
    "validate_results",
]


def validate_result(
    result: ExperimentResult, tolerances: Optional[Tolerances] = None
) -> ValidationReport:
    """Check every post-hoc invariant over one experiment result."""
    return ValidationReport(
        violations=tuple(check_result(result, tolerances)),
        checked=1,
        invariants=RESULT_INVARIANTS,
    )


def validate_results(
    results: Mapping["SweepPoint", ExperimentResult],
    tolerances: Optional[Tolerances] = None,
) -> ValidationReport:
    """Check per-result invariants and cross-result contracts of a sweep."""
    violations: list[Violation] = []
    for result in results.values():
        violations.extend(check_result(result, tolerances))
    violations.extend(check_contracts(results, tolerances))
    return ValidationReport(
        violations=tuple(violations),
        checked=len(results),
        invariants=RESULT_INVARIANTS + CONTRACT_INVARIANTS,
    )


def validate_outcome(
    outcome: "SweepOutcome", tolerances: Optional[Tolerances] = None
) -> ValidationReport:
    """Validate a :class:`~repro.core.sweep.SweepOutcome`'s results.

    Failed points carry no result to audit; they are reported by the
    outcome itself and do not appear here.
    """
    return validate_results(outcome.results, tolerances)


def live_validate(
    config: ExperimentConfig, tolerances: Optional[Tolerances] = None
) -> tuple[ExperimentResult, ValidationReport]:
    """Run one experiment with every auditor attached.

    Wires a :class:`~repro.validate.audit.RailAudit` into the device's
    power rail and a :class:`~repro.validate.audit.LiveAuditor` into a
    private tracer, runs the experiment in-process, then evaluates the
    live invariants alongside the post-hoc result checkers.
    """
    from repro.core.experiment import run_experiment
    from repro.obs.events import Tracer
    from repro.validate.audit import AUDIT_INVARIANTS, LIVE_INVARIANTS

    subject = config.describe()
    tracer = Tracer(keep_events=False)
    auditor = LiveAuditor(tolerances, subject=subject)
    tracer.subscribe(auditor)
    audit = RailAudit()
    result = run_experiment(config, tracer=tracer, audit=audit)
    violations = check_result(result, tolerances)
    violations.extend(audit.check(tolerances=tolerances, subject=subject))
    violations.extend(auditor.finalize())
    report = ValidationReport(
        violations=tuple(violations),
        checked=1,
        invariants=RESULT_INVARIANTS + AUDIT_INVARIANTS + LIVE_INVARIANTS,
    )
    return result, report


def emit_violations(report: ValidationReport, tracer) -> int:
    """Emit each violation as an ``EventKind.VIOLATION`` event.

    Safe with a :class:`~repro.obs.events.NullTracer` (events are simply
    dropped).  Returns the number of violations emitted.
    """
    from repro.obs.events import EventKind

    for violation in report.violations:
        # obs-guard: cold path (violations only); NullTracer drops events
        tracer.emit(
            EventKind.VIOLATION,
            "validate",
            invariant=violation.invariant,
            subject=violation.subject,
            message=violation.message,
            measured=violation.measured,
            expected=violation.expected,
        )
    return len(report.violations)
