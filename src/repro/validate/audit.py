"""Live invariants: auditing a simulation while it runs.

Two auditors cover what post-hoc result checkers cannot see:

- :class:`RailAudit` shadows every per-component draw update on a
  :class:`~repro.power.rail.PowerRail` into its own per-component step
  traces, then checks **energy conservation**: the rail's ground-truth
  integral must equal the sum of per-component energies over any window.
  The rail maintains its total incrementally (and the hot path is
  inlined), so this is the check that catches a component update
  bypassing or double-counting the trace.
- :class:`LiveAuditor` subscribes to a :class:`~repro.obs.events.Tracer`
  and checks the event stream itself: ``(time, seq)`` ordering, interval
  begin/end balance, and power-state residency summing to the observed
  span.

Both are strictly opt-in: an unattached rail pays one ``None`` test per
draw update (the same guard pattern as the null tracer and the null
fault injector), and results with auditing on are bit-identical to
results without -- auditors only ever *read* simulation state.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.obs.events import INTERVAL_PAIRS, EventKind, SimEvent
from repro.sim.trace import StepTrace
from repro.validate.report import Tolerances, Violation

__all__ = [
    "AUDIT_INVARIANTS",
    "LIVE_INVARIANTS",
    "LiveAuditor",
    "RailAudit",
]

#: Invariants :meth:`RailAudit.check` evaluates.
AUDIT_INVARIANTS = ("energy_conservation", "component_non_negative")

#: Invariants :class:`LiveAuditor` evaluates over an event stream.
LIVE_INVARIANTS = ("event_ordering", "interval_balance", "state_residency")

#: Kinds that close an interval, mapped back to the kind that opens it.
_END_TO_START = {end: start for start, end in INTERVAL_PAIRS.items()}


class RailAudit:
    """Per-component energy accounting against one power rail.

    Attach via :meth:`repro.power.rail.PowerRail.attach_audit` (or the
    ``audit`` parameter of :func:`~repro.core.experiment.run_experiment`).
    From then on every draw update lands both on the rail's total trace
    and in this audit's per-component trace; :meth:`check` compares the
    two integrals.
    """

    def __init__(self) -> None:
        self._rail = None
        self._traces: dict[str, StepTrace] = {}
        self._t0 = 0.0

    @property
    def attached(self) -> bool:
        return self._rail is not None

    def attach(self, rail) -> None:
        """Bind to ``rail``, snapshotting its current component draws.

        Components registered before attachment start their shadow trace
        at the attachment time with their current draw; components that
        appear later start at zero (they drew nothing before their first
        update).
        """
        if self._rail is not None:
            raise RuntimeError("RailAudit is already attached to a rail")
        self._rail = rail
        self._t0 = rail.engine.now
        self._traces = {
            component: StepTrace(t0=self._t0, initial=watts)
            for component, watts in rail.components().items()
        }

    def record(self, component: str, watts: float, t: float) -> None:
        """Shadow one draw update (called by the rail's hot path)."""
        trace = self._traces.get(component)
        if trace is None:
            trace = StepTrace(t0=self._t0, initial=0.0)
            self._traces[component] = trace
        trace.set(t, watts)

    def component_energy(self, t_start: float, t_end: float) -> dict[str, float]:
        """Per-component energy (J) over a window, sorted by name."""
        return {
            component: self._traces[component].integrate(t_start, t_end)
            for component in sorted(self._traces)
        }

    def check(
        self,
        t_start: Optional[float] = None,
        t_end: Optional[float] = None,
        tolerances: Optional[Tolerances] = None,
        subject: str = "rail",
    ) -> list[Violation]:
        """Check conservation and non-negativity over a window.

        Defaults to the span from attachment to the engine's current
        time.  Returns the violations found.
        """
        if self._rail is None:
            raise RuntimeError("RailAudit.check before attach")
        tol = tolerances if tolerances is not None else Tolerances()
        t0 = self._t0 if t_start is None else t_start
        t1 = self._rail.engine.now if t_end is None else t_end
        if t1 <= t0:
            return []
        violations: list[Violation] = []
        rail_energy = self._rail.trace.integrate(t0, t1)
        component_sum = math.fsum(
            trace.integrate(t0, t1)
            for _name, trace in sorted(self._traces.items())
        )
        slack = tol.conservation_abs_j + tol.conservation_rel * max(
            abs(rail_energy), abs(component_sum)
        )
        if abs(rail_energy - component_sum) > slack:
            violations.append(
                Violation(
                    "energy_conservation",
                    subject,
                    f"rail integral {rail_energy:.9g} J disagrees with the "
                    f"sum of per-component energies {component_sum:.9g} J "
                    f"over [{t0:.6g}, {t1:.6g}] s",
                    rail_energy,
                    component_sum,
                )
            )
        for component in sorted(self._traces):
            low = self._traces[component].min(t0, t1)
            if low < 0:
                violations.append(
                    Violation(
                        "component_non_negative",
                        f"{subject}/{component}",
                        f"component draw dips to {low:.6g} W",
                        low,
                        0.0,
                    )
                )
        return violations


class _Residency:
    """Minimal power-state residency ledger for one component."""

    __slots__ = ("first_time", "last_time", "state", "durations")

    def __init__(self, time: float, state: str) -> None:
        self.first_time = time
        self.last_time = time
        self.state = state
        self.durations: dict[str, float] = {}

    def transition(self, time: float, state: str) -> None:
        self.durations[self.state] = (
            self.durations.get(self.state, 0.0) + (time - self.last_time)
        )
        self.last_time = time
        self.state = state

    def total(self, end_time: float) -> float:
        tail = max(0.0, end_time - self.last_time)
        return math.fsum(self.durations.values()) + tail


class LiveAuditor:
    """Tracer subscriber checking the event stream's own invariants.

    Subscribe to a :class:`~repro.obs.events.Tracer` before the run::

        tracer = Tracer(keep_events=False)
        auditor = LiveAuditor()
        tracer.subscribe(auditor)
        result = run_experiment(config, tracer=tracer)
        violations = auditor.finalize(end_time=...)

    Streaming checks (reported as they happen): ``(time, seq)`` total
    order, and interval ``*_END`` events with no matching open
    ``*_START``.  :meth:`finalize` adds power-state residency: per
    component, state durations must sum to the span from its first
    ``POWER_STATE`` event to the end time.

    A fresh scope (``set_scope``) restarts the clock epoch, mirroring
    :class:`~repro.obs.metrics.MetricsCollector`: sweeps reuse one
    tracer across engines that each start at time zero.
    """

    def __init__(
        self, tolerances: Optional[Tolerances] = None, subject: str = "trace"
    ) -> None:
        self.tolerances = tolerances if tolerances is not None else Tolerances()
        self.subject = subject
        self.violations: list[Violation] = []
        self.events_seen = 0
        self._last_time = -math.inf
        self._last_seq = 0
        self._open: dict[tuple[str, EventKind], int] = {}
        self._residency: dict[str, _Residency] = {}

    def __call__(self, event: SimEvent) -> None:
        self.events_seen += 1
        if event.seq <= self._last_seq:
            self.violations.append(
                Violation(
                    "event_ordering",
                    self.subject,
                    f"sequence number went backwards: {event.seq} after "
                    f"{self._last_seq}",
                    float(event.seq),
                    float(self._last_seq),
                )
            )
        self._last_seq = max(self._last_seq, event.seq)
        if event.kind is EventKind.MARK and "scope" in event.fields:
            # New scope: the next engine restarts simulated time at zero.
            # The MARK itself is stamped by whichever engine was bound
            # when the scope changed (usually the *previous* point's end
            # time), so its timestamp must not seed the new epoch.
            self._last_time = -math.inf
            self._open.clear()
            self._residency.clear()
            return
        if event.time < self._last_time:
            self.violations.append(
                Violation(
                    "event_ordering",
                    self.subject,
                    f"time went backwards without a scope change: "
                    f"{event.time!r} after {self._last_time!r} "
                    f"({event.kind.value} from {event.component})",
                    event.time,
                    self._last_time,
                )
            )
        self._last_time = max(self._last_time, event.time)

        kind = event.kind
        if kind in INTERVAL_PAIRS:
            key = (event.component, kind)
            self._open[key] = self._open.get(key, 0) + 1
        elif kind in _END_TO_START:
            key = (event.component, _END_TO_START[kind])
            pending = self._open.get(key, 0)
            if pending <= 0:
                self.violations.append(
                    Violation(
                        "interval_balance",
                        f"{self.subject}/{event.component}",
                        f"{kind.value} at t={event.time:.6g} with no open "
                        f"{_END_TO_START[kind].value}",
                        0.0,
                        1.0,
                    )
                )
            else:
                self._open[key] = pending - 1
        elif kind is EventKind.POWER_STATE:
            state = str(event.fields.get("state", "?"))
            ledger = self._residency.get(event.component)
            if ledger is None:
                self._residency[event.component] = _Residency(
                    event.time, state
                )
            else:
                ledger.transition(event.time, state)

    def finalize(self, end_time: Optional[float] = None) -> list[Violation]:
        """Run end-of-stream checks and return every violation found.

        Args:
            end_time: Final simulated time of the run; defaults to the
                last event's time.  Residency is summed against the span
                from each component's first power-state event to here.
        """
        violations = list(self.violations)
        end = self._last_time if end_time is None else end_time
        if end == -math.inf:
            return violations
        tol = self.tolerances
        for component in sorted(self._residency):
            ledger = self._residency[component]
            span = end - ledger.first_time
            if span < 0:
                continue  # end_time predates this component's events
            total = ledger.total(end)
            if abs(total - span) > tol.residency_abs_s:
                violations.append(
                    Violation(
                        "state_residency",
                        f"{self.subject}/{component}",
                        f"power-state residencies sum to {total:.9g} s "
                        f"over a {span:.9g} s span",
                        total,
                        span,
                    )
                )
        return violations
