"""Per-device power envelopes derived from the catalog configuration.

Every simulated component draws a configured wattage while active, so the
device's instantaneous total is bounded by the sum of every component's
worst case -- a bound computable *from the config alone*, without running
anything.  A measured sample outside the envelope means some component
drew power its configuration does not explain (or went negative), which
is exactly the class of silent power-model bug the validation subsystem
exists to catch.

The bounds are deliberately loose in the safe direction: the peak assumes
every die programs at full pulse current while every channel and the host
link stream simultaneously, which real schedules rarely reach.  The floor
is the smallest resident draw any power state can explain.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.hdd_drive import HddConfig
from repro.devices.link import LinkPowerMode
from repro.devices.ssd import SsdConfig

__all__ = ["PowerEnvelope", "power_envelope"]


@dataclass(frozen=True)
class PowerEnvelope:
    """Configuration-derived bounds on a device's instantaneous power.

    Attributes:
        floor_w: Smallest resident draw any configured state explains
            (deepest idle / standby).  Ground-truth power never sits
            below it.
        peak_w: Sum of every component's worst-case simultaneous draw.
            Ground-truth power never exceeds it.
    """

    floor_w: float
    peak_w: float

    def __post_init__(self) -> None:
        if not 0 <= self.floor_w <= self.peak_w:
            raise ValueError(
                f"envelope needs 0 <= floor <= peak, got "
                f"[{self.floor_w!r}, {self.peak_w!r}]"
            )


def _ssd_envelope(config: SsdConfig) -> PowerEnvelope:
    geometry = config.geometry
    nand = config.nand_power
    # Worst per-die draw: the program pulse concentrates the program
    # energy into pulse_ratio x p_program for a fraction of the op.
    die_peak = max(
        nand.p_read,
        nand.p_program * config.program_pulse_ratio,
        nand.p_erase,
    )
    phy_active = config.link_power_table.phy_power_w[LinkPowerMode.ACTIVE]
    resident_peak = max(
        config.controller.idle_power_w + config.dram_power_w + phy_active,
        max((ps.idle_power_w for ps in config.power_states), default=0.0),
    )
    peak = (
        resident_peak
        + config.controller.cores * config.controller.core_active_power_w
        + config.link_transfer_power_w
        + geometry.channels * config.channel_transfer_power_w
        + geometry.total_dies * (nand.p_idle + die_peak)
        + config.power_wave_w
    )
    # Deepest resident draw: the controller/DRAM floor with the cheapest
    # link mode, or a non-operational NVMe state's declared idle power,
    # whichever is lower.
    floors = [
        config.controller.idle_power_w
        + config.dram_power_w
        + min(config.link_power_table.phy_power_w.values())
    ]
    floors.extend(ps.idle_power_w for ps in config.power_states)
    return PowerEnvelope(floor_w=min(floors), peak_w=peak)


def _hdd_envelope(config: HddConfig) -> PowerEnvelope:
    phy_table = config.link_power_table.phy_power_w
    peak = (
        config.electronics_power_w
        # Spin-up draws rotation + surge simultaneously (motor model).
        + config.spindle.rotation_power_w
        + config.spindle.spinup_surge_w
        + config.seek_power_w
        + config.transfer_power_w
        + phy_table[LinkPowerMode.ACTIVE]
        + config.link_transfer_power_w
    )
    # Standby: spindle stopped, heads parked -- electronics plus the
    # cheapest link mode is all that remains.
    floor = config.electronics_power_w + min(phy_table.values())
    return PowerEnvelope(floor_w=floor, peak_w=peak)


def power_envelope(config: SsdConfig | HddConfig) -> PowerEnvelope:
    """Compute the instantaneous-power envelope of one device config."""
    if isinstance(config, HddConfig):
        return _hdd_envelope(config)
    if isinstance(config, SsdConfig):
        return _ssd_envelope(config)
    raise TypeError(f"unsupported device config type: {type(config).__name__}")
