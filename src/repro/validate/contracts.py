"""Cross-result monotonicity contracts over a sweep.

Single-result checkers cannot see relationships *between* operating
points, but the paper's whole premise depends on two of them:

- **Cap monotonicity.**  A tighter power cap buys power savings by
  curtailing work; it must never yield *higher* throughput than a looser
  cap at the same workload shape (pattern, chunk size, queue depth).
- **Queue-depth monotonicity.**  More outstanding IOs can only expose
  more parallelism; at a fixed chunk size and power state, raising the
  queue depth must not lower throughput -- *unless the power budget is
  the limiter*.  Under a binding cap, a deeper queue burns more
  controller and link power, which comes straight out of the NAND
  admission budget, so throughput can legitimately fall with depth
  (the paper's Fig. 9 power-versus-QD mechanism).  Points whose mean
  power sits within ``Tolerances.cap_binding_fraction`` of the intended
  cap are therefore exempt from this contract.

Each point in a sweep draws independent noise (per-point seeds), so both
contracts carry a relative slack: a genuine inversion -- the kind a
scheduling or governor bug produces -- clears it by a wide margin, while
seed-to-seed jitter does not.  The queue-depth contract uses the wider
``Tolerances.qd_slack`` because its endpoints are independent short-run
samples of what may be a flat curve; ``Tolerances`` documents the noise
measurement behind the default.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.core.experiment import ExperimentResult
from repro.core.sweep import SweepPoint
from repro.validate.report import Tolerances, Violation

__all__ = ["CONTRACT_INVARIANTS", "check_contracts"]

#: Invariants :func:`check_contracts` evaluates.
CONTRACT_INVARIANTS = ("cap_monotonicity", "qd_monotonicity")


def _cap_of(result: ExperimentResult) -> float:
    """Effective cap for ordering: uncapped compares as infinitely loose."""
    return float("inf") if result.cap_w is None else result.cap_w


def _check_cap_monotonicity(
    results: Mapping[SweepPoint, ExperimentResult], tol: Tolerances
):
    groups: dict[tuple, list[tuple[SweepPoint, ExperimentResult]]] = {}
    for point, result in results.items():
        key = (point.pattern, point.block_size, point.iodepth)
        groups.setdefault(key, []).append((point, result))
    for group in groups.values():
        # Loosest cap first; every tighter point must not beat a looser one.
        group.sort(key=lambda pair: -_cap_of(pair[1]))
        for i, (loose_point, loose) in enumerate(group):
            for tight_point, tight in group[i + 1:]:
                if _cap_of(tight) >= _cap_of(loose):
                    continue  # equal caps carry no ordering obligation
                bound = loose.throughput_bps * (1.0 + tol.monotonicity_slack)
                if tight.throughput_bps > bound:
                    yield Violation(
                        "cap_monotonicity",
                        f"{tight_point.describe()} vs {loose_point.describe()}",
                        f"cap {_cap_of(tight):.4g} W reaches "
                        f"{tight.throughput_mib_s:.1f} MiB/s, beating the "
                        f"looser cap {_cap_of(loose):.4g} W at "
                        f"{loose.throughput_mib_s:.1f} MiB/s by more than "
                        f"{tol.monotonicity_slack:.0%}",
                        tight.throughput_bps,
                        bound,
                    )


def _power_limited(result: ExperimentResult, tol: Tolerances) -> bool:
    """Is the cap, not the workload, the throughput limiter at this point?

    When mean power sits close to the intended cap the governor is
    actively curtailing NAND work, and queue depth stops being a pure
    parallelism knob: a deeper queue spends more of the fixed budget on
    controller and link draw, so throughput may *fall* with depth.  That
    is the paper's operating regime, not a bug, so the QD contract must
    not apply there.
    """
    if result.cap_w is None or result.cap_w <= 0:
        return False
    return result.true_mean_power_w >= tol.cap_binding_fraction * result.cap_w


def _check_qd_monotonicity(
    results: Mapping[SweepPoint, ExperimentResult], tol: Tolerances
):
    groups: dict[tuple, list[tuple[SweepPoint, ExperimentResult]]] = {}
    for point, result in results.items():
        key = (point.pattern, point.block_size, point.power_state)
        groups.setdefault(key, []).append((point, result))
    for group in groups.values():
        group.sort(key=lambda pair: pair[0].iodepth)
        for i, (shallow_point, shallow) in enumerate(group):
            for deep_point, deep in group[i + 1:]:
                if deep_point.iodepth <= shallow_point.iodepth:
                    continue
                if _power_limited(shallow, tol) or _power_limited(deep, tol):
                    continue
                bound = shallow.throughput_bps * (1.0 - tol.qd_slack)
                if deep.throughput_bps < bound:
                    yield Violation(
                        "qd_monotonicity",
                        f"{deep_point.describe()} vs {shallow_point.describe()}",
                        f"qd={deep_point.iodepth} reaches "
                        f"{deep.throughput_mib_s:.1f} MiB/s, below "
                        f"qd={shallow_point.iodepth} at "
                        f"{shallow.throughput_mib_s:.1f} MiB/s by more than "
                        f"{tol.qd_slack:.0%}",
                        deep.throughput_bps,
                        bound,
                    )


def check_contracts(
    results: Mapping[SweepPoint, ExperimentResult],
    tolerances: Optional[Tolerances] = None,
) -> list[Violation]:
    """Check the monotonicity contracts over one sweep's results."""
    tol = tolerances if tolerances is not None else Tolerances()
    violations = list(_check_cap_monotonicity(results, tol))
    violations.extend(_check_qd_monotonicity(results, tol))
    return violations
