"""Violations, tolerances, and the validation report.

A checker never raises on a physics inconsistency -- it returns
:class:`Violation` records so a sweep can report *every* broken invariant
at once.  :class:`ValidationReport` aggregates them; callers that want
fail-fast semantics (``run_sweep`` with ``validate=True``, the ``repro
validate`` CLI) raise :class:`InvariantViolationError` on a non-empty
report.

Tolerances are explicit and centralized (:class:`Tolerances`): every
comparison in :mod:`repro.validate` names which knob it uses, and
DESIGN.md section 11 documents why each default is what it is.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = [
    "InvariantViolationError",
    "Tolerances",
    "ValidationReport",
    "Violation",
]


@dataclass(frozen=True)
class Violation:
    """One broken invariant.

    Attributes:
        invariant: Which invariant failed (stable snake_case identifier,
            e.g. ``"energy_consistency"``, ``"cap_monotonicity"``).
        subject: What was being checked -- an experiment description or a
            sweep-point pair.
        message: Human-readable account of the disagreement.
        measured: The value the simulation produced.
        expected: The bound or reference value it violated.
    """

    invariant: str
    subject: str
    message: str
    measured: float
    expected: float

    def describe(self) -> str:
        return f"[{self.invariant}] {self.subject}: {self.message}"


@dataclass(frozen=True)
class Tolerances:
    """Every numeric slack the validators use, in one value object.

    Attributes:
        conservation_rel: Relative slack between the rail integral and the
            sum of per-component energies (float-drift only: the rail
            maintains its total incrementally, so the two sums see the
            same draws through different float addition orders).
        conservation_abs_j: Absolute floor for the same comparison, for
            near-zero-energy windows.
        energy_rel: Relative slack between a summary's ``energy_j`` and
            ``mean_w * duration_s`` (exact for the uniform sampler; the
            slack covers only float round-off).
        meter_rel: Relative slack between measured and ground-truth mean
            power.  Dominated by as-built part tolerances of the shunt
            and amplifier (drawn once per meter), not by per-sample
            noise.
        envelope_margin_w: Headroom added to the catalog worst-case
            envelope before flagging a measured maximum.  Covers meter
            gain error overshooting the true instantaneous peak.
        littles_rel: Relative slack on Little's law after the computable
            window-edge bound has been added.
        negative_w: How far below zero a measured power sample may sit
            before it is a violation (ADC noise can dip a near-zero
            signal slightly negative; the ground truth never may).
        residency_abs_s: Absolute slack when power-state residencies are
            summed against the observed span.
        monotonicity_slack: Relative slack on the cap-monotonicity
            contract.  Covers run-to-run noise between independently-
            seeded points; a genuine inversion (e.g. a tighter cap
            *helping* throughput) clears it easily.
        qd_slack: Relative slack on the queue-depth contract.  Wider
            than ``monotonicity_slack`` because the compared points are
            *independent seed draws* of short runs: at QUICK scale an
            HDD point covers only a few hundred seeks, so two points on
            a genuinely flat QD curve can sit ~12% either side of the
            mean -- a ~25% pairwise gap with zero true slope.  A real
            scheduling regression (throughput halving as depth grows)
            still clears this by a wide margin.
        cap_binding_fraction: Mean power above this fraction of the
            intended cap marks a point as *power-limited*, which exempts
            it from the queue-depth contract -- under a binding cap the
            trend legitimately inverts (see :mod:`.contracts`).
        budget_rel: Relative slack on the policy budget-tracking
            invariant (measured trailing mean vs. the scheduled
            budget).  Wide because the sensed window trails the budget
            and the device's program-intensity wave rides on the mean.
        budget_abs_w: Absolute companion slack for the same comparison;
            covers the duty-cycle ripple of a governed device, which is
            watts-sized regardless of how tight the budget is.
        fastpath_rel: Relative slack on the fastpath splice ledger
            (replicated energy vs. ``n_windows x`` the template window's
            energy, advanced time vs. ``n_windows x`` the window span).
            Replication is arithmetic, not re-simulation, so this covers
            only float summation order.
    """

    conservation_rel: float = 1e-6
    conservation_abs_j: float = 1e-9
    energy_rel: float = 1e-9
    meter_rel: float = 0.05
    envelope_margin_w: float = 0.0
    littles_rel: float = 0.05
    negative_w: float = 0.0
    residency_abs_s: float = 1e-9
    monotonicity_slack: float = 0.10
    qd_slack: float = 0.25
    cap_binding_fraction: float = 0.90
    budget_rel: float = 0.10
    budget_abs_w: float = 1.5
    fastpath_rel: float = 1e-9

    def __post_init__(self) -> None:
        for f in fields(self):
            if getattr(self, f.name) < 0:
                raise ValueError(f"{f.name} must be non-negative")


#: Default tolerances; ``repro validate`` and ``ExecutionOptions(validate=
#: True)`` use these unless a caller passes its own.
DEFAULT_TOLERANCES = Tolerances()


@dataclass(frozen=True)
class ValidationReport:
    """Aggregated outcome of a validation pass.

    Attributes:
        violations: Every broken invariant found, in check order.
        checked: How many experiment results were audited.
        invariants: The invariant identifiers that ran (so "zero
            violations" is distinguishable from "nothing checked").
    """

    violations: tuple[Violation, ...]
    checked: int
    invariants: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    def of_invariant(self, invariant: str) -> tuple[Violation, ...]:
        return tuple(v for v in self.violations if v.invariant == invariant)

    def render(self) -> str:
        """Human-readable report, one line per violation."""
        header = (
            f"validated {self.checked} result(s) against "
            f"{len(self.invariants)} invariant(s): "
        )
        if self.ok:
            return header + "all hold"
        lines = [header + f"{len(self.violations)} violation(s)"]
        lines.extend(f"  {v.describe()}" for v in self.violations)
        return "\n".join(lines)


class InvariantViolationError(Exception):
    """A validation pass found broken physics invariants.

    Carries the full :class:`ValidationReport` so callers can render or
    triage every violation, not just the first.
    """

    def __init__(self, report: ValidationReport) -> None:
        self.report = report
        super().__init__(report.render())
