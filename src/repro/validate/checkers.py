"""Post-hoc physics invariants over one :class:`ExperimentResult`.

Each checker inspects only what the result already carries -- the power
summary, the ground-truth rail mean, the raw IO records -- so the whole
set runs on results computed anywhere (worker processes, the on-disk
cache) with no access to the live simulation.  Live-only invariants
(per-component energy conservation, event ordering, power-state
residency) are in :mod:`repro.validate.audit`.

Every checker returns :class:`~repro.validate.report.Violation` records
rather than raising, so one pass reports every broken invariant.
"""

from __future__ import annotations

from typing import Optional

from repro.core.experiment import ExperimentResult
from repro.devices.catalog import DEVICE_PRESETS, DeviceConfig
from repro.validate.envelope import power_envelope
from repro.validate.report import Tolerances, Violation

__all__ = ["RESULT_INVARIANTS", "check_result"]

#: Invariants :func:`check_result` evaluates, in order.
RESULT_INVARIANTS = (
    "window_sanity",
    "non_negative_power",
    "energy_consistency",
    "meter_consistency",
    "power_envelope",
    "littles_law",
    "cap_adherence",
    "latency_ordering",
    "budget_tracking",
    "budget_safety_under_faults",
    "watchdog_liveness",
    "safe_mode_entry",
    "slo_adherence",
    "fastpath_equivalence",
)


def _device_config(result: ExperimentResult) -> DeviceConfig:
    device = result.config.device
    if isinstance(device, str):
        return DEVICE_PRESETS[device]()
    return device


def _check_window_sanity(result: ExperimentResult, tol: Tolerances):
    job = result.job
    if job.end_time < job.start_time:
        yield Violation(
            "window_sanity",
            result.config.describe(),
            f"job ends at {job.end_time!r} before it starts at "
            f"{job.start_time!r}",
            job.end_time,
            job.start_time,
        )
    if not job.start_time <= job.measure_start <= job.end_time:
        yield Violation(
            "window_sanity",
            result.config.describe(),
            f"measure_start {job.measure_start!r} outside the job span "
            f"[{job.start_time!r}, {job.end_time!r}]",
            job.measure_start,
            job.start_time,
        )
    if result.power.duration_s <= 0 or result.power.n_samples < 1:
        yield Violation(
            "window_sanity",
            result.config.describe(),
            f"degenerate power summary: {result.power.n_samples} samples "
            f"over {result.power.duration_s!r} s",
            result.power.duration_s,
            0.0,
        )
    for record in job.records:
        if record.complete_time < record.submit_time:
            yield Violation(
                "window_sanity",
                result.config.describe(),
                f"IO completes at {record.complete_time!r} before its "
                f"submission at {record.submit_time!r}",
                record.latency,
                0.0,
            )
            break  # one representative record is enough


def _check_non_negative(result: ExperimentResult, tol: Tolerances):
    subject = result.config.describe()
    if result.power.min_w < -tol.negative_w:
        yield Violation(
            "non_negative_power",
            subject,
            f"measured power dips to {result.power.min_w:.6g} W "
            f"(allowed floor {-tol.negative_w:.6g} W)",
            result.power.min_w,
            -tol.negative_w,
        )
    if result.true_mean_power_w < 0:
        yield Violation(
            "non_negative_power",
            subject,
            f"ground-truth mean power is negative: "
            f"{result.true_mean_power_w:.6g} W",
            result.true_mean_power_w,
            0.0,
        )
    if result.power.energy_j < -tol.negative_w * result.power.duration_s:
        yield Violation(
            "non_negative_power",
            subject,
            f"negative energy: {result.power.energy_j:.6g} J",
            result.power.energy_j,
            0.0,
        )


def _check_energy(result: ExperimentResult, tol: Tolerances):
    """``energy_j`` must equal ``mean_w * duration_s``.

    The uniform sampler makes this an identity (the Riemann sum *is*
    ``mean * n / rate``); any drift means the summary's energy and mean
    came from different data.
    """
    power = result.power
    expected = power.mean_w * power.duration_s
    slack = tol.energy_rel * max(abs(expected), abs(power.energy_j), 1e-12)
    if abs(power.energy_j - expected) > slack:
        yield Violation(
            "energy_consistency",
            result.config.describe(),
            f"summary energy {power.energy_j:.6g} J disagrees with "
            f"mean x duration = {expected:.6g} J",
            power.energy_j,
            expected,
        )


def _check_meter(result: ExperimentResult, tol: Tolerances):
    """Measured mean power must track the ground-truth rail mean.

    The measurement chain has as-built part tolerances (shunt, amplifier
    gain) plus per-sample noise; ``meter_rel`` bounds the total.  A gap
    beyond it means the meter measured a different window than the rail
    integral, or the rail trace itself is wrong.
    """
    true_mean = result.true_mean_power_w
    if true_mean <= 0:
        return  # the non-negativity checker reports this case
    if result.meter_relative_error > tol.meter_rel:
        yield Violation(
            "meter_consistency",
            result.config.describe(),
            f"measured mean {result.power.mean_w:.4f} W is "
            f"{result.meter_relative_error:.2%} from ground truth "
            f"{true_mean:.4f} W (tolerance {tol.meter_rel:.2%})",
            result.power.mean_w,
            true_mean,
        )


def _check_envelope(result: ExperimentResult, tol: Tolerances):
    envelope = power_envelope(_device_config(result))
    subject = result.config.describe()
    # Measured peaks see meter gain error on top of the true peak.
    peak_bound = (
        envelope.peak_w * (1.0 + tol.meter_rel) + tol.envelope_margin_w
    )
    if result.power.max_w > peak_bound:
        yield Violation(
            "power_envelope",
            subject,
            f"measured peak {result.power.max_w:.4f} W exceeds the "
            f"catalog envelope {envelope.peak_w:.4f} W "
            f"(+{tol.meter_rel:.0%} meter margin)",
            result.power.max_w,
            peak_bound,
        )
    # The ground-truth mean is noise-free: it must sit inside the
    # envelope exactly (a mean cannot exceed the instantaneous bound).
    if not envelope.floor_w - 1e-9 <= result.true_mean_power_w <= envelope.peak_w + 1e-9:
        yield Violation(
            "power_envelope",
            subject,
            f"ground-truth mean {result.true_mean_power_w:.4f} W outside "
            f"the catalog envelope "
            f"[{envelope.floor_w:.4f}, {envelope.peak_w:.4f}] W",
            result.true_mean_power_w,
            envelope.peak_w,
        )


def _check_littles_law(result: ExperimentResult, tol: Tolerances):
    """Little's law: mean outstanding IOs = arrival rate x mean latency.

    Both sides are computed from the same records over the steady-state
    window, which makes the law an identity up to a window-edge term:
    IOs submitted before the window but completing inside it contribute
    their *full* latency to the right-hand side but only their in-window
    part to the left.  At most ``iodepth`` records straddle the edge,
    each off by at most the maximum latency, so the bound is computable
    -- ``littles_rel`` only covers float round-off on top.
    """
    job = result.job
    t0, t1 = job.measure_window
    window = t1 - t0
    if window <= 0 or not job.records:
        return
    measured = [r for r in job.records if r.complete_time >= t0]
    if not measured:
        return
    # Left side: exact time-average of outstanding IOs over the window.
    in_system = sum(
        max(0.0, min(r.complete_time, t1) - max(r.submit_time, t0))
        for r in job.records
    )
    mean_outstanding = in_system / window
    # Right side: throughput x latency from the completed-in-window set.
    latencies = [r.latency for r in measured]
    rate_times_latency = sum(latencies) / window
    edge_bound = job.spec.iodepth * max(latencies) / window
    slack = edge_bound + tol.littles_rel * max(
        mean_outstanding, rate_times_latency, 1e-9
    )
    subject = result.config.describe()
    if abs(mean_outstanding - rate_times_latency) > slack:
        yield Violation(
            "littles_law",
            subject,
            f"mean queue depth {mean_outstanding:.4f} disagrees with "
            f"throughput x latency = {rate_times_latency:.4f} "
            f"(edge bound {edge_bound:.4f})",
            mean_outstanding,
            rate_times_latency,
        )
    if mean_outstanding > job.spec.iodepth * (1.0 + tol.littles_rel):
        yield Violation(
            "littles_law",
            subject,
            f"mean queue depth {mean_outstanding:.4f} exceeds the "
            f"configured iodepth {job.spec.iodepth}",
            mean_outstanding,
            float(job.spec.iodepth),
        )


def _check_cap(result: ExperimentResult, tol: Tolerances):
    """An intended power cap must hold unless a governor failure fired."""
    governor_failed = (
        result.faults is not None and result.faults.governor_failed
    )
    if result.cap_w is None or governor_failed:
        return
    if getattr(result.config, "policy", None) is not None:
        # Under an online policy the cap is *time-varying*: cap_w is
        # only the last commanded value, so comparing the whole-window
        # mean against it mis-flags legitimate runs (e.g. a generous
        # phase followed by a tight final cap).  The budget_tracking
        # invariant holds policy runs to their schedule instead.
        return
    if not result.cap_respected:
        yield Violation(
            "cap_adherence",
            result.config.describe(),
            f"ground-truth mean {result.true_mean_power_w:.4f} W exceeds "
            f"the intended cap {result.cap_w:.4f} W with no governor "
            "failure injected",
            result.true_mean_power_w,
            result.cap_w,
        )


def _check_latency_ordering(result: ExperimentResult, tol: Tolerances):
    job = result.job
    if not [r for r in job.records if r.complete_time >= job.measure_start]:
        return
    stats = result.latency()
    subject = result.config.describe()
    if stats.min < 0:
        yield Violation(
            "latency_ordering",
            subject,
            f"negative latency: min {stats.min:.6g} s",
            stats.min,
            0.0,
        )
    quantile_chain = (
        ("min", stats.min),
        ("p50", stats.p50),
        ("p95", stats.p95),
        ("p99", stats.p99),
        ("p999", stats.p999),
        ("max", stats.max),
    )
    for (lo_name, lo), (hi_name, hi) in zip(quantile_chain, quantile_chain[1:]):
        if lo > hi * (1 + 1e-12) + 1e-15:
            yield Violation(
                "latency_ordering",
                subject,
                f"{lo_name} {lo:.6g} s exceeds {hi_name} {hi:.6g} s",
                lo,
                hi,
            )
    if not stats.min - 1e-15 <= stats.mean <= stats.max + 1e-15:
        yield Violation(
            "latency_ordering",
            subject,
            f"mean latency {stats.mean:.6g} s outside "
            f"[{stats.min:.6g}, {stats.max:.6g}] s",
            stats.mean,
            stats.max,
        )


def _control_plane_faulted(result: ExperimentResult) -> bool:
    """Whether the run's fault plan distorts sensing or actuation.

    Duck-typed off the config's fault plan (this module never imports
    :mod:`repro.faults`): the plan is only consulted for the presence of
    its ``sensor``/``actuator`` specs.
    """
    plan = getattr(result.config, "faults", None)
    if plan is None:
        return False
    return (
        getattr(plan, "sensor", None) is not None
        or getattr(plan, "actuator", None) is not None
    )


def _check_budget_tracking(result: ExperimentResult, tol: Tolerances):
    """A policy must track its budget schedule.

    Two obligations, checked over the policy's retained samples (the
    summary is duck-typed -- this module never imports
    :mod:`repro.policy`):

    - The *commanded* target may never exceed the instantaneous budget
      (beyond the actuator floor, which the device cannot go below).
      This holds even under an injected governor failure: the command
      side must stay sane whether or not the device still listens.
    - The *measured* trailing mean must sit under the most generous
      budget the schedule offered over the trailing measurement-plus-
      convergence span.  Skipped under governor failure (the actuator
      is dead) and any control-plane fault (the recorded measurement is
      whatever the faulted meter *claimed* -- holding a lying number to
      the schedule proves nothing; ``budget_safety_under_faults`` holds
      the command side instead), while the target is floor-pinned
      (mechanism limit, not a controller bug), and during the startup
      transient.
    """
    policy = getattr(result, "policy", None)
    if policy is None:
        return
    spec = policy.spec
    schedule = spec.budget
    floor_w = policy.floor_w
    subject = result.config.describe()
    governor_failed = (
        result.faults is not None and result.faults.governor_failed
    )
    faulted_control = governor_failed or _control_plane_faulted(result)
    # Convergence span: the sensing window plus the ticks the controller
    # needs to react, with the runtime's +-10% cadence jitter bounded by
    # the 1.25 factor.
    settle_s = spec.window_s + spec.settle_intervals * spec.interval_s * 1.25
    for t, budget_w, target_w, measured_w in policy.samples:
        target_bound = max(budget_w, floor_w) + 1e-6
        if target_w > target_bound:
            yield Violation(
                "budget_tracking",
                subject,
                f"commanded target {target_w:.4f} W at t={t:.6g} s exceeds "
                f"the instantaneous budget {budget_w:.4f} W (actuator "
                f"floor {floor_w:.4f} W)",
                target_w,
                target_bound,
            )
            continue
        if faulted_control:
            continue
        if target_w <= floor_w + 1e-9:
            continue
        if t < settle_s:
            continue
        # The trailing mean lags the schedule: hold it to the *highest*
        # budget in the trailing convergence span, not the instant value.
        allowed = max(
            schedule.watts_at(t - settle_s + k * settle_s / 6.0)
            for k in range(7)
        )
        bound = allowed * (1.0 + tol.budget_rel) + tol.budget_abs_w
        if measured_w > bound:
            yield Violation(
                "budget_tracking",
                subject,
                f"measured trailing mean {measured_w:.4f} W at "
                f"t={t:.6g} s exceeds the budget {allowed:.4f} W "
                f"(+{tol.budget_rel:.0%} and {tol.budget_abs_w:.2f} W "
                "slack) outside any convergence window",
                measured_w,
                bound,
            )


def _check_budget_safety_under_faults(
    result: ExperimentResult, tol: Tolerances
):
    """Mid-incident, the *commanded* cap must still respect the budget.

    This is the robustness contract the watchdog exists to keep: no
    matter what the meter claims or the actuator drops, the controller
    (or the safe mode standing in for it) may never *ask* for more than
    the instantaneous budget (beyond the actuator floor).  It runs only
    on runs whose control plane is actually under attack -- sensor or
    actuator faults, or a governor failure -- and, unlike
    ``budget_tracking``, grants no exemptions: not for the incident, not
    for the transient.
    """
    policy = getattr(result, "policy", None)
    if policy is None:
        return
    governor_failed = (
        result.faults is not None and result.faults.governor_failed
    )
    if not (governor_failed or _control_plane_faulted(result)):
        return
    floor_w = policy.floor_w
    subject = result.config.describe()
    for t, budget_w, target_w, _measured_w in policy.samples:
        bound = max(budget_w, floor_w) + 1e-6
        if target_w > bound:
            yield Violation(
                "budget_safety_under_faults",
                subject,
                f"commanded cap {target_w:.4f} W at t={t:.6g} s exceeds "
                f"the instantaneous budget {budget_w:.4f} W mid-incident "
                f"(actuator floor {floor_w:.4f} W)",
                target_w,
                bound,
            )
            return  # one representative sample is enough


def _check_watchdog_liveness(result: ExperimentResult, tol: Tolerances):
    """An armed watchdog must notice a sensor dropout it can observe.

    Fires only when the run provably gave the watchdog a detectable
    incident: meter-path sensing, a dropout window longer than the
    staleness threshold, and enough of the window inside the run for
    at least three (jittered) decision ticks to land past the
    threshold.  Under those conditions zero trips means the watchdog is
    not live.
    """
    policy = getattr(result, "policy", None)
    if policy is None:
        return
    spec = policy.spec
    wd = getattr(spec, "watchdog", None)
    if wd is None or getattr(spec, "sense", "rail") != "meter":
        return
    plan = getattr(result.config, "faults", None)
    sensor = getattr(plan, "sensor", None) if plan is not None else None
    if sensor is None or sensor.dropout_start_s is None:
        return
    if sensor.dropout_duration_s <= wd.stale_after_s:
        return  # readings never get stale enough to trip
    # Three worst-case-jittered ticks must fit between the reading
    # going stale and the dropout window (or the run) ending.
    detectable_from = sensor.dropout_start_s + wd.stale_after_s
    window_end = min(
        sensor.dropout_start_s + sensor.dropout_duration_s,
        result.job.end_time,
    )
    if detectable_from + 3 * 1.1 * spec.interval_s > window_end:
        return
    if getattr(policy, "watchdog_trips", 0) < 1:
        yield Violation(
            "watchdog_liveness",
            result.config.describe(),
            f"sensor dropout at t={sensor.dropout_start_s:.6g} s left "
            f"readings stale beyond {wd.stale_after_s:.6g} s for "
            "multiple decision ticks, but the armed watchdog never "
            "tripped",
            0.0,
            1.0,
        )


def _check_safe_mode_entry(result: ExperimentResult, tol: Tolerances):
    """Every watchdog trip must actually pin the safe cap.

    Bookkeeping consistency (trips == episodes) plus behaviour: every
    retained sample inside a degraded episode must command exactly the
    safe cap -- safe mode that keeps consulting the controller is not
    safe mode.
    """
    policy = getattr(result, "policy", None)
    if policy is None:
        return
    episodes = getattr(policy, "watchdog_episodes", ())
    if not episodes:
        return
    subject = result.config.describe()
    trips = getattr(policy, "watchdog_trips", 0)
    if trips != len(episodes):
        yield Violation(
            "safe_mode_entry",
            subject,
            f"watchdog accounting disagrees: {trips} trips but "
            f"{len(episodes)} episodes",
            float(trips),
            float(len(episodes)),
        )
    safe_cap_w = policy.safe_cap_w
    for t, _budget_w, target_w, _measured_w in policy.samples:
        for t_enter, t_exit, _reason in episodes:
            if t_enter <= t and (t_exit is None or t < t_exit):
                if abs(target_w - safe_cap_w) > 1e-9:
                    yield Violation(
                        "safe_mode_entry",
                        subject,
                        f"sample at t={t:.6g} s inside a degraded "
                        f"episode commands {target_w:.4f} W, not the "
                        f"safe cap {safe_cap_w:.4f} W",
                        target_w,
                        safe_cap_w,
                    )
                    return  # one representative sample is enough
                break


def _check_slo(result: ExperimentResult, tol: Tolerances):
    """A policy run declaring a p99 SLO must meet it."""
    policy = getattr(result, "policy", None)
    if policy is None:
        return
    slo = policy.spec.slo_p99_s
    if slo is None:
        return
    job = result.job
    if not [r for r in job.records if r.complete_time >= job.measure_start]:
        return
    p99 = result.latency().p99
    if p99 > slo:
        yield Violation(
            "slo_adherence",
            result.config.describe(),
            f"p99 latency {p99 * 1e6:.0f} us exceeds the declared SLO "
            f"{slo * 1e6:.0f} us",
            p99,
            slo,
        )


def _check_fastpath(result: ExperimentResult, tol: Tolerances):
    """The fastpath's own ledger must be internally consistent.

    The splice contract is replication, not estimation: skipping
    ``n_windows`` steady windows must have added exactly ``n_windows``
    copies of the template window's records, energy, and span.  The
    summary is duck-typed (this module never imports
    :mod:`repro.sim.fastpath`); results without a fastpath summary are
    skipped.
    """
    summary = getattr(result, "fastpath", None)
    if summary is None:
        return
    subject = result.config.describe()
    if not summary.engaged:
        if not summary.reason:
            yield Violation(
                "fastpath_equivalence",
                subject,
                "fastpath declined without stating a reason",
                0.0,
                1.0,
            )
        if summary.splices or summary.batched_ios:
            yield Violation(
                "fastpath_equivalence",
                subject,
                f"declined fastpath still reports work: "
                f"{len(summary.splices)} splice(s), "
                f"{summary.batched_ios} batched IOs",
                float(len(summary.splices) + summary.batched_ios),
                0.0,
            )
        return
    if summary.mode == "batch":
        # Batch mode dispatches the *whole* job through the flat kernel,
        # so its IO count and the job's record count must agree.
        if summary.batched_ios != len(result.job.records):
            yield Violation(
                "fastpath_equivalence",
                subject,
                f"batch dispatched {summary.batched_ios} IOs but the job "
                f"recorded {len(result.job.records)}",
                float(summary.batched_ios),
                float(len(result.job.records)),
            )
        return
    for i, splice in enumerate(summary.splices):
        expected_records = splice.n_windows * splice.records_per_window
        if splice.records_added != expected_records:
            yield Violation(
                "fastpath_equivalence",
                subject,
                f"splice {i} added {splice.records_added} records, not "
                f"n_windows x records_per_window = {expected_records}",
                float(splice.records_added),
                float(expected_records),
            )
        expected_energy = splice.n_windows * splice.energy_per_window_j
        slack = tol.fastpath_rel * max(
            abs(expected_energy), abs(splice.energy_added_j), 1e-12
        )
        if abs(splice.energy_added_j - expected_energy) > slack:
            yield Violation(
                "fastpath_equivalence",
                subject,
                f"splice {i} added {splice.energy_added_j:.9g} J, not "
                f"n_windows x energy_per_window = {expected_energy:.9g} J",
                splice.energy_added_j,
                expected_energy,
            )
        expected_span = splice.n_windows * splice.window_s
        span = splice.t_to - splice.t_from
        if abs(span - expected_span) > tol.fastpath_rel * max(
            expected_span, 1e-12
        ):
            yield Violation(
                "fastpath_equivalence",
                subject,
                f"splice {i} advanced time by {span:.9g} s, not "
                f"n_windows x window = {expected_span:.9g} s",
                span,
                expected_span,
            )


_CHECKERS = (
    _check_window_sanity,
    _check_non_negative,
    _check_energy,
    _check_meter,
    _check_envelope,
    _check_littles_law,
    _check_cap,
    _check_latency_ordering,
    _check_budget_tracking,
    _check_budget_safety_under_faults,
    _check_watchdog_liveness,
    _check_safe_mode_entry,
    _check_slo,
    _check_fastpath,
)


def check_result(
    result: ExperimentResult, tolerances: Optional[Tolerances] = None
) -> list[Violation]:
    """Run every post-hoc invariant over one result.

    Returns the violations found (empty list = all invariants hold).
    """
    tol = tolerances if tolerances is not None else Tolerances()
    violations: list[Violation] = []
    for checker in _CHECKERS:
        violations.extend(checker(result, tol))
    return violations
