"""Physics-invariant validation of simulation results.

The simulator's value rests on its physics being internally consistent:
every figure the studies reproduce is downstream of the power rail, the
IO timeline, and the power-state machinery agreeing with each other.
This package checks that agreement explicitly:

- :mod:`repro.validate.checkers` -- post-hoc invariants over any
  :class:`~repro.core.experiment.ExperimentResult` (energy consistency,
  non-negativity, catalog envelope bounds, Little's law, cap adherence,
  latency-statistic ordering).
- :mod:`repro.validate.contracts` -- cross-result monotonicity contracts
  over a sweep (tighter power cap => no higher throughput; higher queue
  depth => no lower throughput at fixed chunk size).
- :mod:`repro.validate.audit` -- live invariants: a
  :class:`~repro.validate.audit.RailAudit` shadowing per-component draws
  for energy conservation against the rail integral, and a
  :class:`~repro.validate.audit.LiveAuditor` tracer subscriber checking
  event ordering, interval balance, and power-state residency.
- :mod:`repro.validate.strategies` -- Hypothesis strategies generating
  valid configs from the real device catalog (imported only by the test
  suite; this package itself has no hypothesis dependency).

Entry points: :func:`~repro.validate.runner.validate_result`,
:func:`~repro.validate.runner.validate_results`,
:func:`~repro.validate.runner.validate_outcome`, and the ``repro
validate`` CLI subcommand.  Sweeps opt in via
``ExecutionOptions(validate=True)``; when a tracer rides along,
violations are also emitted as ``EventKind.VIOLATION`` events.
"""

from repro.validate.audit import LiveAuditor, RailAudit
from repro.validate.checkers import check_result
from repro.validate.contracts import check_contracts
from repro.validate.envelope import power_envelope
from repro.validate.report import (
    InvariantViolationError,
    Tolerances,
    ValidationReport,
    Violation,
)
from repro.validate.runner import (
    emit_violations,
    live_validate,
    validate_outcome,
    validate_result,
    validate_results,
)

__all__ = [
    "InvariantViolationError",
    "LiveAuditor",
    "RailAudit",
    "Tolerances",
    "ValidationReport",
    "Violation",
    "check_contracts",
    "check_result",
    "emit_violations",
    "live_validate",
    "power_envelope",
    "validate_outcome",
    "validate_result",
    "validate_results",
]
