"""Hypothesis strategies generating valid configurations from the catalog.

The property suite (``tests/validate/``) drives the simulator across the
config space the studies actually use: real catalog devices, fio-style
jobs inside the paper's sweep ranges, fault plans the ``--faults``
grammar can express, and small sweep grids.  Everything generated here
passes the target dataclasses' own ``__post_init__`` validation by
construction.

This module is the only place in ``src/repro`` that imports
``hypothesis``; the library itself never does (the package works without
hypothesis installed -- only the property tests need it).

Generated *runs* must stay fast: jobs default to a few simulated
milliseconds over a few MiB, which exercises every mechanism (queueing,
buffering, power states, faults) without turning a 200-example property
into a minutes-long sweep.  HDD jobs are excluded from the default
experiment strategy for the same reason (spin-up alone is seconds of
simulated time); pass ``devices=("hdd",)`` explicitly where the cost is
budgeted.
"""

from __future__ import annotations

from typing import Optional, Sequence

from hypothesis import strategies as st

from repro._units import KiB, MiB
from repro.core.experiment import ExperimentConfig
from repro.devices.catalog import DEVICE_PRESETS
from repro.faults.plan import (
    FaultPlan,
    GovernorFailureSpec,
    IoErrorSpec,
    LatencySpikeSpec,
    SpinupFailureSpec,
    StuckTransitionSpec,
    ThermalThrottleSpec,
)
from repro.iogen.spec import IoPattern, JobSpec

__all__ = [
    "PAPER_DEVICES",
    "device_labels",
    "experiment_configs",
    "fault_plans",
    "job_specs",
    "power_states_for",
    "seeds",
]

#: The four paper Table 1 devices.
PAPER_DEVICES = ("ssd1", "ssd2", "ssd3", "hdd")

#: Chunk sizes the strategies draw from (the paper's range).
_CHUNKS = (4 * KiB, 16 * KiB, 64 * KiB, 256 * KiB, 1024 * KiB, 2048 * KiB)

#: Queue depths the strategies draw from.
_DEPTHS = (1, 2, 4, 8, 16, 32, 64)


def device_labels(
    devices: Sequence[str] = PAPER_DEVICES,
) -> st.SearchStrategy[str]:
    """A catalog device label."""
    unknown = set(devices) - set(DEVICE_PRESETS)
    if unknown:
        raise ValueError(f"unknown device labels: {sorted(unknown)}")
    return st.sampled_from(tuple(devices))


def seeds() -> st.SearchStrategy[int]:
    """A root experiment seed."""
    return st.integers(min_value=0, max_value=2**31 - 1)


def power_states_for(device: str) -> st.SearchStrategy[Optional[int]]:
    """A valid NVMe power-state selection for ``device`` (or ``None``).

    Devices without a power-state table only ever yield ``None``; for
    the rest, any *operational* state index (non-operational states
    cannot be selected while IO is offered).
    """
    config = DEVICE_PRESETS[device]()
    states = getattr(config, "power_states", ())
    operational = [ps.index for ps in states if ps.operational]
    if not operational:
        return st.none()
    return st.one_of(st.none(), st.sampled_from(operational))


def job_specs(
    patterns: Sequence[IoPattern] = tuple(IoPattern),
    max_runtime_s: float = 0.01,
    max_bytes: int = 4 * MiB,
) -> st.SearchStrategy[JobSpec]:
    """A fio-style job inside the paper's sweep ranges, scaled tiny."""
    return st.builds(
        JobSpec,
        pattern=st.sampled_from(tuple(patterns)),
        block_size=st.sampled_from(_CHUNKS),
        iodepth=st.sampled_from(_DEPTHS),
        runtime_s=st.floats(
            min_value=max_runtime_s / 4,
            max_value=max_runtime_s,
            allow_nan=False,
            allow_infinity=False,
        ),
        size_limit_bytes=st.sampled_from((max_bytes // 4, max_bytes // 2, max_bytes)),
    )


def _io_error_specs() -> st.SearchStrategy[IoErrorSpec]:
    return st.builds(
        IoErrorSpec,
        probability=st.floats(min_value=0.0, max_value=0.2),
        retry_cost_s=st.floats(min_value=0.0, max_value=1e-3),
        max_retries=st.integers(min_value=1, max_value=3),
    )


def _latency_spike_specs() -> st.SearchStrategy[LatencySpikeSpec]:
    def build(start, duration, extra, period_scale):
        repeat = None if period_scale is None else duration * period_scale
        return LatencySpikeSpec(
            start_s=start,
            duration_s=duration,
            extra_s=extra,
            repeat_every_s=repeat,
        )

    return st.builds(
        build,
        start=st.floats(min_value=0.0, max_value=0.02),
        duration=st.floats(min_value=1e-4, max_value=5e-3),
        extra=st.floats(min_value=1e-5, max_value=5e-4),
        period_scale=st.one_of(
            st.none(), st.floats(min_value=1.5, max_value=4.0)
        ),
    )


def _thermal_throttle_specs() -> st.SearchStrategy[ThermalThrottleSpec]:
    def build(start, duration, cap_scale, period_scale):
        repeat = None if period_scale is None else duration * period_scale
        return ThermalThrottleSpec(
            start_s=start,
            duration_s=duration,
            cap_scale=cap_scale,
            repeat_every_s=repeat,
        )

    return st.builds(
        build,
        start=st.floats(min_value=0.0, max_value=0.02),
        duration=st.floats(min_value=1e-3, max_value=0.01),
        cap_scale=st.floats(min_value=0.5, max_value=0.95),
        period_scale=st.one_of(
            st.none(), st.floats(min_value=1.5, max_value=4.0)
        ),
    )


def _stuck_transition_specs() -> st.SearchStrategy[StuckTransitionSpec]:
    return st.builds(
        StuckTransitionSpec,
        probability=st.floats(min_value=0.0, max_value=0.5),
        max_stuck=st.integers(min_value=1, max_value=2),
        targets=st.sets(
            st.sampled_from(("nvme_ps", "alpm", "epc")), min_size=1
        ).map(lambda names: tuple(sorted(names))),
    )


def _governor_failure_specs() -> st.SearchStrategy[GovernorFailureSpec]:
    return st.builds(
        GovernorFailureSpec,
        at_s=st.floats(min_value=0.0, max_value=0.05),
    )


def _spinup_failure_specs() -> st.SearchStrategy[SpinupFailureSpec]:
    return st.builds(
        SpinupFailureSpec,
        probability=st.floats(min_value=0.0, max_value=0.5),
        max_retries=st.integers(min_value=1, max_value=2),
        abort_fraction=st.floats(min_value=0.1, max_value=0.9),
        backoff_s=st.floats(min_value=0.0, max_value=0.5),
    )


def fault_plans() -> st.SearchStrategy[FaultPlan]:
    """A valid (possibly inert) fault plan over every spec kind."""
    return st.builds(
        FaultPlan,
        io_errors=st.one_of(st.none(), _io_error_specs()),
        latency_spikes=st.lists(
            _latency_spike_specs(), min_size=0, max_size=2
        ).map(tuple),
        thermal_throttle=st.one_of(st.none(), _thermal_throttle_specs()),
        stuck_transitions=st.one_of(st.none(), _stuck_transition_specs()),
        governor_failure=st.one_of(st.none(), _governor_failure_specs()),
        spinup_failure=st.one_of(st.none(), _spinup_failure_specs()),
    )


def experiment_configs(
    devices: Sequence[str] = ("ssd1", "ssd2", "ssd3"),
    with_faults: bool = False,
    max_runtime_s: float = 0.01,
) -> st.SearchStrategy[ExperimentConfig]:
    """A full, valid experiment over the catalog devices.

    HDD is excluded by default (simulated spin-up alone costs seconds per
    example); pass it explicitly where the run-time cost is budgeted.
    """

    def build(device: str):
        return st.builds(
            ExperimentConfig,
            device=st.just(device),
            job=job_specs(max_runtime_s=max_runtime_s),
            power_state=power_states_for(device),
            warmup_fraction=st.sampled_from((0.0, 0.25, 0.5)),
            seed=seeds(),
            faults=st.one_of(st.none(), fault_plans())
            if with_faults
            else st.none(),
        )

    return device_labels(devices).flatmap(build)
