"""Identify Controller and power state descriptors.

Reproduces the fields of the NVMe power state descriptor table that matter
to power management tooling: maximum power (``MP``, reported in centiwatts
per the spec), entry/exit latencies in microseconds, and the
non-operational flag.  ``nvme id-ctrl`` output is what an operator consults
before choosing a power state (paper section 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.ssd import SimulatedSSD

__all__ = ["IdentifyController", "PowerStateDescriptor", "identify_controller"]


@dataclass(frozen=True)
class PowerStateDescriptor:
    """One row of the NVMe power state table.

    Attributes:
        ps: Power state index.
        mp_centiwatts: Maximum power in 0.01 W units (NVMe ``MP`` with
            ``MPS = 0``).
        non_operational: NVMe ``NOPS`` bit.
        enlat_us / exlat_us: Entry/exit latency in microseconds.
        idle_power_centiwatts: ``IDLP`` (vendor-reported idle draw).
    """

    ps: int
    mp_centiwatts: int
    non_operational: bool
    enlat_us: int
    exlat_us: int
    idle_power_centiwatts: int

    @property
    def max_power_w(self) -> float:
        return self.mp_centiwatts / 100.0

    def render(self) -> str:
        """One ``nvme id-ctrl``-style line."""
        flags = "-" if self.non_operational else "operational"
        return (
            f"ps {self.ps:4d} : mp:{self.max_power_w:.2f}W {flags} "
            f"enlat:{self.enlat_us} exlat:{self.exlat_us}"
        )


@dataclass(frozen=True)
class IdentifyController:
    """Subset of the Identify Controller data structure.

    Attributes:
        model_number: NVMe ``MN``.
        npss: Number of power states supported minus one (NVMe ``NPSS``).
        psds: The power state descriptor table.
    """

    model_number: str
    npss: int
    psds: tuple[PowerStateDescriptor, ...]

    def descriptor(self, ps: int) -> PowerStateDescriptor:
        for psd in self.psds:
            if psd.ps == ps:
                return psd
        raise ValueError(f"no power state {ps} on {self.model_number}")

    def operational_states(self) -> tuple[PowerStateDescriptor, ...]:
        return tuple(p for p in self.psds if not p.non_operational)

    def render(self) -> str:
        lines = [f"mn : {self.model_number}", f"npss : {self.npss}"]
        lines.extend(psd.render() for psd in self.psds)
        return "\n".join(lines)


def identify_controller(device: SimulatedSSD) -> IdentifyController:
    """Build the Identify Controller structure for a simulated SSD.

    Raises:
        ValueError: If the device exposes no NVMe power states (e.g. the
            SATA drives, which are managed through ALPM instead).
    """
    states = device.config.power_states
    if not states:
        raise ValueError(
            f"{device.name} does not implement the NVMe power state table"
        )
    psds = tuple(
        PowerStateDescriptor(
            ps=ps.index,
            mp_centiwatts=round(ps.max_power_w * 100),
            non_operational=not ps.operational,
            enlat_us=round(ps.entry_latency_s * 1e6),
            exlat_us=round(ps.exit_latency_s * 1e6),
            idle_power_centiwatts=round(ps.idle_power_w * 100),
        )
        for ps in states
    )
    return IdentifyController(
        model_number=device.name,
        npss=len(psds) - 1,
        psds=psds,
    )
