"""An ``nvme-cli``-flavoured facade over the simulated devices.

Intended for examples and interactive exploration: string commands in,
rendered text out, mirroring the tool the paper's methodology drives.

    >>> from repro.sim import Engine
    >>> from repro.devices import build_device
    >>> engine = Engine()
    >>> cli = NvmeCli(engine)
    >>> dev = build_device(engine, "ssd2")
    >>> cli.register(dev)
    '/dev/nvme0n1'
    >>> print(cli.run("id-ctrl /dev/nvme0n1").splitlines()[0])
    mn : ssd2
"""

from __future__ import annotations

import shlex

from repro.devices.ssd import SimulatedSSD
from repro.nvme.features import get_power_state, set_power_state
from repro.nvme.identify import identify_controller
from repro.sim.engine import Engine

__all__ = ["NvmeCli"]


class NvmeCli:
    """Registry of simulated NVMe namespaces plus a tiny command parser."""

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        self._devices: dict[str, SimulatedSSD] = {}

    def register(self, device: SimulatedSSD) -> str:
        """Attach a device; returns its assigned ``/dev/nvmeXn1`` path."""
        path = f"/dev/nvme{len(self._devices)}n1"
        self._devices[path] = device
        return path

    def device(self, path: str) -> SimulatedSSD:
        try:
            return self._devices[path]
        except KeyError:
            raise ValueError(
                f"no such namespace {path!r}; registered: {sorted(self._devices)}"
            ) from None

    def run(self, command: str) -> str:
        """Execute one command string and return its rendered output.

        Supported commands::

            id-ctrl <dev>
            get-feature <dev> -f 2
            set-feature <dev> -f 2 -v <ps>
        """
        tokens = shlex.split(command)
        if not tokens:
            raise ValueError("empty nvme command")
        verb = tokens[0]
        if verb == "id-ctrl":
            return identify_controller(self.device(tokens[1])).render()
        if verb in ("get-feature", "set-feature"):
            opts = self._parse_opts(tokens[2:])
            if opts.get("-f") != "2":
                raise ValueError("only feature 2 (Power Management) is modelled")
            device = self.device(tokens[1])
            if verb == "get-feature":
                return f"get-feature:0x2 (Power Management), Current value:{get_power_state(device)}"
            ps = int(opts["-v"])
            # Drive the transition to completion on the engine.
            proc = self.engine.process(set_power_state(device, ps))
            self.engine.run(until=self.engine.peek() if proc.is_alive else self.engine.now)
            while proc.is_alive:
                self.engine.step()
            return f"set-feature:0x2 (Power Management), value:{ps}"
        raise ValueError(f"unsupported nvme command {verb!r}")

    @staticmethod
    def _parse_opts(tokens: list[str]) -> dict[str, str]:
        opts: dict[str, str] = {}
        index = 0
        while index < len(tokens):
            flag = tokens[index]
            if not flag.startswith("-") or index + 1 >= len(tokens):
                raise ValueError(f"malformed option list near {flag!r}")
            opts[flag] = tokens[index + 1]
            index += 2
        return opts
