"""NVMe host control interface.

The subset of the NVMe admin command set the paper's methodology uses:

- :mod:`~repro.nvme.identify` -- Identify Controller with the power state
  descriptor table (``MP``, ``ENLAT``, ``EXLAT``, operational flag).
- :mod:`~repro.nvme.features` -- Get/Set Features, Power Management
  (feature id 0x02), the mechanism behind ``nvme set-feature -f 2``.
- :mod:`~repro.nvme.cli` -- an ``nvme-cli``-flavoured convenience facade.
"""

from repro.nvme.features import FEATURE_POWER_MANAGEMENT, get_power_state, set_power_state
from repro.nvme.identify import IdentifyController, PowerStateDescriptor, identify_controller
from repro.nvme.cli import NvmeCli

__all__ = [
    "FEATURE_POWER_MANAGEMENT",
    "IdentifyController",
    "NvmeCli",
    "PowerStateDescriptor",
    "get_power_state",
    "identify_controller",
    "set_power_state",
]
