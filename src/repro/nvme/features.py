"""Get/Set Features -- power management features.

- Feature 0x02, Power Management: ``set_power_state`` is the programmatic
  equivalent of ``nvme set-feature /dev/nvme0 -f 2 -v <ps>``.
- Feature 0x0C, Autonomous Power State Transition: ``set_apst`` arms /
  disarms the device's idle timer into its non-operational states.

Both validate against the device's power state table and drive the
device-side transition machinery (process generators where simulated time
passes).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.devices.ssd import SimulatedSSD

__all__ = [
    "FEATURE_APST",
    "FEATURE_POWER_MANAGEMENT",
    "get_power_state",
    "set_apst",
    "set_power_state",
]

#: NVMe feature identifier for Power Management.
FEATURE_POWER_MANAGEMENT = 0x02

#: NVMe feature identifier for Autonomous Power State Transition.
FEATURE_APST = 0x0C


def get_power_state(device: SimulatedSSD) -> int:
    """Current power state index (Get Features, FID 0x02)."""
    state = device.current_power_state
    if state is None:
        raise ValueError(f"{device.name} has no NVMe power management feature")
    return state.index


def set_apst(device: SimulatedSSD, idle_timeout_s: Optional[float]) -> SimulatedSSD:
    """Set Features, FID 0x0C: arm the autonomous idle transition.

    NVMe APST is configured before IO begins; this helper returns a *new*
    device built with the requested idle timeout (``None`` disables APST),
    preserving the engine and seedless state.  Intended for experiment
    setup, mirroring how hosts program APST at namespace attach.

    Raises:
        ValueError: If the device has no non-operational states to
            transition into.
    """
    if idle_timeout_s is not None and idle_timeout_s <= 0:
        raise ValueError("idle timeout must be positive (or None to disable)")
    config = dataclasses.replace(
        device.config, apst_idle_timeout_s=idle_timeout_s
    )
    return SimulatedSSD(device.engine, config)


def set_power_state(device: SimulatedSSD, ps: int):
    """Process generator: Set Features, FID 0x02, value ``ps``.

    Raises:
        ValueError: For an index outside the device's power state table.
    """
    known = {state.index for state in device.config.power_states}
    if not known:
        raise ValueError(f"{device.name} has no NVMe power management feature")
    if ps not in known:
        raise ValueError(
            f"{device.name}: invalid power state {ps}; supported: {sorted(known)}"
        )
    yield from device.set_power_state(ps)
