"""NAND die state machines and the assembled flash array.

A :class:`NandDie` executes one operation at a time (plane-level parallelism
is folded into the per-die service time).  While an operation is in flight
the die draws its op-specific power on the device rail -- the sum of these
per-die draws is the NAND component of the device's measurable power.

:class:`NandArray` assembles ``geometry.total_dies`` dies and one
:class:`~repro.nand.onfi.ChannelBus` per channel, and provides
:meth:`NandArray.execute`, the single entry point the FTL/device layer uses
to run a physical-page operation with correct die/bus interleaving:

- PROGRAM: data crosses the bus first, then the die is busy for tPROG.
- READ: the die senses for tR, then data crosses the bus.
- ERASE: die-only, no data transfer.
"""

from __future__ import annotations

from repro.nand.geometry import NandGeometry, PhysicalPageAddress
from repro.nand.onfi import ChannelBus
from repro.nand.ops import NandPower, NandTimings, OpKind
from repro.power.rail import PowerRail
from repro.sim.engine import Engine
from repro.sim.resources import Resource

__all__ = ["NandArray", "NandDie"]


class NandDie:
    """One flash die: a single-server queue with op-dependent service.

    Program operations optionally draw their power as a *pulse profile*:
    the charge-pump phase of a program draws ``pulse_ratio`` times the
    average for ``pulse_fraction`` of the duration, with the remainder
    scaled down so per-op energy is unchanged.  Pulses from concurrently
    programming dies beat against each other, producing the millisecond-
    scale power variability the paper's 1 kHz sampling reveals (Fig. 2).
    """

    def __init__(
        self,
        engine: Engine,
        rail: PowerRail,
        die_index: int,
        timings: NandTimings,
        power: NandPower,
        pulse_ratio: float = 1.0,
        pulse_fraction: float = 0.3,
        rng=None,
    ) -> None:
        if pulse_ratio < 1.0:
            raise ValueError("pulse_ratio must be >= 1")
        if not 0 < pulse_fraction < 1:
            raise ValueError("pulse_fraction must be in (0, 1)")
        if pulse_ratio > 1.0 / pulse_fraction:
            raise ValueError(
                "pulse_ratio * pulse_fraction > 1 would need negative "
                "off-pulse power to conserve energy"
            )
        self.engine = engine
        self.rail = rail
        self.index = die_index
        self.timings = timings
        self.power = power
        self.pulse_ratio = pulse_ratio
        self.pulse_fraction = pulse_fraction
        self._rng = rng
        self._server = Resource(engine, capacity=1, name=f"die{die_index}")
        self._component = f"die{die_index}"
        self.op_counts: dict[OpKind, int] = {kind: 0 for kind in OpKind}
        if power.p_idle:
            rail.set_draw(self._component, power.p_idle)

    @property
    def busy(self) -> bool:
        return self._server.in_use > 0

    @property
    def queued(self) -> int:
        return self._server.queued

    def acquire(self):
        """Event granting exclusive use of the die."""
        return self._server.request()

    def release(self) -> None:
        self._server.release()

    def run_op(self, kind: OpKind):
        """Process generator: die-busy phase of ``kind`` (die already held).

        Draws the op's power above idle for its duration; programs use the
        pulse profile when configured.
        """
        draw = self.power.draw(kind)
        duration = self.timings.duration(kind)
        pulsed = (
            kind is OpKind.PROGRAM
            and self.pulse_ratio > 1.0
            and self._rng is not None
        )
        if not pulsed:
            self.rail.add_draw(self._component, draw)
            try:
                yield self.engine.timeout(duration)
                self.op_counts[kind] += 1
            finally:
                self.rail.add_draw(self._component, -draw)
            return

        t_pulse = self.pulse_fraction * duration
        p_pulse = self.pulse_ratio * draw
        # Off-pulse power chosen so the op's total energy stays draw*duration.
        p_rest = (draw * duration - p_pulse * t_pulse) / (duration - t_pulse)
        t_before = float(self._rng.uniform(0.0, duration - t_pulse))
        t_after = duration - t_pulse - t_before
        phases = ((p_rest, t_before), (p_pulse, t_pulse), (p_rest, t_after))
        try:
            for power_w, phase_time in phases:
                if phase_time <= 0:
                    continue
                self.rail.add_draw(self._component, power_w)
                try:
                    yield self.engine.timeout(phase_time)
                finally:
                    self.rail.add_draw(self._component, -power_w)
            self.op_counts[kind] += 1
        finally:
            pass


class NandArray:
    """All dies and channel buses of one SSD."""

    def __init__(
        self,
        engine: Engine,
        rail: PowerRail,
        geometry: NandGeometry,
        timings: NandTimings,
        power: NandPower,
        channel_bandwidth: float,
        channel_transfer_power_w: float,
        pulse_ratio: float = 1.0,
        pulse_fraction: float = 0.3,
        rng=None,
    ) -> None:
        self.engine = engine
        self.rail = rail
        self.geometry = geometry
        self.timings = timings
        self.power = power
        self.dies = [
            NandDie(
                engine,
                rail,
                i,
                timings,
                power,
                pulse_ratio=pulse_ratio,
                pulse_fraction=pulse_fraction,
                rng=rng,
            )
            for i in range(geometry.total_dies)
        ]
        self.channels = [
            ChannelBus(
                engine,
                rail,
                c,
                bandwidth=channel_bandwidth,
                transfer_power_w=channel_transfer_power_w,
            )
            for c in range(geometry.channels)
        ]

    def die_for(self, ppa: PhysicalPageAddress) -> NandDie:
        return self.dies[ppa.die_index(self.geometry)]

    def channel_for(self, ppa: PhysicalPageAddress) -> ChannelBus:
        return self.channels[ppa.channel]

    @property
    def busy_dies(self) -> int:
        return sum(1 for die in self.dies if die.busy)

    def execute(
        self,
        ppa: PhysicalPageAddress,
        kind: OpKind,
        nbytes: int | None = None,
        admission=None,
    ):
        """Process generator: run one physical-page operation end to end.

        ``nbytes`` defaults to a full page; partial-page reads transfer only
        the requested bytes (sense time is unchanged -- the array always
        senses a whole page).

        ``admission``, when given, must expose ``request(watts) -> Event``
        and ``release(watts)`` (a :class:`~repro.devices.power_states.
        PowerGovernor`).  It brackets exactly the die-busy phase -- the
        interval during which the operation draws its power -- so a power
        cap rations concurrent *array activity*, not bus occupancy.
        """
        if nbytes is None:
            nbytes = self.geometry.page_size
        die = self.die_for(ppa)
        channel = self.channel_for(ppa)
        watts = self.power.draw(kind)
        yield die.acquire()
        try:
            if kind is OpKind.PROGRAM:
                yield from channel.transfer(nbytes)
                yield from self._admitted_op(die, kind, watts, admission)
            elif kind is OpKind.READ:
                yield from self._admitted_op(die, kind, watts, admission)
                yield from channel.transfer(nbytes)
            else:  # ERASE
                yield from self._admitted_op(die, kind, watts, admission)
        finally:
            die.release()

    @staticmethod
    def _admitted_op(die: NandDie, kind: OpKind, watts: float, admission):
        if admission is None:
            yield from die.run_op(kind)
            return
        yield admission.request(watts)
        try:
            yield from die.run_op(kind)
        finally:
            admission.release(watts)

    def op_counts(self) -> dict[OpKind, int]:
        """Aggregate operation counts across all dies."""
        totals = {kind: 0 for kind in OpKind}
        for die in self.dies:
            for kind, count in die.op_counts.items():
                totals[kind] += count
        return totals
