"""NAND die state machines and the assembled flash array.

A :class:`NandDie` executes one operation at a time (plane-level parallelism
is folded into the per-die service time).  While an operation is in flight
the die draws its op-specific power on the device rail -- the sum of these
per-die draws is the NAND component of the device's measurable power.

:class:`NandArray` assembles ``geometry.total_dies`` dies and one
:class:`~repro.nand.onfi.ChannelBus` per channel, and provides
:meth:`NandArray.execute`, the single entry point the FTL/device layer uses
to run a physical-page operation with correct die/bus interleaving:

- PROGRAM: data crosses the bus first, then the die is busy for tPROG.
- READ: the die senses for tR, then data crosses the bus.
- ERASE: die-only, no data transfer.
"""

from __future__ import annotations

from repro.nand.geometry import NandGeometry, PhysicalPageAddress
from repro.nand.onfi import ChannelBus
from repro.nand.ops import NandPower, NandTimings, OpKind
from repro.power.rail import PowerRail
from repro.sim.engine import Engine
from repro.sim.resources import Resource

__all__ = ["NandArray", "NandDie"]


class NandDie:
    """One flash die: a single-server queue with op-dependent service.

    Program operations optionally draw their power as a *pulse profile*:
    the charge-pump phase of a program draws ``pulse_ratio`` times the
    average for ``pulse_fraction`` of the duration, with the remainder
    scaled down so per-op energy is unchanged.  Pulses from concurrently
    programming dies beat against each other, producing the millisecond-
    scale power variability the paper's 1 kHz sampling reveals (Fig. 2).
    """

    def __init__(
        self,
        engine: Engine,
        rail: PowerRail,
        die_index: int,
        timings: NandTimings,
        power: NandPower,
        pulse_ratio: float = 1.0,
        pulse_fraction: float = 0.3,
        rng=None,
    ) -> None:
        if pulse_ratio < 1.0:
            raise ValueError("pulse_ratio must be >= 1")
        if not 0 < pulse_fraction < 1:
            raise ValueError("pulse_fraction must be in (0, 1)")
        if pulse_ratio > 1.0 / pulse_fraction:
            raise ValueError(
                "pulse_ratio * pulse_fraction > 1 would need negative "
                "off-pulse power to conserve energy"
            )
        self.engine = engine
        self.rail = rail
        self.index = die_index
        self.timings = timings
        self.power = power
        self.pulse_ratio = pulse_ratio
        self.pulse_fraction = pulse_fraction
        self._rng = rng
        self._server = Resource(engine, capacity=1, name=f"die{die_index}")
        self._component = f"die{die_index}"
        # Timings/power are frozen per run; table lookups replace the
        # per-op if-chains in the hot path.
        self._op_draw = {kind: power.draw(kind) for kind in OpKind}
        self._op_duration = {kind: timings.duration(kind) for kind in OpKind}
        self._pulsed_programs = pulse_ratio > 1.0 and rng is not None
        # The pulse profile's shape is fixed per die -- only the pulse
        # placement is random.  Precompute the three phase powers and the
        # placement span with the exact arithmetic run_op used inline, so
        # the values are bit-identical.
        duration = self._op_duration[OpKind.PROGRAM]
        draw = self._op_draw[OpKind.PROGRAM]
        self._prog_t_pulse = pulse_fraction * duration
        self._prog_p_pulse = pulse_ratio * draw
        self._prog_span = duration - self._prog_t_pulse
        self._prog_p_rest = (
            draw * duration - self._prog_p_pulse * self._prog_t_pulse
        ) / (duration - self._prog_t_pulse)
        self.op_counts: dict[OpKind, int] = {kind: 0 for kind in OpKind}
        if power.p_idle:
            rail.set_draw(self._component, power.p_idle)

    @property
    def busy(self) -> bool:
        return self._server.in_use > 0

    @property
    def queued(self) -> int:
        return self._server.queued

    def acquire(self):
        """Event granting exclusive use of the die."""
        return self._server.request()

    def release(self) -> None:
        self._server.release()

    def run_op(self, kind: OpKind):
        """Process generator: die-busy phase of ``kind`` (die already held).

        Draws the op's power above idle for its duration; programs use the
        pulse profile when configured.
        """
        draw = self._op_draw[kind]
        duration = self._op_duration[kind]
        if not (self._pulsed_programs and kind is OpKind.PROGRAM):
            rail = self.rail
            component = self._component
            rail.add_draw(component, draw)
            try:
                yield self.engine.timeout(duration)
                self.op_counts[kind] += 1
            finally:
                rail.add_draw(component, -draw)
            return

        # Off-pulse power (precomputed) keeps the op's total energy at
        # draw*duration; only the pulse placement is drawn per op.
        t_pulse = self._prog_t_pulse
        p_pulse = self._prog_p_pulse
        p_rest = self._prog_p_rest
        t_before = float(self._rng.uniform(0.0, self._prog_span))
        t_after = self._prog_span - t_before
        phases = ((p_rest, t_before), (p_pulse, t_pulse), (p_rest, t_after))
        for power_w, phase_time in phases:
            if phase_time <= 0:
                continue
            self.rail.add_draw(self._component, power_w)
            try:
                yield self.engine.timeout(phase_time)
            finally:
                self.rail.add_draw(self._component, -power_w)
        self.op_counts[kind] += 1


class NandArray:
    """All dies and channel buses of one SSD."""

    def __init__(
        self,
        engine: Engine,
        rail: PowerRail,
        geometry: NandGeometry,
        timings: NandTimings,
        power: NandPower,
        channel_bandwidth: float,
        channel_transfer_power_w: float,
        pulse_ratio: float = 1.0,
        pulse_fraction: float = 0.3,
        rng=None,
    ) -> None:
        self.engine = engine
        self.rail = rail
        self.geometry = geometry
        self.timings = timings
        self.power = power
        self.dies = [
            NandDie(
                engine,
                rail,
                i,
                timings,
                power,
                pulse_ratio=pulse_ratio,
                pulse_fraction=pulse_fraction,
                rng=rng,
            )
            for i in range(geometry.total_dies)
        ]
        self._op_draw = {kind: power.draw(kind) for kind in OpKind}
        self.channels = [
            ChannelBus(
                engine,
                rail,
                c,
                bandwidth=channel_bandwidth,
                transfer_power_w=channel_transfer_power_w,
            )
            for c in range(geometry.channels)
        ]

    def die_for(self, ppa: PhysicalPageAddress) -> NandDie:
        return self.dies[ppa.die_index(self.geometry)]

    def channel_for(self, ppa: PhysicalPageAddress) -> ChannelBus:
        return self.channels[ppa.channel]

    @property
    def busy_dies(self) -> int:
        return sum(1 for die in self.dies if die.busy)

    def execute(
        self,
        ppa: PhysicalPageAddress,
        kind: OpKind,
        nbytes: int | None = None,
        admission=None,
    ):
        """Process generator: run one physical-page operation end to end.

        ``nbytes`` defaults to a full page; partial-page reads transfer only
        the requested bytes (sense time is unchanged -- the array always
        senses a whole page).

        ``admission``, when given, must expose ``request(watts) -> Event``
        and ``release(watts)`` (a :class:`~repro.devices.power_states.
        PowerGovernor`).  It brackets exactly the die-busy phase -- the
        interval during which the operation draws its power -- so a power
        cap rations concurrent *array activity*, not bus occupancy.
        """
        if nbytes is None:
            nbytes = self.geometry.page_size
        geometry = self.geometry
        die = self.dies[ppa.die_index(geometry)]
        channel = self.channels[ppa.channel]
        watts = self._op_draw[kind]
        yield die.acquire()
        try:
            # The admission bracket and the non-pulsed die-busy phase are
            # inlined rather than delegated to helper generators: every
            # simulated page op passes through here, and each extra frame
            # in the yield-from chain taxes every event that bubbles
            # through it.  The inlined statements mirror die.run_op's
            # un-pulsed path exactly so the event sequence is unchanged.
            pulsed = die._pulsed_programs and kind is OpKind.PROGRAM
            if kind is OpKind.PROGRAM:
                yield from channel.transfer(nbytes)
                if admission is not None:
                    yield admission.request(watts)
                try:
                    if pulsed:
                        # Inlined die.run_op's pulsed-program path: same
                        # phases, same RNG draw, one fewer generator frame.
                        t_pulse = die._prog_t_pulse
                        p_pulse = die._prog_p_pulse
                        p_rest = die._prog_p_rest
                        t_before = float(die._rng.uniform(0.0, die._prog_span))
                        t_after = die._prog_span - t_before
                        rail = die.rail
                        component = die._component
                        engine = self.engine
                        for power_w, phase_time in (
                            (p_rest, t_before),
                            (p_pulse, t_pulse),
                            (p_rest, t_after),
                        ):
                            if phase_time <= 0:
                                continue
                            rail.add_draw(component, power_w)
                            try:
                                yield engine.timeout(phase_time)
                            finally:
                                rail.add_draw(component, -power_w)
                        die.op_counts[kind] += 1
                    else:
                        rail = die.rail
                        component = die._component
                        rail.add_draw(component, watts)
                        try:
                            yield self.engine.timeout(die._op_duration[kind])
                            die.op_counts[kind] += 1
                        finally:
                            rail.add_draw(component, -watts)
                finally:
                    if admission is not None:
                        admission.release(watts)
            elif kind is OpKind.READ:
                if admission is not None:
                    yield admission.request(watts)
                try:
                    rail = die.rail
                    component = die._component
                    rail.add_draw(component, watts)
                    try:
                        yield self.engine.timeout(die._op_duration[kind])
                        die.op_counts[kind] += 1
                    finally:
                        rail.add_draw(component, -watts)
                finally:
                    if admission is not None:
                        admission.release(watts)
                yield from channel.transfer(nbytes)
            else:  # ERASE
                if admission is None:
                    yield from die.run_op(kind)
                else:
                    yield admission.request(watts)
                    try:
                        yield from die.run_op(kind)
                    finally:
                        admission.release(watts)
        finally:
            die.release()

    def op_counts(self) -> dict[OpKind, int]:
        """Aggregate operation counts across all dies."""
        totals = {kind: 0 for kind in OpKind}
        for die in self.dies:
            for kind, count in die.op_counts.items():
                totals[kind] += count
        return totals
