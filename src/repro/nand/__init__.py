"""NAND flash substrate.

Models the part of an SSD below the FTL:

- :class:`~repro.nand.geometry.NandGeometry` -- channel/die/plane/block/page
  organization and physical addressing.
- :class:`~repro.nand.ops.NandTimings` / :class:`~repro.nand.ops.NandPower`
  -- per-operation service times and power draws.  These are the physical
  root cause of every trend the paper measures: program operations are an
  order of magnitude more power-hungry than reads, which is why power caps
  throttle writes but barely touch reads (paper Fig. 4).
- :class:`~repro.nand.die.NandDie` / :class:`~repro.nand.die.NandArray` --
  the die state machines that execute operations, drawing power on the
  device rail while busy.
- :class:`~repro.nand.onfi.ChannelBus` -- the shared per-channel data bus
  whose transfer time couples IO size to service time.
"""

from repro.nand.die import NandArray, NandDie
from repro.nand.geometry import NandGeometry, PhysicalPageAddress
from repro.nand.onfi import ChannelBus
from repro.nand.ops import NandPower, NandTimings, OpKind

__all__ = [
    "ChannelBus",
    "NandArray",
    "NandDie",
    "NandGeometry",
    "NandPower",
    "NandTimings",
    "OpKind",
    "PhysicalPageAddress",
]
