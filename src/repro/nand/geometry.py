"""NAND array geometry and physical addressing.

An SSD's flash is organized as ``channels x dies x planes x blocks x pages``.
Pages are the program/read unit; blocks are the erase unit.  The geometry
object provides capacity arithmetic and the canonical linear ordering of
physical page addresses used by the FTL's allocator.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NandGeometry", "PhysicalPageAddress"]


@dataclass(frozen=True, order=True)
class PhysicalPageAddress:
    """Address of one physical page.

    Ordering is lexicographic (channel, die, plane, block, page), matching
    :meth:`NandGeometry.ppa_from_index`.
    """

    channel: int
    die: int
    plane: int
    block: int
    page: int

    def die_index(self, geometry: "NandGeometry") -> int:
        """Global die number across all channels."""
        return self.channel * geometry.dies_per_channel + self.die


@dataclass(frozen=True)
class NandGeometry:
    """Shape of the flash array.

    Attributes:
        channels: Independent data buses from controller to flash.
        dies_per_channel: Dies sharing each bus.
        planes_per_die: Planes that can (in real parts) operate semi-
            independently; we use them for capacity accounting.
        blocks_per_plane: Erase blocks per plane.
        pages_per_block: Program pages per block.
        page_size: Bytes per page (typ. 16 KiB for modern TLC).
    """

    channels: int = 8
    dies_per_channel: int = 4
    planes_per_die: int = 4
    blocks_per_plane: int = 64
    pages_per_block: int = 64
    page_size: int = 16 * 1024

    def __post_init__(self) -> None:
        for field_name in (
            "channels",
            "dies_per_channel",
            "planes_per_die",
            "blocks_per_plane",
            "pages_per_block",
            "page_size",
        ):
            if getattr(self, field_name) < 1:
                raise ValueError(f"{field_name} must be >= 1")

    # -- capacity ---------------------------------------------------------

    @property
    def total_dies(self) -> int:
        return self.channels * self.dies_per_channel

    @property
    def blocks_per_die(self) -> int:
        return self.planes_per_die * self.blocks_per_plane

    @property
    def pages_per_die(self) -> int:
        return self.blocks_per_die * self.pages_per_block

    @property
    def total_blocks(self) -> int:
        return self.total_dies * self.blocks_per_die

    @property
    def total_pages(self) -> int:
        return self.total_dies * self.pages_per_die

    @property
    def block_size(self) -> int:
        return self.pages_per_block * self.page_size

    @property
    def capacity_bytes(self) -> int:
        """Raw physical capacity."""
        return self.total_pages * self.page_size

    # -- addressing --------------------------------------------------------

    def ppa_from_index(self, index: int) -> PhysicalPageAddress:
        """Physical address for a linear page index in canonical order."""
        if not 0 <= index < self.total_pages:
            raise ValueError(f"page index {index} out of range")
        page = index % self.pages_per_block
        index //= self.pages_per_block
        block = index % self.blocks_per_plane
        index //= self.blocks_per_plane
        plane = index % self.planes_per_die
        index //= self.planes_per_die
        die = index % self.dies_per_channel
        channel = index // self.dies_per_channel
        return PhysicalPageAddress(channel, die, plane, block, page)

    def index_from_ppa(self, ppa: PhysicalPageAddress) -> int:
        """Inverse of :meth:`ppa_from_index`."""
        self._check_ppa(ppa)
        return (
            (
                (
                    (ppa.channel * self.dies_per_channel + ppa.die)
                    * self.planes_per_die
                    + ppa.plane
                )
                * self.blocks_per_plane
                + ppa.block
            )
            * self.pages_per_block
            + ppa.page
        )

    def _check_ppa(self, ppa: PhysicalPageAddress) -> None:
        if not (
            0 <= ppa.channel < self.channels
            and 0 <= ppa.die < self.dies_per_channel
            and 0 <= ppa.plane < self.planes_per_die
            and 0 <= ppa.block < self.blocks_per_plane
            and 0 <= ppa.page < self.pages_per_block
        ):
            raise ValueError(f"{ppa} out of range for {self}")

    def block_id(self, ppa: PhysicalPageAddress) -> int:
        """Global block number (erase-unit identity) of a page address."""
        self._check_ppa(ppa)
        return (
            (ppa.channel * self.dies_per_channel + ppa.die) * self.planes_per_die
            + ppa.plane
        ) * self.blocks_per_plane + ppa.block
