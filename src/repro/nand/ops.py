"""NAND operation kinds, timings and power draws.

The asymmetry encoded here is the physical root cause of the paper's central
read/write finding: a TLC **program** operation holds a die busy for hundreds
of microseconds while pumping charge at tens of milliwatts-to-watts, whereas
a **read** senses in tens of microseconds at a small fraction of the power.
When an NVMe power state caps total device power, the governor must ration
concurrent programs long before it ever needs to ration reads -- which is
exactly why the paper's Figure 4 shows sequential-write throughput dropping
to 74 %/55 % under ps1/ps2 while read throughput is nearly untouched.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["NandPower", "NandTimings", "OpKind"]


class OpKind(enum.Enum):
    """The three flash array operations."""

    READ = "read"
    PROGRAM = "program"
    ERASE = "erase"


@dataclass(frozen=True)
class NandTimings:
    """Service times for die operations, in seconds.

    Attributes:
        t_read: Array sense time (tR).
        t_program: Page program time (tPROG).
        t_erase: Block erase time (tBERS).
    """

    t_read: float = 60e-6
    t_program: float = 380e-6
    t_erase: float = 3e-3

    def __post_init__(self) -> None:
        if min(self.t_read, self.t_program, self.t_erase) <= 0:
            raise ValueError("all NAND timings must be positive")

    def duration(self, kind: OpKind) -> float:
        """Die-busy time for ``kind``."""
        if kind is OpKind.READ:
            return self.t_read
        if kind is OpKind.PROGRAM:
            return self.t_program
        return self.t_erase


@dataclass(frozen=True)
class NandPower:
    """Per-die power draws in watts while an operation is in flight.

    Attributes:
        p_read: Draw during array sense.
        p_program: Draw during page program (dominant active-power term).
        p_erase: Draw during block erase.
        p_idle: Standby draw of one powered die (usually folded into the
            controller's idle figure; kept separate for ablations).
    """

    p_read: float = 0.045
    p_program: float = 0.30
    p_erase: float = 0.25
    p_idle: float = 0.0

    def __post_init__(self) -> None:
        if min(self.p_read, self.p_program, self.p_erase) < 0 or self.p_idle < 0:
            raise ValueError("NAND power draws must be non-negative")

    def draw(self, kind: OpKind) -> float:
        """Active draw for ``kind`` (above idle)."""
        if kind is OpKind.READ:
            return self.p_read
        if kind is OpKind.PROGRAM:
            return self.p_program
        return self.p_erase

    def energy(self, kind: OpKind, timings: NandTimings) -> float:
        """Energy of one operation in joules."""
        return self.draw(kind) * timings.duration(kind)
