"""Per-channel data bus model.

Each flash channel is a shared bus between the controller and the dies
hanging off it.  Page data must cross the bus once per operation (out for
programs, in for reads), taking ``bytes / bandwidth`` during which the bus
is held exclusively and the interface logic draws transfer power.

The bus is what couples *IO size* to *power*: larger IOs keep channels
streaming a larger fraction of the time, raising average interface power --
one leg of the paper's IO-shaping mechanism (Fig. 8).
"""

from __future__ import annotations

from repro.sim.engine import Engine
from repro.sim.resources import Resource
from repro.power.rail import PowerRail

__all__ = ["ChannelBus"]


class ChannelBus:
    """One flash channel's shared data bus.

    Attributes:
        bandwidth: Transfer rate in bytes/second (e.g. 1.2 GB/s for a
            modern ONFI/Toggle interface).
        transfer_power_w: Interface power drawn while a transfer streams.
    """

    def __init__(
        self,
        engine: Engine,
        rail: PowerRail,
        channel_index: int,
        bandwidth: float,
        transfer_power_w: float,
    ) -> None:
        if bandwidth <= 0:
            raise ValueError("channel bandwidth must be positive")
        if transfer_power_w < 0:
            raise ValueError("transfer power must be non-negative")
        self.engine = engine
        self.rail = rail
        self.index = channel_index
        self.bandwidth = bandwidth
        self.transfer_power_w = transfer_power_w
        self._bus = Resource(engine, capacity=1, name=f"chan{channel_index}")
        self._component = f"chan{channel_index}.xfer"
        self.bytes_transferred = 0

    def transfer_time(self, nbytes: int) -> float:
        """Bus occupancy for ``nbytes`` of page data."""
        if nbytes < 0:
            raise ValueError("cannot transfer a negative byte count")
        return nbytes / self.bandwidth

    def transfer(self, nbytes: int):
        """Process generator: move ``nbytes`` across the bus.

        Acquires the bus exclusively, draws transfer power for the duration,
        then releases.  Intended for ``yield from`` inside a device process.
        """
        yield self._bus.request()
        rail = self.rail
        component = self._component
        power = self.transfer_power_w
        rail.add_draw(component, power)
        try:
            yield self.engine.timeout(nbytes / self.bandwidth)
            self.bytes_transferred += nbytes
        finally:
            rail.add_draw(component, -power)
            self._bus.release()

    @property
    def busy(self) -> bool:
        return self._bus.in_use > 0

    @property
    def queued(self) -> int:
        return self._bus.queued
