"""On-board DRAM write-back cache.

With write caching enabled (the shipping default for the studied drives) a
write completes to the host as soon as it lands in DRAM; a background drain
commits it to media.  Because the drain can choose commit order, a *full*
cache behaves like a very deep internal queue over which rotational position
ordering works extremely well -- which is precisely why sustained random
write throughput is governed by the drain's scheduling, not by the host's
queue depth.

The cache orders pending writes by LBA (an elevator) and exposes a bounded
leading window to the device's RPO picker.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.sim.engine import Engine, Event

__all__ = ["CachedWrite", "WriteCache"]


@dataclass(order=True)
class CachedWrite:
    """One write held in cache, ordered by start offset."""

    offset: int
    nbytes: int = field(compare=False)
    inserted_at: float = field(compare=False, default=0.0)


class WriteCache:
    """Bounded write-back cache with LBA-elevator ordering.

    ``put`` is non-blocking bookkeeping; when the cache is full the device
    parks the writer on a space event (:meth:`wait_for_space`) that fires on
    the next :meth:`remove`.
    """

    def __init__(self, engine: Engine, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError("cache capacity must be positive")
        self.engine = engine
        self.capacity_bytes = capacity_bytes
        self.used_bytes = 0
        self._entries: list[CachedWrite] = []  # kept sorted by offset
        self._space_waiters: list[Event] = []
        self._sweep_pos = 0  # elevator position (index hint)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_empty(self) -> bool:
        return not self._entries

    def fits(self, nbytes: int) -> bool:
        return self.used_bytes + nbytes <= self.capacity_bytes

    def put(self, offset: int, nbytes: int) -> None:
        """Insert a write (caller must have checked :meth:`fits`)."""
        if not self.fits(nbytes):
            raise RuntimeError("write cache overflow; call fits() first")
        entry = CachedWrite(offset, nbytes, inserted_at=self.engine.now)
        bisect.insort(self._entries, entry)
        self.used_bytes += nbytes

    def wait_for_space(self) -> Event:
        """Event that fires after the next entry is drained."""
        event = Event(self.engine)
        self._space_waiters.append(event)
        return event

    def window(self, size: int) -> list[CachedWrite]:
        """The elevator's current lookahead window (up to ``size`` entries).

        The window starts at the sweep position and wraps, so the drain
        progresses through the LBA space in one direction (C-SCAN) while the
        RPO picker optimizes within the window.
        """
        if not self._entries:
            return []
        size = min(size, len(self._entries))
        if self._sweep_pos >= len(self._entries):
            self._sweep_pos = 0
        end = self._sweep_pos + size
        window = self._entries[self._sweep_pos : end]
        if len(window) < size:
            window += self._entries[: size - len(window)]
        return window

    def remove(self, entry: CachedWrite) -> None:
        """Drain ``entry`` (it has been committed to media).

        The elevator sweep position moves to the removed entry's slot, which
        after deletion points at the next-higher LBA -- C-SCAN progression.
        """
        index = bisect.bisect_left(self._entries, entry)
        while index < len(self._entries) and self._entries[index] is not entry:
            index += 1
        if index >= len(self._entries):
            raise ValueError("entry not present in cache")
        del self._entries[index]
        self._sweep_pos = index
        self.used_bytes -= entry.nbytes
        waiters, self._space_waiters = self._space_waiters, []
        for event in waiters:
            event.succeed()
