"""Spindle state machine and power model.

The spindle is why HDD standby is a double-edged power mechanism (paper
sections 2 and 3.2.2): halting rotation saves the majority of idle power
(3.76 W -> 1.1 W on the studied Exos), but spin-up takes up to ten seconds,
draws an inrush surge while it lasts, and any IO arriving meanwhile is
stalled behind a gate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.faults.injector import NULL_INJECTOR
from repro.obs.events import EventKind
from repro.power.rail import PowerRail
from repro.sim.engine import Engine
from repro.sim.resources import Gate

__all__ = ["Spindle", "SpindleConfig", "SpindleState"]


class SpindleState(enum.Enum):
    STANDBY = "standby"
    SPINNING_UP = "spinning_up"
    SPINNING = "spinning"
    SPINNING_DOWN = "spinning_down"


@dataclass(frozen=True)
class SpindleConfig:
    """Spindle power/time parameters.

    Attributes:
        rotation_power_w: Steady draw of the motor while rotating.
        spinup_surge_w: *Additional* draw during spin-up.
        spinup_time_s: Time from standby to ready (paper: up to 10 s).
        spindown_time_s: Coast-down time after a spin-down command.
    """

    rotation_power_w: float = 2.66
    spinup_surge_w: float = 2.3
    spinup_time_s: float = 8.0
    spindown_time_s: float = 1.0

    def __post_init__(self) -> None:
        if self.rotation_power_w < 0 or self.spinup_surge_w < 0:
            raise ValueError("spindle powers must be non-negative")
        if self.spinup_time_s <= 0 or self.spindown_time_s < 0:
            raise ValueError("spin-up time must be positive")


class Spindle:
    """Spin-up/down state machine drawing motor power on the device rail.

    IO paths wait on :attr:`ready_gate` before touching the media; the gate
    is closed whenever the platters are not at speed.
    """

    def __init__(
        self,
        engine: Engine,
        rail: PowerRail,
        config: SpindleConfig,
        start_spinning: bool = True,
        name: str = "spindle",
        faults=None,
    ) -> None:
        self.engine = engine
        self.rail = rail
        self.config = config
        self.name = name
        self.faults = faults if faults is not None else NULL_INJECTOR
        self.ready_gate = Gate(engine, is_open=start_spinning, name="spindle-ready")
        self.spinups = 0
        self.spindowns = 0
        self.derating_w = 0.0
        if start_spinning:
            self.state = SpindleState.SPINNING
            rail.set_draw("spindle", config.rotation_power_w)
        else:
            self.state = SpindleState.STANDBY
            rail.set_draw("spindle", 0.0)

    def set_derating(self, watts: float) -> None:
        """Reduce rotating draw by ``watts`` (EPC head-unload / low-rpm).

        The derating persists across spin cycles until changed.
        """
        if watts < 0 or watts >= self.config.rotation_power_w:
            raise ValueError(
                f"derating {watts!r} W outside [0, rotation power)"
            )
        self.derating_w = watts
        if self.state is SpindleState.SPINNING:
            self.rail.set_draw(
                "spindle", self.config.rotation_power_w - watts
            )

    @property
    def is_ready(self) -> bool:
        return self.state is SpindleState.SPINNING

    def spin_up(self):
        """Process generator: bring the platters to speed.

        No-op if already spinning; joins an in-progress spin-up rather than
        restarting it.
        """
        if self.state is SpindleState.SPINNING:
            return
        if self.state in (SpindleState.SPINNING_UP, SpindleState.SPINNING_DOWN):
            # Wait for the in-flight transition (and any chained spin-up).
            yield self.ready_gate.wait_open()
            return
        self.state = SpindleState.SPINNING_UP
        self.spinups += 1
        surge = self.config.rotation_power_w + self.config.spinup_surge_w
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.emit(EventKind.SPINUP_START, self.name, surge_w=surge)
        if self.faults.enabled:
            # Each failed attempt draws the surge for part of the spin-up,
            # aborts, and backs off before firmware retries -- so a flaky
            # spindle costs both time and energy before the drive is ready.
            failures = self.faults.spinup_failures(self.name)
            spec = self.faults.plan.spinup_failure
            for attempt in range(1, failures + 1):
                self.faults.note_retry("spinup_failure", self.name, attempt)
                self.rail.set_draw("spindle", surge)
                yield self.engine.timeout(
                    self.config.spinup_time_s * spec.abort_fraction
                )
                self.rail.set_draw("spindle", 0.0)
                if spec.backoff_s > 0:
                    yield self.engine.timeout(spec.backoff_s)
        self.rail.set_draw("spindle", surge)
        yield self.engine.timeout(self.config.spinup_time_s)
        self.rail.set_draw(
            "spindle", self.config.rotation_power_w - self.derating_w
        )
        self.state = SpindleState.SPINNING
        if tracer.enabled:
            tracer.emit(
                EventKind.SPINUP_END,
                self.name,
                rotation_w=self.config.rotation_power_w - self.derating_w,
            )
        self.ready_gate.open()

    def spin_down(self):
        """Process generator: halt rotation (caller must have flushed cache)."""
        if self.state is SpindleState.STANDBY:
            return
        if self.state is not SpindleState.SPINNING:
            raise RuntimeError(f"cannot spin down while {self.state}")
        self.state = SpindleState.SPINNING_DOWN
        self.spindowns += 1
        self.ready_gate.close()
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.emit(EventKind.SPINDOWN_START, self.name)
        # Coasting: the motor is unpowered while the platters slow.
        self.rail.set_draw("spindle", 0.0)
        yield self.engine.timeout(self.config.spindown_time_s)
        self.state = SpindleState.STANDBY
        if tracer.enabled:
            tracer.emit(EventKind.SPINDOWN_END, self.name)
