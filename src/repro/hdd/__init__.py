"""Hard-disk-drive substrate.

Models the mechanical reality that gives HDDs their narrow operating power
range and their expensive standby (paper section 2):

- :class:`~repro.hdd.geometry.HddGeometry` -- zoned-bit-recording layout:
  outer tracks stream faster than inner ones; LBAs map to radial position
  and a deterministic angular offset.
- :class:`~repro.hdd.mechanics.SeekModel` /
  :func:`~repro.hdd.mechanics.pick_next_rpo` -- seek-time curve, rotational
  latency and rotational-position-ordering command selection (the drive's
  internal NCQ/elevator scheduling).
- :class:`~repro.hdd.spindle.Spindle` -- spin-up/down state machine with the
  multi-second transitions and inrush power surge that make HDD standby a
  risky power-adaptivity mechanism.
- :class:`~repro.hdd.cache.WriteCache` -- the on-board DRAM write-back
  cache whose elevator-style drain sets the random-write throughput floor.
"""

from repro.hdd.cache import CachedWrite, WriteCache
from repro.hdd.geometry import HddGeometry
from repro.hdd.mechanics import RotationModel, SeekModel, pick_next_rpo
from repro.hdd.spindle import Spindle, SpindleConfig, SpindleState

__all__ = [
    "CachedWrite",
    "HddGeometry",
    "RotationModel",
    "SeekModel",
    "Spindle",
    "SpindleConfig",
    "SpindleState",
    "WriteCache",
    "pick_next_rpo",
]
