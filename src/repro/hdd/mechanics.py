"""Seek, rotation and rotational-position-ordered command selection.

Three pieces:

- :class:`SeekModel`: the classic ``settle + coeff * sqrt(distance)`` seek
  curve, calibrated so that the *average* random seek matches a drive's
  datasheet figure (the mean of ``sqrt(|x - y|)`` for uniform x, y is 8/15).
- :class:`RotationModel`: tracks the platter's angular position from the
  simulation clock and computes the rotational wait to reach a target angle
  after a seek completes.
- :func:`pick_next_rpo`: rotational position ordering -- from the pending
  command pool, pick the candidate with the smallest total positioning time
  from the current head position.  This is the drive-internal scheduling
  that lets a deep queue (or a full write cache) reach service times far
  below ``avg_seek + half_revolution``, and it is why HDD random-write
  throughput at a deep queue is a few percent of sequential rather than a
  fraction of a percent (paper Fig. 10's HDD floor of ~4 %).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Callable, Sequence, TypeVar

from repro.hdd.geometry import HddGeometry

__all__ = ["RotationModel", "SeekModel", "pick_next_rpo"]

#: E[sqrt(|x - y|)] for x, y ~ U[0,1]; used to calibrate the seek curve.
MEAN_SQRT_RANDOM_DISTANCE = 8.0 / 15.0

T = TypeVar("T")


@dataclass(frozen=True)
class SeekModel:
    """Seek-time curve ``t(d) = settle + coeff * sqrt(d)``.

    Attributes:
        settle_time: Head settle time, the floor for any repositioning.
        average_seek_read: Datasheet average read seek (determines coeff).
        write_settle_extra: Additional settle for writes (write seeks are
            slower because positioning tolerance is tighter).
    """

    settle_time: float = 0.6e-3
    average_seek_read: float = 4.16e-3
    write_settle_extra: float = 0.7e-3

    def __post_init__(self) -> None:
        if self.settle_time <= 0:
            raise ValueError("settle_time must be positive")
        if self.average_seek_read <= self.settle_time:
            raise ValueError("average seek must exceed settle time")
        if self.write_settle_extra < 0:
            raise ValueError("write_settle_extra must be non-negative")

    @cached_property
    def coeff(self) -> float:
        """sqrt-law coefficient reproducing the datasheet average seek.

        Cached: the RPO scheduler evaluates the seek curve once per queued
        candidate per decision.
        """
        return (self.average_seek_read - self.settle_time) / MEAN_SQRT_RANDOM_DISTANCE

    def seek_time(self, radial_distance: float, is_write: bool = False) -> float:
        """Seek time across ``radial_distance`` (fraction of full stroke)."""
        if not 0 <= radial_distance <= 1:
            raise ValueError(f"radial distance {radial_distance} outside [0, 1]")
        if radial_distance == 0.0:
            # Same-cylinder access: no mechanical seek.
            return self.write_settle_extra if is_write else 0.0
        base = self.settle_time + self.coeff * radial_distance**0.5
        return base + (self.write_settle_extra if is_write else 0.0)

    @property
    def full_stroke(self) -> float:
        """Full-stroke seek time."""
        return self.settle_time + self.coeff


class RotationModel:
    """Angular bookkeeping for one constantly-rotating platter stack."""

    def __init__(self, geometry: HddGeometry) -> None:
        self.geometry = geometry
        # revolution_time is a derived property on a frozen dataclass;
        # cache the float -- it is read twice per RPO candidate.
        self._revolution_time = geometry.revolution_time

    def angle_at(self, time: float) -> float:
        """Platter angle at simulated ``time``, in revolutions [0, 1)."""
        return (time / self._revolution_time) % 1.0

    def rotational_wait(self, now: float, seek_time: float, target_angle: float) -> float:
        """Wait after the seek lands until ``target_angle`` passes the head."""
        angle_after_seek = ((now + seek_time) / self._revolution_time) % 1.0
        delta = (target_angle - angle_after_seek) % 1.0
        return delta * self._revolution_time


def positioning_time(
    geometry: HddGeometry,
    seek_model: SeekModel,
    rotation: RotationModel,
    now: float,
    head_byte: int,
    target_byte: int,
    is_write: bool,
    sequential_hint: bool = False,
) -> float:
    """Total time to position for an access at ``target_byte``.

    ``sequential_hint`` marks a continuation of the previous transfer (the
    head is already on track and in position): positioning is free.
    """
    if sequential_hint:
        return 0.0
    distance = abs(
        geometry.radial_fraction(target_byte) - geometry.radial_fraction(head_byte)
    )
    seek = seek_model.seek_time(distance, is_write)
    rot = rotation.rotational_wait(now, seek, geometry.angular_offset(target_byte))
    return seek + rot


def pick_next_rpo(
    candidates: Sequence[T],
    cost: Callable[[T], float],
    window: int = 16,
) -> tuple[int, T]:
    """Rotational position ordering over a bounded lookahead window.

    Examines at most ``window`` leading candidates (drives evaluate a bounded
    number of queued commands per decision) and returns ``(index, item)`` of
    the cheapest by ``cost``.  Deterministic: ties go to the earliest.

    Raises:
        ValueError: If ``candidates`` is empty.
    """
    if not candidates:
        raise ValueError("pick_next_rpo needs at least one candidate")
    if window < 1:
        raise ValueError("window must be >= 1")
    best_index = 0
    best_cost = cost(candidates[0])
    for index in range(1, min(window, len(candidates))):
        c = cost(candidates[index])
        if c < best_cost:
            best_cost = c
            best_index = index
    return best_index, candidates[best_index]
