"""HDD layout: zoned bit recording and angular position.

We use a continuous model rather than explicit cylinder lists: an LBA maps
to a radial fraction in ``[0, 1]`` (0 = outermost) and to a deterministic
pseudo-random angular offset in ``[0, 1)`` revolutions.  Media bandwidth
falls linearly from the outer to the inner zone, the classic ZBR profile.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["HddGeometry"]

# Multiplicative hash constant (Knuth) for the angular-offset mapping.
_HASH_MULT = 2654435761
_HASH_MOD = 2**32


@dataclass(frozen=True)
class HddGeometry:
    """Drive layout parameters.

    Attributes:
        capacity_bytes: Addressable capacity.
        rpm: Spindle speed.
        outer_bandwidth: Media rate at the outermost zone (bytes/s).
        inner_bandwidth: Media rate at the innermost zone (bytes/s).
        sector_size: Logical block size.
    """

    capacity_bytes: int = 2_000_000_000_000
    rpm: int = 7200
    outer_bandwidth: float = 199e6
    inner_bandwidth: float = 95e6
    sector_size: int = 4096

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.rpm <= 0 or self.sector_size <= 0:
            raise ValueError("capacity, rpm and sector size must be positive")
        if not 0 < self.inner_bandwidth <= self.outer_bandwidth:
            raise ValueError("need 0 < inner_bandwidth <= outer_bandwidth")

    @property
    def revolution_time(self) -> float:
        """Seconds per platter revolution (8.33 ms at 7200 rpm)."""
        return 60.0 / self.rpm

    def radial_fraction(self, lba_byte: int) -> float:
        """Radial position of a byte offset: 0.0 outer edge, 1.0 inner."""
        self._check_offset(lba_byte)
        return lba_byte / self.capacity_bytes

    def bandwidth_at(self, lba_byte: int) -> float:
        """Sustained media rate at the given byte offset (ZBR profile)."""
        frac = self.radial_fraction(lba_byte)
        return self.outer_bandwidth + (self.inner_bandwidth - self.outer_bandwidth) * frac

    def transfer_time(self, lba_byte: int, nbytes: int) -> float:
        """Media transfer time for ``nbytes`` starting at ``lba_byte``."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return nbytes / self.bandwidth_at(lba_byte)

    def angular_offset(self, lba_byte: int) -> float:
        """Deterministic angular position of an LBA, in revolutions [0, 1).

        A multiplicative hash of the sector number: real drives interleave
        sectors so that nearby LBAs land at effectively scattered angles once
        a seek is involved, which is what rotational-position ordering
        exploits.
        """
        self._check_offset(lba_byte)
        sector = lba_byte // self.sector_size
        return ((sector * _HASH_MULT) % _HASH_MOD) / _HASH_MOD

    def _check_offset(self, lba_byte: int) -> None:
        if not 0 <= lba_byte < self.capacity_bytes:
            raise ValueError(
                f"byte offset {lba_byte} outside capacity {self.capacity_bytes}"
            )
