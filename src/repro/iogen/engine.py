"""The asynchronous submission engine.

:class:`FioJob` reproduces fio's io_uring/libaio behaviour: ``iodepth``
worker loops each keep one IO outstanding, so the device always sees the
configured queue depth (until a stop condition trips).  IOs are submitted
directly to the device -- there is no page cache in the path, matching the
paper's ``direct=1`` methodology.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.devices.base import IOKind, IORequest, StorageDevice
from repro.iogen.patterns import OffsetGenerator, RandomOffsets, SequentialOffsets
from repro.iogen.spec import IoPattern, JobSpec
from repro.iogen.stats import IoRecord, JobResult
from repro.sim.engine import Engine

__all__ = ["FioJob"]


class FioJob:
    """One running fio-style job against one device.

    Usage::

        job = FioJob(engine, device, spec, rng)
        process = job.start()
        engine.run()                 # or run(until=...)
        result = job.result(warmup_fraction=0.2)
    """

    def __init__(
        self,
        engine: Engine,
        device: StorageDevice,
        spec: JobSpec,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.engine = engine
        self.device = device
        self.spec = spec
        region_bytes = spec.region_bytes or (
            device.capacity_bytes - spec.region_offset
        )
        if spec.region_offset + region_bytes > device.capacity_bytes:
            raise ValueError(
                f"job region [{spec.region_offset}, "
                f"{spec.region_offset + region_bytes}) exceeds device capacity"
            )
        self._offsets = self._make_offsets(spec, region_bytes, rng)
        self.records: list[IoRecord] = []
        self._issued_bytes = 0
        self._start_time: Optional[float] = None
        self._end_time: Optional[float] = None
        self._started = False

    @staticmethod
    def _make_offsets(
        spec: JobSpec, region_bytes: int, rng: Optional[np.random.Generator]
    ) -> OffsetGenerator:
        if spec.pattern.is_random:
            if rng is None:
                rng = np.random.default_rng(0)
            return RandomOffsets(
                spec.region_offset, region_bytes, spec.block_size, rng
            )
        return SequentialOffsets(spec.region_offset, region_bytes, spec.block_size)

    # -- control ------------------------------------------------------------

    def start(self):
        """Spawn the job; returns the master process (an awaitable event)."""
        if self._started:
            raise RuntimeError("job already started")
        self._started = True
        return self.engine.process(self._master())

    def _master(self):
        self._start_time = self.engine.now
        workers = [
            self.engine.process(self._worker())
            for _ in range(self.spec.iodepth)
        ]
        yield self.engine.all_of(workers)
        self._end_time = self.engine.now

    @property
    def deadline(self) -> float:
        if self._start_time is None:
            raise RuntimeError("job has not started")
        return self._start_time + self.spec.runtime_s

    def _stop(self) -> bool:
        return (
            self.engine.now >= self.deadline
            or self._issued_bytes >= self.spec.size_limit_bytes
        )

    def _worker(self):
        spec = self.spec
        kind = IOKind.READ if spec.pattern.is_read else IOKind.WRITE
        engine = self.engine
        submit = self.device.submit
        next_offset = self._offsets.next_offset
        append_record = self.records.append
        block_size = spec.block_size
        size_limit = spec.size_limit_bytes
        host_overhead = spec.host_overhead_s
        deadline = self.deadline
        while engine._now < deadline and self._issued_bytes < size_limit:
            offset = next_offset()
            self._issued_bytes += block_size
            submit_time = engine._now
            result = yield submit(IORequest(kind, offset, block_size))
            append_record(
                IoRecord(submit_time, result.complete_time, block_size)
            )
            if host_overhead > 0:
                yield engine.timeout(host_overhead)

    # -- results --------------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self._end_time is not None

    def result(self, warmup_fraction: float = 0.0) -> JobResult:
        """Build the :class:`~repro.iogen.stats.JobResult`.

        Args:
            warmup_fraction: Leading fraction of the job's duration to
                exclude from steady-state statistics.
        """
        if self._start_time is None or self._end_time is None:
            raise RuntimeError("job has not finished; run the engine first")
        if not 0 <= warmup_fraction < 1:
            raise ValueError("warmup_fraction must be in [0, 1)")
        duration = self._end_time - self._start_time
        measure_start = self._start_time + warmup_fraction * duration
        return JobResult(
            spec=self.spec,
            start_time=self._start_time,
            end_time=self._end_time,
            records=tuple(self.records),
            measure_start=measure_start,
        )
