"""Open-loop workload generation.

The fio-style engine (:mod:`repro.iogen.engine`) is *closed-loop*: it keeps
a fixed number of IOs outstanding, so offered load adapts to device speed.
Power-adaptive *system* experiments need the opposite: an **offered load**
that arrives on its own schedule (requests per second from clients), so
that throttling a device visibly builds queues and latency -- the QoS
signal the paper's section-4 policies trade against power.

- :class:`ArrivalProcess`: deterministic-seeded inter-arrival generators
  (constant-rate and Poisson), optionally modulated by a
  :class:`LoadProfile`.
- :class:`LoadProfile`: a piecewise-constant offered-load schedule in
  bytes/second (step changes model demand-response events and diurnal
  swings).
- :class:`OpenLoopJob`: submits IOs at arrival instants regardless of
  completions (bounded by ``max_outstanding`` to model a finite client
  pool) and records per-IO latency including queueing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.devices.base import IOKind, IORequest, StorageDevice
from repro.iogen.patterns import OffsetGenerator, RandomOffsets, SequentialOffsets
from repro.iogen.spec import IoPattern
from repro.iogen.stats import IoRecord, LatencyStats
from repro.sim.engine import Engine

__all__ = ["ArrivalProcess", "LoadProfile", "OpenLoopJob", "OpenLoopResult"]


@dataclass(frozen=True)
class LoadProfile:
    """Piecewise-constant offered load in bytes/second.

    ``steps`` maps segment start times to rates; the first segment must
    start at 0.  Example: a demand-response dip::

        LoadProfile(((0.0, 2e9), (0.3, 2e9), (0.8, 2e9)))  # flat
    """

    steps: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("a load profile needs at least one segment")
        times = [t for t, __ in self.steps]
        if times[0] != 0.0:
            raise ValueError("the first segment must start at time 0")
        if times != sorted(times):
            raise ValueError("segment starts must be ascending")
        if any(rate < 0 for __, rate in self.steps):
            raise ValueError("rates must be non-negative")

    @classmethod
    def constant(cls, rate_bps: float) -> "LoadProfile":
        return cls(((0.0, rate_bps),))

    @classmethod
    def diurnal(
        cls,
        peak_bps: float,
        trough_fraction: float = 0.3,
        day_length_s: float = 1.0,
        segments: int = 12,
    ) -> "LoadProfile":
        """A sinusoid-approximating day/night cycle (piecewise constant).

        ``day_length_s`` compresses a 24-hour swing into simulated time;
        the profile peaks mid-"day" and bottoms out at
        ``trough_fraction * peak``.  This is the §1 medium-term variation
        a power-adaptive system rides.
        """
        import math

        if not 0 < trough_fraction <= 1:
            raise ValueError("trough_fraction must be in (0, 1]")
        if segments < 2 or day_length_s <= 0:
            raise ValueError("need >= 2 segments and positive day length")
        mid = (1 + trough_fraction) / 2
        amplitude = (1 - trough_fraction) / 2
        steps = []
        for k in range(segments):
            t = k * day_length_s / segments
            phase = 2 * math.pi * (k + 0.5) / segments
            level = mid - amplitude * math.cos(phase)
            steps.append((t, peak_bps * level))
        return cls(tuple(steps))

    def rate_at(self, t: float) -> float:
        """Offered load at time ``t`` (bytes/second)."""
        rate = self.steps[0][1]
        for start, segment_rate in self.steps:
            if t < start:
                break
            rate = segment_rate
        return rate


class ArrivalProcess:
    """Generates request arrival instants for a byte-rate profile.

    Args:
        profile: Offered load over time.
        request_bytes: Size of each request (rate / size = requests/s).
        poisson: Exponential inter-arrivals (memoryless clients) when
            ``True``; a deterministic equally-spaced stream otherwise.
        rng: Source of randomness for Poisson mode.
    """

    def __init__(
        self,
        profile: LoadProfile,
        request_bytes: int,
        poisson: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if request_bytes <= 0:
            raise ValueError("request_bytes must be positive")
        self.profile = profile
        self.request_bytes = request_bytes
        self.poisson = poisson
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def next_gap(self, now: float) -> float:
        """Inter-arrival gap starting from simulated time ``now``.

        Returns ``inf`` while the profile's current rate is zero (the next
        arrival would come only after a rate step; callers re-poll).
        """
        rate_bps = self.profile.rate_at(now)
        if rate_bps <= 0:
            return float("inf")
        mean_gap = self.request_bytes / rate_bps
        if not self.poisson:
            return mean_gap
        return float(self._rng.exponential(mean_gap))


@dataclass(frozen=True)
class OpenLoopResult:
    """Outcome of an open-loop run.

    Attributes:
        records: Completed IOs (latency includes client-side queueing).
        offered: Requests generated.
        submitted: Requests actually submitted (== offered unless the
            outstanding cap shed load).
        shed: Requests dropped at the client because ``max_outstanding``
            was reached -- the QoS failure signal.
    """

    records: tuple[IoRecord, ...]
    offered: int
    submitted: int
    shed: int

    @property
    def completion_fraction(self) -> float:
        return len(self.records) / self.offered if self.offered else 1.0

    def latency_stats(self) -> LatencyStats:
        if not self.records:
            raise ValueError("no completions to summarize")
        return LatencyStats.from_latencies([r.latency for r in self.records])

    def throughput_bps(self, duration: float) -> float:
        if duration <= 0:
            raise ValueError("duration must be positive")
        return sum(r.nbytes for r in self.records) / duration


class OpenLoopJob:
    """Offered-load driver against one device.

    Requests arrive per the :class:`ArrivalProcess`; each is submitted
    immediately unless ``max_outstanding`` requests are already in flight,
    in which case it is *shed* (counted, not queued -- a client timeout).
    """

    def __init__(
        self,
        engine: Engine,
        device: StorageDevice,
        arrivals: ArrivalProcess,
        pattern: IoPattern = IoPattern.RANDWRITE,
        duration_s: float = 1.0,
        max_outstanding: int = 256,
        region_bytes: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        if max_outstanding < 1:
            raise ValueError("max_outstanding must be >= 1")
        self.engine = engine
        self.device = device
        self.arrivals = arrivals
        self.pattern = pattern
        self.duration_s = duration_s
        self.max_outstanding = max_outstanding
        self._offsets = self._make_offsets(region_bytes, rng)
        self.records: list[IoRecord] = []
        self.offered = 0
        self.submitted = 0
        self.shed = 0
        self._outstanding = 0

    def _make_offsets(self, region_bytes, rng) -> OffsetGenerator:
        region = region_bytes or self.device.capacity_bytes
        block = self.arrivals.request_bytes
        if self.pattern.is_random:
            return RandomOffsets(
                0, region, block, rng if rng is not None else np.random.default_rng(1)
            )
        return SequentialOffsets(0, region, block)

    def start(self):
        """Spawn the arrival loop; returns its process."""
        return self.engine.process(self._arrival_loop())

    def _arrival_loop(self):
        start_time = self.engine.now
        deadline = start_time + self.duration_s
        while True:
            gap = self.arrivals.next_gap(self.engine.now)
            if gap == float("inf"):
                # Idle segment: re-poll at the next profile step.
                gap = 0.01
                yield self.engine.timeout(gap)
                continue
            yield self.engine.timeout(gap)
            if self.engine.now >= deadline:
                return
            self.offered += 1
            if self._outstanding >= self.max_outstanding:
                self.shed += 1
                continue
            self._outstanding += 1
            self.submitted += 1
            kind = IOKind.READ if self.pattern.is_read else IOKind.WRITE
            request = IORequest(
                kind, self._offsets.next_offset(), self.arrivals.request_bytes
            )
            submit_time = self.engine.now
            self.device.submit(request).add_callback(
                lambda event, t0=submit_time, n=request.nbytes: self._complete(
                    event, t0, n
                )
            )

    def _complete(self, event, submit_time: float, nbytes: int) -> None:
        self._outstanding -= 1
        self.records.append(
            IoRecord(submit_time, event.value.complete_time, nbytes)
        )

    def result(self) -> OpenLoopResult:
        return OpenLoopResult(
            records=tuple(self.records),
            offered=self.offered,
            submitted=self.submitted,
            shed=self.shed,
        )
