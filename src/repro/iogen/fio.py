"""fio-flavoured front end.

Parses the fio option subset the paper's scripts use and renders results in
a fio-like summary format, so methodology scripts read naturally::

    spec = parse_fio_args("--rw=randwrite --bs=256k --iodepth=64 "
                          "--runtime=60 --size=4G")
"""

from __future__ import annotations

import shlex

from repro._units import fmt_duration, parse_size
from repro.iogen.spec import IoPattern, JobSpec
from repro.iogen.stats import JobResult

__all__ = ["format_job_result", "parse_fio_args"]

_SUPPORTED = {"rw", "bs", "iodepth", "runtime", "size", "offset", "name", "direct"}


def parse_fio_args(args: str) -> JobSpec:
    """Parse a fio-style option string into a :class:`JobSpec`.

    Unknown options raise; ``--direct`` is accepted (and must be 1 -- the
    simulated path is always direct, like the paper's methodology).

    >>> spec = parse_fio_args("--rw=randread --bs=4k --iodepth=8")
    >>> spec.pattern.value, spec.block_size, spec.iodepth
    ('randread', 4096, 8)
    """
    options: dict[str, str] = {}
    for token in shlex.split(args):
        if not token.startswith("--") or "=" not in token:
            raise ValueError(f"malformed fio option {token!r}")
        key, __, value = token[2:].partition("=")
        if key not in _SUPPORTED:
            raise ValueError(f"unsupported fio option --{key}")
        options[key] = value

    if "rw" not in options:
        raise ValueError("--rw is required")
    if options.get("direct", "1") != "1":
        raise ValueError("only direct=1 is modelled (the paper bypasses the page cache)")
    try:
        pattern = IoPattern(options["rw"])
    except ValueError:
        raise ValueError(
            f"unknown rw mode {options['rw']!r}; "
            f"supported: {[p.value for p in IoPattern]}"
        ) from None

    kwargs = {}
    if "runtime" in options:
        kwargs["runtime_s"] = float(options["runtime"].rstrip("s"))
    if "size" in options:
        kwargs["size_limit_bytes"] = parse_size(options["size"])
    if "offset" in options:
        kwargs["region_offset"] = parse_size(options["offset"])
    return JobSpec(
        pattern=pattern,
        block_size=parse_size(options.get("bs", "4k")),
        iodepth=int(options.get("iodepth", "1")),
        **kwargs,
    )


def format_job_result(result: JobResult) -> str:
    """Render a fio-like one-job summary block."""
    latency = result.latency_stats()
    verb = "read" if result.spec.pattern.is_read else "write"
    lines = [
        f"{result.spec.describe()}: runtime {fmt_duration(result.duration)}",
        (
            f"  {verb}: bw={result.throughput_mib_s:.1f}MiB/s, "
            f"iops={result.iops:.0f}"
        ),
        (
            f"  lat (usec): avg={latency.mean * 1e6:.1f}, "
            f"p50={latency.p50 * 1e6:.1f}, p99={latency.p99 * 1e6:.1f}, "
            f"max={latency.max * 1e6:.1f}"
        ),
    ]
    return "\n".join(lines)
