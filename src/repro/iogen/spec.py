"""Workload job specification.

Mirrors the fio parameters the paper sweeps.  Defaults follow the paper's
stop rule (60 s or 4 GiB, whichever first); the experiment harness scales
these down for simulation speed via
:class:`repro.core.experiment.ExperimentConfig`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional

from repro._units import GiB, KiB

__all__ = ["IoPattern", "JobSpec", "PAPER_CHUNK_SIZES", "PAPER_QUEUE_DEPTHS"]

#: The six chunk sizes the paper tests (4 KiB - 2 MiB).
PAPER_CHUNK_SIZES = (4 * KiB, 16 * KiB, 64 * KiB, 256 * KiB, 1024 * KiB, 2048 * KiB)

#: The six IO depths the paper tests (1 - 128).
PAPER_QUEUE_DEPTHS = (1, 4, 8, 16, 64, 128)


class IoPattern(enum.Enum):
    """fio ``rw=`` values used in the study."""

    RANDREAD = "randread"
    RANDWRITE = "randwrite"
    READ = "read"  # sequential
    WRITE = "write"  # sequential

    @property
    def is_read(self) -> bool:
        return self in (IoPattern.RANDREAD, IoPattern.READ)

    @property
    def is_random(self) -> bool:
        return self in (IoPattern.RANDREAD, IoPattern.RANDWRITE)


@dataclass(frozen=True)
class JobSpec:
    """One fio-style job.

    Attributes:
        pattern: Access pattern (``rw=``).
        block_size: IO chunk size in bytes (``bs=``).
        iodepth: Outstanding IOs to maintain (``iodepth=``).
        runtime_s: Wall-clock stop condition (``runtime=``).
        size_limit_bytes: Total-bytes stop condition (``size=``); the job
            ends at whichever limit hits first, like the paper's "one
            minute or 4 GiB".
        region_bytes: Span of the device the offsets cover (``None`` =
            whole device).
        region_offset: Start of that span.
        host_overhead_s: Host-side per-IO cost (submission syscall +
            completion reaping + fio bookkeeping); only visible at shallow
            queue depths, exactly as on real systems.
    """

    pattern: IoPattern
    block_size: int
    iodepth: int
    runtime_s: float = 60.0
    size_limit_bytes: int = 4 * GiB
    region_bytes: Optional[int] = None
    region_offset: int = 0
    host_overhead_s: float = 20e-6

    def __post_init__(self) -> None:
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")
        if self.iodepth < 1:
            raise ValueError("iodepth must be >= 1")
        if self.runtime_s <= 0 or self.size_limit_bytes <= 0:
            raise ValueError("stop conditions must be positive")
        if self.region_bytes is not None and self.region_bytes < self.block_size:
            raise ValueError("region must hold at least one block")
        if self.region_offset < 0 or self.host_overhead_s < 0:
            raise ValueError("region offset / host overhead must be >= 0")

    def scaled(self, time_scale: float, size_scale: float) -> "JobSpec":
        """A copy with stop conditions scaled (simulation speed knob)."""
        if time_scale <= 0 or size_scale <= 0:
            raise ValueError("scales must be positive")
        return replace(
            self,
            runtime_s=self.runtime_s * time_scale,
            size_limit_bytes=max(int(self.size_limit_bytes * size_scale), self.block_size),
        )

    def describe(self) -> str:
        """fio-style one-liner, e.g. ``randwrite bs=256k iodepth=64``."""
        bs = self.block_size
        bs_text = f"{bs // 1024}k" if bs % 1024 == 0 else str(bs)
        return f"{self.pattern.value} bs={bs_text} iodepth={self.iodepth}"
