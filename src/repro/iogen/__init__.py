"""fio-like workload generation.

The paper drives devices with fio 3.28: asynchronous direct IO, random or
sequential, read or write, at six chunk sizes (4 KiB - 2 MiB) and six queue
depths (1 - 128), each experiment running for one minute or 4 GiB.  This
package reproduces that surface:

- :class:`~repro.iogen.spec.JobSpec` -- the job description.
- :mod:`~repro.iogen.patterns` -- offset generators.
- :class:`~repro.iogen.engine.FioJob` -- the asynchronous submission engine
  that keeps ``iodepth`` IOs outstanding and records per-IO latency.
- :mod:`~repro.iogen.stats` -- latency/throughput statistics with a warmup
  window (steady-state reporting).
- :mod:`~repro.iogen.fio` -- a fio-flavoured command-line front end.
"""

from repro.iogen.engine import FioJob
from repro.iogen.fio import format_job_result, parse_fio_args
from repro.iogen.patterns import OffsetGenerator, RandomOffsets, SequentialOffsets
from repro.iogen.spec import IoPattern, JobSpec
from repro.iogen.stats import IoRecord, JobResult, LatencyStats

__all__ = [
    "FioJob",
    "IoPattern",
    "IoRecord",
    "JobResult",
    "JobSpec",
    "LatencyStats",
    "OffsetGenerator",
    "RandomOffsets",
    "SequentialOffsets",
    "format_job_result",
    "parse_fio_args",
]
