"""Offset generators for the access patterns.

Both generators produce block-aligned byte offsets inside a job's region.
Random offsets are uniform over aligned slots (fio's ``randrepeat``
behaviour comes from the deterministic RNG streams); sequential offsets
advance and wrap, matching fio's behaviour when the job outlives the file.
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["OffsetGenerator", "RandomOffsets", "SequentialOffsets"]


class OffsetGenerator(abc.ABC):
    """Produces the next block-aligned byte offset for a job."""

    def __init__(self, region_offset: int, region_bytes: int, block_size: int) -> None:
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        if region_bytes < block_size:
            raise ValueError("region must hold at least one block")
        if region_offset < 0:
            raise ValueError("region_offset must be non-negative")
        self.region_offset = region_offset
        self.block_size = block_size
        self.slots = region_bytes // block_size

    @abc.abstractmethod
    def next_offset(self) -> int:
        """The next byte offset to access."""

    def skip(self, n: int) -> None:
        """Advance the stream past ``n`` offsets without returning them.

        Equivalent to ``n`` discarded :meth:`next_offset` calls -- the
        stream position (and any underlying RNG state) afterwards is
        identical.  The analytic fast-forward uses this to keep the
        offset stream aligned with the submissions it skipped.
        """
        for _ in range(n):
            self.next_offset()


class SequentialOffsets(OffsetGenerator):
    """Linear sweep through the region, wrapping at the end."""

    def __init__(self, region_offset: int, region_bytes: int, block_size: int) -> None:
        super().__init__(region_offset, region_bytes, block_size)
        self._slot = 0

    def next_offset(self) -> int:
        offset = self.region_offset + self._slot * self.block_size
        self._slot = (self._slot + 1) % self.slots
        return offset

    def skip(self, n: int) -> None:
        if n < 0:
            raise ValueError("skip count must be non-negative")
        self._slot = (self._slot + n) % self.slots


class RandomOffsets(OffsetGenerator):
    """Uniformly random aligned offsets (with replacement, like fio's default).

    Draws slots in batches from the supplied numpy generator to amortize
    RNG overhead across the millions of IOs a sweep issues.
    """

    _BATCH = 4096

    def __init__(
        self,
        region_offset: int,
        region_bytes: int,
        block_size: int,
        rng: np.random.Generator,
    ) -> None:
        super().__init__(region_offset, region_bytes, block_size)
        self._rng = rng
        self._batch: np.ndarray = np.empty(0, dtype=np.int64)
        self._cursor = 0

    def next_offset(self) -> int:
        if self._cursor >= len(self._batch):
            self._batch = self._rng.integers(
                0, self.slots, size=self._BATCH, dtype=np.int64
            )
            self._cursor = 0
        slot = int(self._batch[self._cursor])
        self._cursor += 1
        return self.region_offset + slot * self.block_size

    def skip(self, n: int) -> None:
        # Mirrors n next_offset() calls exactly: the same batches are
        # drawn from the generator, only the per-slot unpacking is
        # skipped, so the RNG stream position afterwards is identical.
        if n < 0:
            raise ValueError("skip count must be non-negative")
        while n > 0:
            available = len(self._batch) - self._cursor
            if available == 0:
                self._batch = self._rng.integers(
                    0, self.slots, size=self._BATCH, dtype=np.int64
                )
                self._cursor = 0
                continue
            take = available if available < n else n
            self._cursor += take
            n -= take
