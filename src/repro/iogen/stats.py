"""Per-IO records and job-level statistics.

The paper reports steady-state quantities: average power and throughput
over an experiment, and latency averages plus the 99th percentile (Figs.
5 and 6).  :class:`JobResult` computes all of these from the raw IO records
with an optional warmup cutoff so ramp-in (e.g. a write cache filling) does
not bias steady-state numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro._units import mib_per_s
from repro.iogen.spec import JobSpec

__all__ = ["IoRecord", "JobResult", "LatencyStats"]


@dataclass(frozen=True, slots=True)
class IoRecord:
    """Timing of one completed IO."""

    submit_time: float
    complete_time: float
    nbytes: int

    @property
    def latency(self) -> float:
        return self.complete_time - self.submit_time


@dataclass(frozen=True)
class LatencyStats:
    """Latency summary in seconds.

    ``p99`` is the figure the paper tracks for tail behaviour (Fig. 5b).
    """

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    p999: float
    min: float
    max: float

    @classmethod
    def from_latencies(cls, latencies: Sequence[float]) -> "LatencyStats":
        if len(latencies) == 0:
            raise ValueError("no latencies to summarize")
        arr = np.asarray(latencies, float)
        return cls(
            count=len(arr),
            mean=float(arr.mean()),
            p50=float(np.percentile(arr, 50)),
            p95=float(np.percentile(arr, 95)),
            p99=float(np.percentile(arr, 99)),
            p999=float(np.percentile(arr, 99.9)),
            min=float(arr.min()),
            max=float(arr.max()),
        )

    def __str__(self) -> str:
        return (
            f"lat avg {self.mean * 1e6:.1f}us p50 {self.p50 * 1e6:.1f}us "
            f"p99 {self.p99 * 1e6:.1f}us (n={self.count})"
        )


@dataclass(frozen=True)
class JobResult:
    """Outcome of one job run.

    Attributes:
        spec: The job that ran.
        start_time / end_time: Simulated span of the job.
        records: Every completed IO.
        measure_start: Beginning of the steady-state window used for
            throughput/latency (>= start_time when a warmup was applied).
    """

    spec: JobSpec
    start_time: float
    end_time: float
    records: tuple[IoRecord, ...]
    measure_start: float

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    @property
    def measure_window(self) -> tuple[float, float]:
        return self.measure_start, self.end_time

    def _measured(self) -> list[IoRecord]:
        return [r for r in self.records if r.complete_time >= self.measure_start]

    @property
    def bytes_completed(self) -> int:
        """Bytes completed inside the measurement window."""
        return sum(r.nbytes for r in self._measured())

    @property
    def throughput_bps(self) -> float:
        """Steady-state throughput in bytes/second."""
        window = self.end_time - self.measure_start
        if window <= 0:
            return 0.0
        return self.bytes_completed / window

    @property
    def throughput_mib_s(self) -> float:
        return mib_per_s(self.throughput_bps)

    @property
    def iops(self) -> float:
        window = self.end_time - self.measure_start
        if window <= 0:
            return 0.0
        return len(self._measured()) / window

    def latency_stats(self) -> LatencyStats:
        measured = self._measured()
        if not measured:
            raise ValueError("no IOs completed inside the measurement window")
        return LatencyStats.from_latencies([r.latency for r in measured])
