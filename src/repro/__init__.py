"""repro -- a full reproduction of "Can Storage Devices be Power Adaptive?"

(Xie, Stavrinos, Zhu, Peter, Kasikci, Anderson -- HotStorage '24)

The paper is a hardware measurement study; this package rebuilds the entire
apparatus in simulation -- devices, power meter, workload generator -- and
the paper's contribution on top: per-device power-throughput models and the
power-adaptive storage policies they enable.

Quickstart::

    from repro import run_experiment, ExperimentConfig
    from repro.iogen import JobSpec, IoPattern

    cfg = ExperimentConfig(
        device="ssd2",
        job=JobSpec(IoPattern.RANDWRITE, block_size=256 * 1024, iodepth=64),
    )
    result = run_experiment(cfg)
    print(result.summary())

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from repro._units import GiB, KiB, MiB
from repro.core.checkpoint import CheckpointJournal, PointState
from repro.core.experiment import ExperimentConfig, ExperimentResult, run_experiment
from repro.core.model import ModelPoint, PowerThroughputModel
from repro.core.parallel import (
    PointFailure,
    RetryPolicy,
    SweepExecutionError,
    run_configs,
)
from repro.core.sweep import SweepGrid, SweepOutcome, run_sweep, sweep_outcome
from repro.devices import build_device, DEVICE_PRESETS
from repro.faults import FaultInjector, FaultPlan, FaultSummary, parse_fault_plan
from repro.iogen import IoPattern, JobSpec
from repro.obs import (
    EventKind,
    MetricsCollector,
    MetricsRegistry,
    NullTracer,
    RunProfiler,
    SimEvent,
    Tracer,
)

__version__ = "1.0.0"

__all__ = [
    "CheckpointJournal",
    "DEVICE_PRESETS",
    "EventKind",
    "ExperimentConfig",
    "ExperimentResult",
    "FaultInjector",
    "FaultPlan",
    "FaultSummary",
    "GiB",
    "MetricsCollector",
    "MetricsRegistry",
    "NullTracer",
    "RunProfiler",
    "SimEvent",
    "Tracer",
    "IoPattern",
    "JobSpec",
    "KiB",
    "MiB",
    "ModelPoint",
    "PointFailure",
    "PointState",
    "PowerThroughputModel",
    "RetryPolicy",
    "SweepExecutionError",
    "SweepGrid",
    "SweepOutcome",
    "build_device",
    "parse_fault_plan",
    "run_configs",
    "run_experiment",
    "run_sweep",
    "sweep_outcome",
    "__version__",
]
