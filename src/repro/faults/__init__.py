"""Deterministic fault injection (paper §4.1's failure modes, executable).

- :mod:`repro.faults.plan` -- frozen fault specifications
  (:class:`FaultPlan` and its per-mechanism specs);
- :mod:`repro.faults.injector` -- the runtime :class:`FaultInjector`
  devices consult at their fault sites, plus the zero-cost
  :data:`NULL_INJECTOR` default;
- :mod:`repro.faults.spec` -- the ``--faults`` CLI grammar.
"""

from repro.faults.injector import (
    FaultInjector,
    FaultSummary,
    NULL_INJECTOR,
    NullFaultInjector,
)
from repro.faults.plan import (
    FaultPlan,
    GovernorFailureSpec,
    IoErrorSpec,
    LatencySpikeSpec,
    SpinupFailureSpec,
    StuckTransitionSpec,
    ThermalThrottleSpec,
)
from repro.faults.spec import FaultSpecError, parse_fault_plan

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FaultSpecError",
    "FaultSummary",
    "GovernorFailureSpec",
    "IoErrorSpec",
    "LatencySpikeSpec",
    "NULL_INJECTOR",
    "NullFaultInjector",
    "SpinupFailureSpec",
    "StuckTransitionSpec",
    "ThermalThrottleSpec",
    "parse_fault_plan",
]
