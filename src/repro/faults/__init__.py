"""Deterministic fault injection (paper §4.1's failure modes, executable).

- :mod:`repro.faults.plan` -- frozen fault specifications
  (:class:`FaultPlan` and its per-mechanism specs);
- :mod:`repro.faults.injector` -- the runtime :class:`FaultInjector`
  devices consult at their fault sites, plus the zero-cost
  :data:`NULL_INJECTOR` default;
- :mod:`repro.faults.spec` -- the ``--faults`` CLI grammar (parse and
  canonical render);
- :mod:`repro.faults.control` -- the sensor/actuator seam policies run
  through (imported lazily by the policy runtime);
- :mod:`repro.faults.campaign` -- the chaos campaign harness (imported
  only by ``repro chaos`` / the chaos study, never from here).
"""

from repro.faults.injector import (
    FaultInjector,
    FaultSummary,
    NULL_INJECTOR,
    NullFaultInjector,
)
from repro.faults.plan import (
    ActuatorFaultSpec,
    FaultPlan,
    GovernorFailureSpec,
    IoErrorSpec,
    LatencySpikeSpec,
    SensorFaultSpec,
    SpinupFailureSpec,
    StuckTransitionSpec,
    ThermalThrottleSpec,
)
from repro.faults.spec import FaultSpecError, parse_fault_plan, render_fault_plan

__all__ = [
    "ActuatorFaultSpec",
    "FaultInjector",
    "FaultPlan",
    "FaultSpecError",
    "FaultSummary",
    "GovernorFailureSpec",
    "IoErrorSpec",
    "LatencySpikeSpec",
    "NULL_INJECTOR",
    "NullFaultInjector",
    "SensorFaultSpec",
    "SpinupFailureSpec",
    "StuckTransitionSpec",
    "ThermalThrottleSpec",
    "parse_fault_plan",
    "render_fault_plan",
]
