"""The control-plane seam: faulted sensing and actuation for policies.

:class:`~repro.policy.runtime.PolicyRuntime` historically sensed the
rail trace (ground truth) and actuated straight into the device.  A real
controller does neither: it reads a meter that can be biased, laggy,
quantized, frozen, or dead, and commands firmware that can drop, delay
or water down its commands.  This module is that seam:

- :class:`SensedPower` wraps the trailing rail-power mean behind a
  meter-shaped interface and applies the plan's
  :class:`~repro.faults.plan.SensorFaultSpec`, reporting each reading's
  *age* so a watchdog can detect staleness honestly.
- :class:`PolicyActuator` wraps the runtime's device-specific actuation
  callback and applies the plan's
  :class:`~repro.faults.plan.ActuatorFaultSpec`.

Both are identity transformations when their spec is ``None`` or
all-default: same values, same engine interactions, no RNG draws --
asserted bit-identical by ``benchmarks/bench_chaos_overhead.py``.  The
only randomness (command drops) comes from the injector's keyed
``faults.<component>.actuator`` stream, drawn *only* when a positive
drop probability is configured, so clean and inert runs never perturb
stream state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.faults.plan import ActuatorFaultSpec, SensorFaultSpec

__all__ = ["PolicyActuator", "SensedPower", "SensorReading"]


@dataclass(frozen=True)
class SensorReading:
    """One meter reading: a value and how stale it is.

    Attributes:
        value_w: The reported trailing-mean power, after any configured
            distortion.
        age_s: Seconds since the meter last produced a *new* sample.
            0 for a live meter; grows through a dropout window.  A
            frozen meter lies and reports 0 -- that is the point of the
            freeze fault.
    """

    value_w: float
    age_s: float


class SensedPower:
    """The (possibly faulted) meter path a policy senses through.

    Args:
        device: The device whose rail is measured.
        window_s: Trailing averaging window (the policy spec's).
        spec: The plan's :class:`SensorFaultSpec`, or ``None`` for a
            clean meter (identity with the legacy rail-trace path).
        injector: The device's fault injector, for accounting only --
            sensing itself draws nothing from any RNG stream.
    """

    def __init__(
        self,
        device,
        window_s: float,
        spec: Optional[SensorFaultSpec],
        injector,
    ) -> None:
        self._device = device
        self._window_s = window_s
        self._spec = spec
        self._injector = injector
        self._component = f"{device.name}.sensor"
        self._last_value_w = 0.0
        self._last_update_s = 0.0
        self._frozen_value_w: Optional[float] = None
        self._distortion_noted = False

    def _raw(self, now: float) -> float:
        """Trailing rail mean ending at ``now`` (ground truth)."""
        if now <= 0.0:
            # A large lag can push the read point before t=0, where the
            # rail has no samples: report a dead meter, not an error.
            return 0.0
        return self._device.rail.trace.mean(
            max(0.0, now - self._window_s), now
        )

    def _distort(self, raw: float) -> float:
        spec = self._spec
        value = spec.gain * raw + spec.bias_w
        if spec.quant_w > 0.0:
            value = round(value / spec.quant_w) * spec.quant_w
        return value

    def read(self, now: float) -> SensorReading:
        """Take one reading at sim time ``now``."""
        spec = self._spec
        if spec is None:
            # Clean meter: exactly the legacy rail-trace computation.
            value = self._raw(now)
            self._last_value_w = value
            self._last_update_s = now
            return SensorReading(value, 0.0)
        injector = self._injector
        if spec.dropout_at(now):
            # No new sample: hold the last value, let the age grow so a
            # watchdog can see the meter has gone quiet.
            if injector.enabled:
                injector.sense_fault("sensor_dropout", self._component)
            return SensorReading(
                self._last_value_w, now - self._last_update_s
            )
        if spec.freeze_at(now):
            # The lying meter: latch the value at window entry and keep
            # reporting it as fresh.
            if self._frozen_value_w is None:
                self._frozen_value_w = self._distort(
                    self._raw(now - spec.lag_s)
                )
                if injector.enabled:
                    injector.sense_fault("sensor_freeze", self._component)
            self._last_value_w = self._frozen_value_w
            self._last_update_s = now
            return SensorReading(self._frozen_value_w, 0.0)
        self._frozen_value_w = None
        value = self._distort(self._raw(now - spec.lag_s))
        if spec.distorts and not self._distortion_noted:
            self._distortion_noted = True
            if injector.enabled:
                injector.sense_fault("sensor_distortion", self._component)
        self._last_value_w = value
        self._last_update_s = now
        return SensorReading(value, 0.0)


class PolicyActuator:
    """The (possibly faulted) command path a policy actuates through.

    Args:
        engine: The simulation engine (for time and delayed applies).
        apply_fn: The runtime's device-specific actuation callback.
        component: Trace/accounting component name.
        spec: The plan's :class:`ActuatorFaultSpec`, or ``None`` for a
            perfect actuator (identity with a direct callback).
        injector: The device's fault injector; supplies the keyed
            ``faults.*`` stream for command drops and the accounting.
    """

    def __init__(
        self,
        engine,
        apply_fn: Callable[[float], None],
        component: str,
        spec: Optional[ActuatorFaultSpec],
        injector,
    ) -> None:
        self._engine = engine
        self._apply_fn = apply_fn
        self._component = component
        self._spec = spec
        self._injector = injector
        self.applied_w: Optional[float] = None
        self._seq = 0

    def command(self, target_w: float) -> None:
        """Issue one cap command; the spec decides what actually lands."""
        spec = self._spec
        if spec is None:
            self._apply(target_w)
            return
        injector = self._injector
        if (
            spec.stuck_at_s is not None
            and self._engine.now >= spec.stuck_at_s
        ):
            if injector.enabled:
                injector.sense_fault(
                    "actuator_stuck", self._component, target_w=target_w
                )
            return
        if spec.drop_p > 0.0 and injector.actuator_dropped(
            self._component, target_w
        ):
            return
        value = target_w
        if spec.partial < 1.0 and self.applied_w is not None:
            # Partial authority slews toward the target: each command
            # moves the applied cap a fraction of the requested change.
            value = self.applied_w + spec.partial * (
                target_w - self.applied_w
            )
            if injector.enabled:
                injector.sense_fault(
                    "actuator_partial",
                    self._component,
                    target_w=target_w,
                    applied_w=value,
                )
        if spec.delay_s > 0.0:
            self._seq += 1
            self._engine.process(self._delayed_apply(self._seq, value))
            if injector.enabled:
                injector.sense_fault(
                    "actuator_delay",
                    self._component,
                    target_w=target_w,
                    delay_s=spec.delay_s,
                )
            return
        self._apply(value)

    def _delayed_apply(self, seq: int, value: float):
        yield self._engine.timeout(self._spec.delay_s)
        # Latest-command-wins: a newer command issued while this one was
        # in flight supersedes it, like firmware coalescing a mailbox.
        if seq == self._seq:
            self._apply(value)

    def _apply(self, value: float) -> None:
        self.applied_w = value
        self._apply_fn(value)
