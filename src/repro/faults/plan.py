"""Fault plans: declarative specifications of what goes wrong, and when.

The paper's §4.1 deployment discussion turns on failure modes of
power-adaptive control: devices reverting to maximum draw, spin-up stalls,
governors that stop responding.  A :class:`FaultPlan` declares a set of
such faults for one experiment; the :class:`~repro.faults.injector.
FaultInjector` executes them deterministically from the experiment's own
:class:`~repro.sim.rng.RngStreams`.

Every spec here is a frozen dataclass so a plan can ride inside a frozen
:class:`~repro.core.experiment.ExperimentConfig`: the plan participates in
the config content hash (a faulted run never collides with a clean run in
the result cache) and pickles across worker processes unchanged.

Taxonomy (one spec per mechanism):

- :class:`IoErrorSpec` -- transient per-IO errors; each hit costs the
  device-internal retries it declares.
- :class:`LatencySpikeSpec` -- a (possibly periodic) window during which
  every IO pays extra latency (firmware pause, background scrub, bus
  contention).
- :class:`ThermalThrottleSpec` -- a window during which the power
  governor's effective cap is scaled down (thermal derating).
- :class:`StuckTransitionSpec` -- power-state transitions (NVMe PS entry/
  exit, ALPM link transitions, ATA EPC idle conditions) that stick and
  must be re-attempted, or are refused outright (EPC entry).
- :class:`GovernorFailureSpec` -- the §4.1 hazard: at a chosen time the
  governor stops enforcing its cap and the device reverts to uncapped
  maximum draw, ignoring all later cap commands.
- :class:`SpinupFailureSpec` -- HDD spin-up attempts that abort mid-surge
  and retry (motor stiction / supply droop).
- :class:`SensorFaultSpec` -- control-plane sensing faults: the policy's
  power meter reads with bias, gain error, quantization, stale-sample
  lag, and dropout/freeze windows (only bites when the policy senses
  through the meter path, ``PolicySpec(sense="meter")``).
- :class:`ActuatorFaultSpec` -- control-plane actuation faults: cap
  commands dropped, applied late, applied partially, or ignored outright
  after a stuck-at time.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Optional

__all__ = [
    "ActuatorFaultSpec",
    "FaultPlan",
    "GovernorFailureSpec",
    "IoErrorSpec",
    "LatencySpikeSpec",
    "SensorFaultSpec",
    "SpinupFailureSpec",
    "StuckTransitionSpec",
    "ThermalThrottleSpec",
]

#: Transition sites :class:`StuckTransitionSpec` may target.
STUCK_TARGETS = ("nvme_ps", "alpm", "epc")


def _check_probability(p: float) -> None:
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {p!r}")


@dataclass(frozen=True)
class IoErrorSpec:
    """Transient IO errors on the device IO paths (host IO and GC).

    Attributes:
        probability: Per-IO chance of a transient error.
        retry_cost_s: Simulated time one device-internal retry costs.
        max_retries: A hit costs between 1 and this many retries
            (uniformly drawn), each paying ``retry_cost_s``.
    """

    probability: float
    retry_cost_s: float = 1e-3
    max_retries: int = 3

    def __post_init__(self) -> None:
        _check_probability(self.probability)
        if self.retry_cost_s < 0:
            raise ValueError("retry cost must be non-negative")
        if self.max_retries < 1:
            raise ValueError("max_retries must be >= 1")


@dataclass(frozen=True)
class LatencySpikeSpec:
    """A window during which every IO pays extra latency.

    Attributes:
        start_s: Window start (sim time).
        duration_s: Window length.
        extra_s: Added latency per IO submitted inside the window.
        repeat_every_s: Period for a recurring episode (must exceed
            ``duration_s``); ``None`` for a one-shot window.
    """

    start_s: float
    duration_s: float
    extra_s: float
    repeat_every_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.start_s < 0 or self.duration_s <= 0 or self.extra_s <= 0:
            raise ValueError("spike needs start >= 0, duration > 0, extra > 0")
        if self.repeat_every_s is not None and self.repeat_every_s <= self.duration_s:
            raise ValueError("repeat period must exceed the episode duration")

    def active_at(self, now: float) -> bool:
        """Whether ``now`` falls inside the (possibly periodic) window."""
        if now < self.start_s:
            return False
        offset = now - self.start_s
        if self.repeat_every_s is not None:
            offset %= self.repeat_every_s
        return offset < self.duration_s


@dataclass(frozen=True)
class ThermalThrottleSpec:
    """A window during which the governor's effective cap is derated.

    Attributes:
        start_s: Episode start (sim time).
        duration_s: Episode length.
        cap_scale: Multiplier applied to the active cap while throttled
            (0.5 = the device must fit half its cap).
        repeat_every_s: Period for a recurring episode; ``None`` one-shot.
    """

    start_s: float
    duration_s: float
    cap_scale: float
    repeat_every_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.start_s < 0 or self.duration_s <= 0:
            raise ValueError("throttle needs start >= 0 and duration > 0")
        if not 0.0 < self.cap_scale < 1.0:
            raise ValueError("cap_scale must be in (0, 1)")
        if self.repeat_every_s is not None and self.repeat_every_s <= self.duration_s:
            raise ValueError("repeat period must exceed the episode duration")


@dataclass(frozen=True)
class StuckTransitionSpec:
    """Power-state transitions that stick (or, for EPC entry, refuse).

    A stuck transition re-pays its latency between 1 and ``max_stuck``
    extra times; an EPC *entry* hit is modelled as an outright refusal
    (the drive stays in its previous idle condition) because the command
    is instant.  Recovery paths (wake, EPC exit before a media access)
    are never refused, only delayed -- a device must always be able to
    serve IO eventually.

    Attributes:
        probability: Per-transition chance of sticking.
        max_stuck: Upper bound on extra attempts for a stuck transition.
        targets: Which transition sites the spec covers (subset of
            ``("nvme_ps", "alpm", "epc")``).
    """

    probability: float
    max_stuck: int = 2
    targets: tuple[str, ...] = STUCK_TARGETS

    def __post_init__(self) -> None:
        _check_probability(self.probability)
        if self.max_stuck < 1:
            raise ValueError("max_stuck must be >= 1")
        unknown = set(self.targets) - set(STUCK_TARGETS)
        if unknown:
            raise ValueError(
                f"unknown stuck-transition targets {sorted(unknown)}; "
                f"valid: {list(STUCK_TARGETS)}"
            )


@dataclass(frozen=True)
class GovernorFailureSpec:
    """§4.1 governor failure: the cap stops being enforced at ``at_s``.

    From that point the device reverts to uncapped maximum draw and
    ignores every later cap command (power-state changes still switch
    residency draws, but the governor no longer rations NAND power).
    """

    at_s: float

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ValueError("failure time must be non-negative")


@dataclass(frozen=True)
class SpinupFailureSpec:
    """HDD spin-up attempts that abort partway and retry.

    Each failed attempt draws the full spin-up surge for
    ``abort_fraction`` of the nominal spin-up time, then the motor rests
    ``backoff_s`` before retrying -- so a flaky spin-up costs both time
    and energy before the platters finally reach speed.

    Attributes:
        probability: Per-spin-up chance of at least one failed attempt.
        max_retries: A hit fails between 1 and this many attempts.
        abort_fraction: Fraction of the spin-up time a failed attempt
            draws surge power before giving up.
        backoff_s: Motor rest between attempts.
    """

    probability: float
    max_retries: int = 2
    abort_fraction: float = 0.4
    backoff_s: float = 0.5

    def __post_init__(self) -> None:
        _check_probability(self.probability)
        if self.max_retries < 1:
            raise ValueError("max_retries must be >= 1")
        if not 0.0 < self.abort_fraction < 1.0:
            raise ValueError("abort_fraction must be in (0, 1)")
        if self.backoff_s < 0:
            raise ValueError("backoff must be non-negative")


def _check_window(
    label: str,
    start_s: Optional[float],
    duration_s: float,
    every_s: Optional[float],
) -> None:
    """Validate one (start, duration, period) fault window triple."""
    if duration_s < 0:
        raise ValueError(f"{label} duration must be non-negative")
    if start_s is None:
        if duration_s or every_s is not None:
            raise ValueError(
                f"{label} duration/period need a {label} start time"
            )
        return
    if start_s < 0:
        raise ValueError(f"{label} start must be non-negative")
    if duration_s <= 0:
        raise ValueError(f"{label} window needs a positive duration")
    if every_s is not None and every_s <= duration_s:
        raise ValueError(
            f"{label} repeat period must exceed the window duration"
        )


def _window_active(
    now: float,
    start_s: Optional[float],
    duration_s: float,
    every_s: Optional[float],
) -> bool:
    if start_s is None or now < start_s:
        return False
    offset = now - start_s
    if every_s is not None:
        offset %= every_s
    return offset < duration_s


@dataclass(frozen=True)
class SensorFaultSpec:
    """Control-plane sensing faults on the policy's power-meter path.

    Only consulted when a policy senses through the meter seam
    (``PolicySpec(sense="meter")``); the legacy rail-trace path is
    ground truth by construction and cannot be distorted.  An
    all-default spec is the identity: readings pass through unchanged
    and no RNG stream is ever touched (asserted bit-identical by
    ``benchmarks/bench_chaos_overhead.py``).

    Attributes:
        bias_w: Additive offset on every reading (watts).
        gain: Multiplicative gain error (1.0 = calibrated).
        quant_w: Quantization step; readings snap to multiples of it
            (0 = continuous).
        lag_s: Stale-sample lag: readings reflect the rail this many
            seconds in the past.
        dropout_start_s: Start of a window during which the meter
            returns *no* new samples -- the last reading is held and its
            reported age grows (a watchdog can see the staleness).
        dropout_duration_s: Dropout window length.
        dropout_every_s: Period for recurring dropouts; ``None`` one-shot.
        freeze_start_s: Start of a window during which the meter
            *lies*: it latches the value read at window entry and keeps
            reporting it as fresh (age 0) -- detectable only by noticing
            consecutive identical samples.
        freeze_duration_s: Freeze window length.
        freeze_every_s: Period for recurring freezes; ``None`` one-shot.
    """

    bias_w: float = 0.0
    gain: float = 1.0
    quant_w: float = 0.0
    lag_s: float = 0.0
    dropout_start_s: Optional[float] = None
    dropout_duration_s: float = 0.0
    dropout_every_s: Optional[float] = None
    freeze_start_s: Optional[float] = None
    freeze_duration_s: float = 0.0
    freeze_every_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.gain > 0:
            raise ValueError(f"sensor gain must be positive, got {self.gain!r}")
        if self.quant_w < 0:
            raise ValueError("quantization step must be non-negative")
        if self.lag_s < 0:
            raise ValueError("sensor lag must be non-negative")
        _check_window(
            "dropout",
            self.dropout_start_s,
            self.dropout_duration_s,
            self.dropout_every_s,
        )
        _check_window(
            "freeze",
            self.freeze_start_s,
            self.freeze_duration_s,
            self.freeze_every_s,
        )

    @property
    def distorts(self) -> bool:
        """Whether any steady-state distortion is configured."""
        return (
            self.bias_w != 0.0
            or self.gain != 1.0
            or self.quant_w > 0.0
            or self.lag_s > 0.0
        )

    def dropout_at(self, now: float) -> bool:
        """Whether ``now`` falls inside a dropout window."""
        return _window_active(
            now, self.dropout_start_s, self.dropout_duration_s,
            self.dropout_every_s,
        )

    def freeze_at(self, now: float) -> bool:
        """Whether ``now`` falls inside a freeze window."""
        return _window_active(
            now, self.freeze_start_s, self.freeze_duration_s,
            self.freeze_every_s,
        )


@dataclass(frozen=True)
class ActuatorFaultSpec:
    """Control-plane actuation faults on the policy's command path.

    Only bites on commands issued by a :class:`~repro.policy.runtime.
    PolicyRuntime`; device-internal governor behaviour (including the
    §4.1 :class:`GovernorFailureSpec`) is a separate mechanism.  An
    all-default spec is the identity: every command applies immediately
    and in full, and no RNG stream is ever touched.

    Attributes:
        drop_p: Per-command chance the command is silently dropped
            (drawn from the keyed ``faults.<component>.actuator``
            stream, so faulted runs replay bit for bit).
        delay_s: Commands apply this many seconds late; a newer command
            issued before an older one lands supersedes it.
        partial: Fraction of the commanded *change* that actually
            applies (1.0 = full authority).  The first command applies
            in full -- partial authority is a slew problem, not an
            offset problem.
        stuck_at_s: From this sim time on, the actuator ignores every
            command and holds whatever was last applied.
    """

    drop_p: float = 0.0
    delay_s: float = 0.0
    partial: float = 1.0
    stuck_at_s: Optional[float] = None

    def __post_init__(self) -> None:
        _check_probability(self.drop_p)
        if self.delay_s < 0:
            raise ValueError("actuator delay must be non-negative")
        if not 0.0 < self.partial <= 1.0:
            raise ValueError(
                f"partial authority must be in (0, 1], got {self.partial!r}"
            )
        if self.stuck_at_s is not None and self.stuck_at_s < 0:
            raise ValueError("stuck-at time must be non-negative")


@dataclass(frozen=True)
class FaultPlan:
    """Everything that goes wrong in one experiment.

    All fields default to "no such fault"; an all-default plan is inert
    (the injector built from it reports ``enabled = False`` and the run
    is bit-identical to one with no injector at all -- asserted by
    ``benchmarks/bench_fault_overhead.py``).
    """

    io_errors: Optional[IoErrorSpec] = None
    latency_spikes: tuple[LatencySpikeSpec, ...] = ()
    thermal_throttle: Optional[ThermalThrottleSpec] = None
    stuck_transitions: Optional[StuckTransitionSpec] = None
    governor_failure: Optional[GovernorFailureSpec] = None
    spinup_failure: Optional[SpinupFailureSpec] = None
    sensor: Optional[SensorFaultSpec] = None
    actuator: Optional[ActuatorFaultSpec] = None

    @property
    def active(self) -> bool:
        """Whether any fault is configured at all."""
        return any(
            getattr(self, f.name) not in (None, ())
            for f in fields(self)
        )

    def spike_extra_s(self, now: float) -> float:
        """Total extra per-IO latency from spike windows active at ``now``."""
        return sum(
            spec.extra_s for spec in self.latency_spikes if spec.active_at(now)
        )
