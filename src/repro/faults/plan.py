"""Fault plans: declarative specifications of what goes wrong, and when.

The paper's §4.1 deployment discussion turns on failure modes of
power-adaptive control: devices reverting to maximum draw, spin-up stalls,
governors that stop responding.  A :class:`FaultPlan` declares a set of
such faults for one experiment; the :class:`~repro.faults.injector.
FaultInjector` executes them deterministically from the experiment's own
:class:`~repro.sim.rng.RngStreams`.

Every spec here is a frozen dataclass so a plan can ride inside a frozen
:class:`~repro.core.experiment.ExperimentConfig`: the plan participates in
the config content hash (a faulted run never collides with a clean run in
the result cache) and pickles across worker processes unchanged.

Taxonomy (one spec per mechanism):

- :class:`IoErrorSpec` -- transient per-IO errors; each hit costs the
  device-internal retries it declares.
- :class:`LatencySpikeSpec` -- a (possibly periodic) window during which
  every IO pays extra latency (firmware pause, background scrub, bus
  contention).
- :class:`ThermalThrottleSpec` -- a window during which the power
  governor's effective cap is scaled down (thermal derating).
- :class:`StuckTransitionSpec` -- power-state transitions (NVMe PS entry/
  exit, ALPM link transitions, ATA EPC idle conditions) that stick and
  must be re-attempted, or are refused outright (EPC entry).
- :class:`GovernorFailureSpec` -- the §4.1 hazard: at a chosen time the
  governor stops enforcing its cap and the device reverts to uncapped
  maximum draw, ignoring all later cap commands.
- :class:`SpinupFailureSpec` -- HDD spin-up attempts that abort mid-surge
  and retry (motor stiction / supply droop).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Optional

__all__ = [
    "FaultPlan",
    "GovernorFailureSpec",
    "IoErrorSpec",
    "LatencySpikeSpec",
    "SpinupFailureSpec",
    "StuckTransitionSpec",
    "ThermalThrottleSpec",
]

#: Transition sites :class:`StuckTransitionSpec` may target.
STUCK_TARGETS = ("nvme_ps", "alpm", "epc")


def _check_probability(p: float) -> None:
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {p!r}")


@dataclass(frozen=True)
class IoErrorSpec:
    """Transient IO errors on the device IO paths (host IO and GC).

    Attributes:
        probability: Per-IO chance of a transient error.
        retry_cost_s: Simulated time one device-internal retry costs.
        max_retries: A hit costs between 1 and this many retries
            (uniformly drawn), each paying ``retry_cost_s``.
    """

    probability: float
    retry_cost_s: float = 1e-3
    max_retries: int = 3

    def __post_init__(self) -> None:
        _check_probability(self.probability)
        if self.retry_cost_s < 0:
            raise ValueError("retry cost must be non-negative")
        if self.max_retries < 1:
            raise ValueError("max_retries must be >= 1")


@dataclass(frozen=True)
class LatencySpikeSpec:
    """A window during which every IO pays extra latency.

    Attributes:
        start_s: Window start (sim time).
        duration_s: Window length.
        extra_s: Added latency per IO submitted inside the window.
        repeat_every_s: Period for a recurring episode (must exceed
            ``duration_s``); ``None`` for a one-shot window.
    """

    start_s: float
    duration_s: float
    extra_s: float
    repeat_every_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.start_s < 0 or self.duration_s <= 0 or self.extra_s <= 0:
            raise ValueError("spike needs start >= 0, duration > 0, extra > 0")
        if self.repeat_every_s is not None and self.repeat_every_s <= self.duration_s:
            raise ValueError("repeat period must exceed the episode duration")

    def active_at(self, now: float) -> bool:
        """Whether ``now`` falls inside the (possibly periodic) window."""
        if now < self.start_s:
            return False
        offset = now - self.start_s
        if self.repeat_every_s is not None:
            offset %= self.repeat_every_s
        return offset < self.duration_s


@dataclass(frozen=True)
class ThermalThrottleSpec:
    """A window during which the governor's effective cap is derated.

    Attributes:
        start_s: Episode start (sim time).
        duration_s: Episode length.
        cap_scale: Multiplier applied to the active cap while throttled
            (0.5 = the device must fit half its cap).
        repeat_every_s: Period for a recurring episode; ``None`` one-shot.
    """

    start_s: float
    duration_s: float
    cap_scale: float
    repeat_every_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.start_s < 0 or self.duration_s <= 0:
            raise ValueError("throttle needs start >= 0 and duration > 0")
        if not 0.0 < self.cap_scale < 1.0:
            raise ValueError("cap_scale must be in (0, 1)")
        if self.repeat_every_s is not None and self.repeat_every_s <= self.duration_s:
            raise ValueError("repeat period must exceed the episode duration")


@dataclass(frozen=True)
class StuckTransitionSpec:
    """Power-state transitions that stick (or, for EPC entry, refuse).

    A stuck transition re-pays its latency between 1 and ``max_stuck``
    extra times; an EPC *entry* hit is modelled as an outright refusal
    (the drive stays in its previous idle condition) because the command
    is instant.  Recovery paths (wake, EPC exit before a media access)
    are never refused, only delayed -- a device must always be able to
    serve IO eventually.

    Attributes:
        probability: Per-transition chance of sticking.
        max_stuck: Upper bound on extra attempts for a stuck transition.
        targets: Which transition sites the spec covers (subset of
            ``("nvme_ps", "alpm", "epc")``).
    """

    probability: float
    max_stuck: int = 2
    targets: tuple[str, ...] = STUCK_TARGETS

    def __post_init__(self) -> None:
        _check_probability(self.probability)
        if self.max_stuck < 1:
            raise ValueError("max_stuck must be >= 1")
        unknown = set(self.targets) - set(STUCK_TARGETS)
        if unknown:
            raise ValueError(
                f"unknown stuck-transition targets {sorted(unknown)}; "
                f"valid: {list(STUCK_TARGETS)}"
            )


@dataclass(frozen=True)
class GovernorFailureSpec:
    """§4.1 governor failure: the cap stops being enforced at ``at_s``.

    From that point the device reverts to uncapped maximum draw and
    ignores every later cap command (power-state changes still switch
    residency draws, but the governor no longer rations NAND power).
    """

    at_s: float

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ValueError("failure time must be non-negative")


@dataclass(frozen=True)
class SpinupFailureSpec:
    """HDD spin-up attempts that abort partway and retry.

    Each failed attempt draws the full spin-up surge for
    ``abort_fraction`` of the nominal spin-up time, then the motor rests
    ``backoff_s`` before retrying -- so a flaky spin-up costs both time
    and energy before the platters finally reach speed.

    Attributes:
        probability: Per-spin-up chance of at least one failed attempt.
        max_retries: A hit fails between 1 and this many attempts.
        abort_fraction: Fraction of the spin-up time a failed attempt
            draws surge power before giving up.
        backoff_s: Motor rest between attempts.
    """

    probability: float
    max_retries: int = 2
    abort_fraction: float = 0.4
    backoff_s: float = 0.5

    def __post_init__(self) -> None:
        _check_probability(self.probability)
        if self.max_retries < 1:
            raise ValueError("max_retries must be >= 1")
        if not 0.0 < self.abort_fraction < 1.0:
            raise ValueError("abort_fraction must be in (0, 1)")
        if self.backoff_s < 0:
            raise ValueError("backoff must be non-negative")


@dataclass(frozen=True)
class FaultPlan:
    """Everything that goes wrong in one experiment.

    All fields default to "no such fault"; an all-default plan is inert
    (the injector built from it reports ``enabled = False`` and the run
    is bit-identical to one with no injector at all -- asserted by
    ``benchmarks/bench_fault_overhead.py``).
    """

    io_errors: Optional[IoErrorSpec] = None
    latency_spikes: tuple[LatencySpikeSpec, ...] = ()
    thermal_throttle: Optional[ThermalThrottleSpec] = None
    stuck_transitions: Optional[StuckTransitionSpec] = None
    governor_failure: Optional[GovernorFailureSpec] = None
    spinup_failure: Optional[SpinupFailureSpec] = None

    @property
    def active(self) -> bool:
        """Whether any fault is configured at all."""
        return any(
            getattr(self, f.name) not in (None, ())
            for f in fields(self)
        )

    def spike_extra_s(self, now: float) -> float:
        """Total extra per-IO latency from spike windows active at ``now``."""
        return sum(
            spec.extra_s for spec in self.latency_spikes if spec.active_at(now)
        )
