"""Chaos campaigns: sweep the fault-plan space against every controller.

The campaign answers the tentpole question -- *how much dynamic range do
our controllers harvest when their senses and actuators lie, and does
the watchdog keep them budget-safe?* -- by brute, deterministic
enumeration:

1. One clean baseline run per device (no policy) anchors the budget
   schedules (via :func:`repro.studies.policy_tracking.spec_for`) and
   the fault-window placement: every window in the plan vocabulary is a
   fraction of the *measured* baseline duration, because short runs end
   when their bytes run out, not at the nominal runtime.
2. One clean *reference* policy run per (device, controller) scores the
   un-attacked harvest and p99.
3. Every (plan, device, controller) cell runs through the resilient
   executor with the same spec plus the fault plan, then through
   :func:`repro.validate.checkers.check_result` -- including the
   ``budget_safety_under_faults`` / ``watchdog_liveness`` /
   ``safe_mode_entry`` invariants.
4. Any violating cell's plan is **shrunk** to a minimal reproducer by
   greedy delta-debugging over its grammar clauses: drop one clause at
   a time, re-run the cell in-process, keep the removal if the
   violation survives, repeat until no single removal does.  The
   minimized plan is round-tripped through
   :func:`repro.faults.spec.render_fault_plan` so it pastes straight
   back into ``--faults``.

Determinism: cell enumeration is pure, sampling under ``budget_cells``
draws one permutation from the keyed ``faults.campaign`` stream, and
every run inherits the experiment seed -- the whole campaign is
bit-reproducible across processes and ``PYTHONHASHSEED`` values.

This module is imported only by the ``repro chaos`` CLI and
:mod:`repro.studies.chaos_resilience` -- never by ``repro.faults``
itself, so fault-injecting runs that don't campaign pay nothing for it
(held by ``benchmarks/bench_chaos_overhead.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.core.experiment import run_experiment
from repro.core.options import ExecutionOptions
from repro.core.parallel import PointFailure, SweepExecutionError, run_configs
from repro.faults.spec import parse_fault_plan, render_fault_plan
from repro.iogen.spec import IoPattern
from repro.policy import POLICY_KINDS, PolicySpec, WatchdogSpec
from repro.sim.rng import RngStreams
from repro.studies.common import DEFAULT, StudyScale, point_config
from repro.studies.policy_tracking import spec_for
from repro.validate.checkers import RESULT_INVARIANTS, check_result
from repro.validate.report import ValidationReport
from repro._units import KiB

__all__ = [
    "CampaignCell",
    "CampaignResult",
    "CellOutcome",
    "CONTROLLER_FAMILIES",
    "plan_vocabulary",
    "run_campaign",
    "shrink_plan",
]

#: The shipped controller families every campaign covers.
CONTROLLER_FAMILIES = POLICY_KINDS

#: The deliberately-broken fixture ``--controllers all`` adds on top.
UNSAFE_FAMILY = "unsafe"

_PATTERN = IoPattern.RANDWRITE
_BLOCK_SIZE = 256 * KiB
_IODEPTH = 8


def plan_vocabulary(
    interval_s: float, horizon_s: float
) -> tuple[tuple[str, str], ...]:
    """The named fault plans one campaign enumerates.

    Windows and lags scale with the controller's decision ``interval_s``
    and the device's measured run ``horizon_s`` so every plan actually
    bites within the run.  Values are plain float arithmetic on those
    two inputs: the vocabulary is a pure function, and its spec strings
    render identically on every platform.
    """
    third = horizon_s / 3.0
    window = max(8.0 * interval_s, horizon_s / 6.0)
    vocabulary = [
        # Ordered worst-first: the coverage-first sampler keeps the
        # head of this list, and bias-low is the plan that provably
        # breaks an unclamped controller (it reads phantom headroom).
        ("bias-low", "sensor:bias=-1.5"),
        ("gain-low", "sensor:gain=0.6"),
        ("quantized", "sensor:quant=0.5"),
        ("laggy", f"sensor:lag={4.0 * interval_s!r}"),
        ("dropout", f"sensor:drop_at={third!r},drop_dur={window!r}"),
        ("freeze", f"sensor:freeze_at={third!r},freeze_dur={window!r}"),
        ("cmd-drop", "actuator:drop=0.5"),
        ("cmd-delay", f"actuator:delay={2.0 * interval_s!r}"),
        ("cmd-partial", "actuator:partial=0.4"),
        ("cmd-stuck", f"actuator:stuck_at={third!r}"),
        ("governor-dead", f"governor:at={third!r}"),
        (
            "bias-low+cmd-drop",
            "sensor:bias=-1.5;actuator:drop=0.5",
        ),
        (
            "dropout+cmd-delay",
            f"sensor:drop_at={third!r},drop_dur={window!r};"
            f"actuator:delay={2.0 * interval_s!r}",
        ),
    ]
    return tuple(vocabulary)


@dataclass(frozen=True)
class CampaignCell:
    """One (fault plan, device, controller) grid point."""

    device: str
    controller: str
    plan_name: str
    plan_spec: str


@dataclass(frozen=True)
class CellOutcome:
    """One executed cell, scored against its clean reference run.

    Attributes:
        cell: The grid point that ran.
        harvest_retained: Fraction of the clean run's harvested power
            the faulted run still harvested (1.0 = faults cost nothing,
            values above 1.0 mean the faults accidentally saved power).
        p99_blowup: Faulted p99 latency over clean p99.
        degraded_fraction: Decision ticks spent in watchdog safe mode.
        watchdog_trips: Safe-mode entries during the faulted run.
        violations: Invariant names that fired on the faulted run.
        reproducer: Minimal violating ``--faults`` spec (shrunk and
            round-tripped through the grammar), or ``None`` if the cell
            passed validation.
    """

    cell: CampaignCell
    harvest_retained: float
    p99_blowup: float
    degraded_fraction: float
    watchdog_trips: int
    violations: tuple[str, ...]
    reproducer: Optional[str]

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass(frozen=True)
class CampaignResult:
    """Every cell outcome plus campaign-level accounting."""

    outcomes: tuple[CellOutcome, ...]
    checked: int
    seed: int
    watchdog_armed: bool
    validation: ValidationReport

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def reproducers(self) -> tuple[tuple[CampaignCell, str], ...]:
        return tuple(
            (o.cell, o.reproducer)
            for o in self.outcomes
            if o.reproducer is not None
        )

    def ranking(self) -> tuple[tuple[str, float, float, int], ...]:
        """Controllers ranked best-first by resilience.

        Returns ``(controller, mean_harvest_retained, max_p99_blowup,
        violation_count)`` rows, sorted by fewest violations, then
        highest retained harvest.
        """
        controllers: list[str] = []
        for outcome in self.outcomes:
            if outcome.cell.controller not in controllers:
                controllers.append(outcome.cell.controller)
        rows = []
        for controller in controllers:
            cells = [
                o for o in self.outcomes if o.cell.controller == controller
            ]
            mean_retained = sum(o.harvest_retained for o in cells) / len(
                cells
            )
            max_blowup = max(o.p99_blowup for o in cells)
            violation_count = sum(len(o.violations) for o in cells)
            rows.append(
                (controller, mean_retained, max_blowup, violation_count)
            )
        rows.sort(key=lambda row: (row[3], -row[1], row[2], row[0]))
        return tuple(rows)

    def summary_dict(self) -> dict:
        """JSON-ready digest (ledger record + bit-repro comparisons)."""
        return {
            "cells": len(self.outcomes),
            "seed": self.seed,
            "watchdog": self.watchdog_armed,
            "violations": sum(len(o.violations) for o in self.outcomes),
            "controllers": {
                controller: {
                    "harvest_retained": retained,
                    "max_p99_blowup": blowup,
                    "violations": count,
                }
                for controller, retained, blowup, count in self.ranking()
            },
            "reproducers": [
                {
                    "device": cell.device,
                    "controller": cell.controller,
                    "plan": cell.plan_name,
                    "faults": spec,
                }
                for cell, spec in self.reproducers
            ],
        }


def _sample_cells(
    cells: list[CampaignCell], budget_cells: Optional[int], seed: int
) -> list[CampaignCell]:
    """Deterministic coverage-first sampling down to ``budget_cells``.

    The first cell of every (device, controller) pair -- which carries
    the vocabulary's head plan, the adversarial ``bias-low`` sensor --
    is always kept, so every controller faces at least one lying-meter
    plan whenever the budget allows one cell per pair.  The remaining
    budget is filled from a ``faults.campaign``-keyed permutation of
    the rest, re-sorted into enumeration order for stable output.
    """
    if budget_cells is None or budget_cells >= len(cells):
        return cells
    seen_pairs: set[tuple[str, str]] = set()
    head_indices: list[int] = []
    for i, cell in enumerate(cells):
        pair = (cell.device, cell.controller)
        if pair not in seen_pairs:
            seen_pairs.add(pair)
            head_indices.append(i)
    head = head_indices[:budget_cells]
    remaining = budget_cells - len(head)
    chosen = set(head)
    if remaining > 0:
        rest = [i for i in range(len(cells)) if i not in chosen]
        stream = RngStreams(seed).get("faults.campaign")
        order = [rest[int(k)] for k in stream.permutation(len(rest))]
        chosen.update(order[:remaining])
    return [cells[i] for i in sorted(chosen)]


def shrink_plan(plan_spec: str, is_violating) -> str:
    """Greedy delta-debugging over grammar clauses.

    Repeatedly tries dropping one ``;``-clause at a time, keeping any
    removal under which ``is_violating(candidate_spec)`` still returns
    True, until no single-clause removal preserves the violation.  The
    result is 1-minimal (removing any one remaining clause loses the
    violation) and is returned in canonical form via the
    parse/render round trip, so it is guaranteed to re-parse.
    """
    clauses = [c for c in plan_spec.split(";") if c.strip()]
    shrunk = True
    while shrunk and len(clauses) > 1:
        shrunk = False
        for i in range(len(clauses)):
            candidate = clauses[:i] + clauses[i + 1 :]
            if is_violating(";".join(candidate)):
                clauses = candidate
                shrunk = True
                break
    return render_fault_plan(parse_fault_plan(";".join(clauses)))


def _spec_with_seams(
    device: str,
    controller: str,
    baseline_mean_w: float,
    scale: StudyScale,
    watchdog: bool,
) -> PolicySpec:
    spec = spec_for(device, controller, baseline_mean_w, scale)
    return replace(
        spec,
        sense="meter",
        watchdog=(
            WatchdogSpec(stale_after_s=3.0 * spec.interval_s)
            if watchdog
            else None
        ),
    )


def run_campaign(
    scale: StudyScale = DEFAULT,
    devices: tuple[str, ...] = ("ssd2",),
    controllers: Optional[tuple[str, ...]] = None,
    budget_cells: Optional[int] = None,
    watchdog: bool = True,
    seed: int = 0,
    n_workers: int | None = 1,
    cache_dir=None,
    ledger=None,
) -> CampaignResult:
    """Run one chaos campaign.

    Args:
        scale: Study scale for every run in the grid.
        devices: Catalog devices to attack.
        controllers: Controller kinds; ``None`` means the shipped
            families plus the ``unsafe`` fixture (the ``--controllers
            all`` grid).
        budget_cells: Optional cap on executed fault cells
            (coverage-first deterministic sampling; ``None`` = the full
            grid).
        watchdog: Arm the safe-mode watchdog on every policy run.
        seed: Experiment seed; also keys the sampling stream.
        n_workers: Executor parallelism for the grid batches.
        cache_dir: Optional result cache (path or ``ResultCache``).
        ledger: Optional run ledger (path or ``RunLedger``); receives
            per-point records plus one ``chaos`` summary record.
    """
    if controllers is None:
        controllers = CONTROLLER_FAMILIES + (UNSAFE_FAMILY,)
    if ledger is not None:
        from repro.core.ledger import RunLedger

        ledger = (
            ledger if isinstance(ledger, RunLedger) else RunLedger(ledger)
        )
    options = ExecutionOptions(
        n_workers=n_workers, cache_dir=cache_dir, ledger=ledger
    )

    # Phase 1: clean baselines anchor budgets and fault windows.
    baseline_configs = [
        point_config(
            device, _PATTERN, _BLOCK_SIZE, _IODEPTH, scale=scale, seed=seed
        )
        for device in devices
    ]
    outcomes = run_configs(baseline_configs, options)
    failures = [o for o in outcomes if isinstance(o, PointFailure)]
    if failures:
        raise SweepExecutionError(failures)
    baselines = dict(zip(devices, outcomes))

    specs = {
        (device, controller): _spec_with_seams(
            device,
            controller,
            baselines[device].true_mean_power_w,
            scale,
            watchdog,
        )
        for device in devices
        for controller in controllers
    }

    # Phase 2: clean reference policy runs score the un-attacked grid.
    pairs = [(d, c) for d in devices for c in controllers]
    reference_configs = [
        replace(baselines[d].config, policy=specs[(d, c)]) for d, c in pairs
    ]
    outcomes = run_configs(reference_configs, options)
    failures = [o for o in outcomes if isinstance(o, PointFailure)]
    if failures:
        raise SweepExecutionError(failures)
    references = dict(zip(pairs, outcomes))

    # Phase 3: enumerate, sample, and run the fault grid.
    vocabularies = {
        device: plan_vocabulary(
            specs[(device, controllers[0])].interval_s,
            baselines[device].job.end_time,
        )
        for device in devices
    }
    cells: list[CampaignCell] = []
    for plan_index in range(max(len(v) for v in vocabularies.values())):
        for device in devices:
            vocabulary = vocabularies[device]
            if plan_index >= len(vocabulary):
                continue
            name, spec_str = vocabulary[plan_index]
            for controller in controllers:
                cells.append(
                    CampaignCell(device, controller, name, spec_str)
                )
    cells = _sample_cells(cells, budget_cells, seed)
    cell_configs = [
        replace(
            baselines[cell.device].config,
            policy=specs[(cell.device, cell.controller)],
            faults=parse_fault_plan(cell.plan_spec),
        )
        for cell in cells
    ]
    outcomes = run_configs(cell_configs, options)
    failures = [o for o in outcomes if isinstance(o, PointFailure)]
    if failures:
        raise SweepExecutionError(failures)

    # Phase 4: validate every faulted run, shrink every violator.
    def harvest(device: str, result) -> float:
        base = baselines[device].true_mean_power_w
        if base <= 0:
            return 0.0
        return (base - result.true_mean_power_w) / base

    all_violations = []
    cell_outcomes: list[CellOutcome] = []
    for cell, config, result in zip(cells, cell_configs, outcomes):
        violations = check_result(result)
        all_violations.extend(violations)
        reference = references[(cell.device, cell.controller)]
        clean_harvest = harvest(cell.device, reference)
        faulted_harvest = harvest(cell.device, result)
        clean_p99 = reference.latency().p99
        reproducer = None
        if violations:

            def is_violating(candidate_spec: str) -> bool:
                candidate = replace(
                    config, faults=parse_fault_plan(candidate_spec)
                )
                return bool(check_result(run_experiment(candidate)))

            reproducer = shrink_plan(cell.plan_spec, is_violating)
        policy = result.policy
        cell_outcomes.append(
            CellOutcome(
                cell=cell,
                harvest_retained=(
                    faulted_harvest / clean_harvest
                    if clean_harvest > 1e-9
                    else 1.0
                ),
                p99_blowup=(
                    result.latency().p99 / clean_p99
                    if clean_p99 > 0
                    else 1.0
                ),
                degraded_fraction=getattr(policy, "degraded_fraction", 0.0),
                watchdog_trips=getattr(policy, "watchdog_trips", 0),
                violations=tuple(v.invariant for v in violations),
                reproducer=reproducer,
            )
        )

    validation = ValidationReport(
        violations=tuple(all_violations),
        checked=len(cells),
        invariants=RESULT_INVARIANTS,
    )
    result = CampaignResult(
        outcomes=tuple(cell_outcomes),
        checked=len(cells),
        seed=seed,
        watchdog_armed=watchdog,
        validation=validation,
    )
    if ledger is not None:
        from repro.core.ledger import run_record
        from repro.core.parallel import ResultCache

        record = run_record(
            "chaos",
            validation=validation,
            points=len(cells),
            failures=0,
            cache=(
                cache_dir.stats
                if isinstance(cache_dir, ResultCache)
                else None
            ),
        )
        record["chaos"] = result.summary_dict()
        ledger.append(record)
    return result
