"""Parse ``--faults`` command-line specifications into a FaultPlan.

Grammar (semicolon-separated clauses, comma-separated ``key=value`` args)::

    SPEC     := CLAUSE (";" CLAUSE)*
    CLAUSE   := KIND [":" ARG ("," ARG)*]
    ARG      := KEY "=" VALUE

Kinds and their arguments (times in seconds, probabilities in [0, 1]):

- ``io_error:p=0.01[,cost=1e-3][,retries=3]``
- ``spike:at=0.01,dur=0.005,extra=0.002[,every=0.02]``
- ``throttle:at=0.01,dur=0.02,scale=0.5[,every=0.05]``
- ``stuck:p=0.5[,max=2][,targets=nvme_ps|alpm|epc]``
- ``governor:at=0.02``
- ``spinup:p=1.0[,retries=2][,fraction=0.4][,backoff=0.5]``

>>> plan = parse_fault_plan("io_error:p=0.05;governor:at=0.02")
>>> plan.io_errors.probability
0.05
>>> plan.governor_failure.at_s
0.02
"""

from __future__ import annotations

from repro.faults.plan import (
    FaultPlan,
    GovernorFailureSpec,
    IoErrorSpec,
    LatencySpikeSpec,
    SpinupFailureSpec,
    StuckTransitionSpec,
    ThermalThrottleSpec,
)

__all__ = ["FaultSpecError", "parse_fault_plan"]


class FaultSpecError(ValueError):
    """A ``--faults`` specification that does not parse."""


def _parse_args(kind: str, text: str, allowed: dict[str, str]) -> dict:
    """Split ``k=v,k=v`` into a kwargs dict using the ``allowed`` mapping."""
    out: dict[str, object] = {}
    if not text:
        return out
    for chunk in text.split(","):
        if "=" not in chunk:
            raise FaultSpecError(
                f"{kind}: expected key=value, got {chunk!r}"
            )
        key, _, value = chunk.partition("=")
        key = key.strip()
        if key not in allowed:
            raise FaultSpecError(
                f"{kind}: unknown argument {key!r}; "
                f"valid: {sorted(allowed)}"
            )
        field = allowed[key]
        if field == "targets":
            out[field] = tuple(value.split("|"))
        elif field in ("max_retries", "max_stuck"):
            out[field] = int(value)
        else:
            try:
                out[field] = float(value)
            except ValueError:
                raise FaultSpecError(
                    f"{kind}: argument {key}={value!r} is not a number"
                ) from None
    return out


def parse_fault_plan(spec: str) -> FaultPlan:
    """Parse a ``--faults`` string into a :class:`FaultPlan`.

    Raises :class:`FaultSpecError` (a ``ValueError``) on any malformed
    clause, naming the clause and the valid vocabulary.
    """
    io_errors = None
    spikes: list[LatencySpikeSpec] = []
    throttle = None
    stuck = None
    governor = None
    spinup = None
    for raw in spec.split(";"):
        clause = raw.strip()
        if not clause:
            continue
        kind, _, argtext = clause.partition(":")
        kind = kind.strip()
        try:
            if kind == "io_error":
                args = _parse_args(kind, argtext, {
                    "p": "probability",
                    "cost": "retry_cost_s",
                    "retries": "max_retries",
                })
                io_errors = IoErrorSpec(**args)
            elif kind == "spike":
                args = _parse_args(kind, argtext, {
                    "at": "start_s",
                    "dur": "duration_s",
                    "extra": "extra_s",
                    "every": "repeat_every_s",
                })
                spikes.append(LatencySpikeSpec(**args))
            elif kind == "throttle":
                args = _parse_args(kind, argtext, {
                    "at": "start_s",
                    "dur": "duration_s",
                    "scale": "cap_scale",
                    "every": "repeat_every_s",
                })
                throttle = ThermalThrottleSpec(**args)
            elif kind == "stuck":
                args = _parse_args(kind, argtext, {
                    "p": "probability",
                    "max": "max_stuck",
                    "targets": "targets",
                })
                stuck = StuckTransitionSpec(**args)
            elif kind == "governor":
                args = _parse_args(kind, argtext, {"at": "at_s"})
                governor = GovernorFailureSpec(**args)
            elif kind == "spinup":
                args = _parse_args(kind, argtext, {
                    "p": "probability",
                    "retries": "max_retries",
                    "fraction": "abort_fraction",
                    "backoff": "backoff_s",
                })
                spinup = SpinupFailureSpec(**args)
            else:
                raise FaultSpecError(
                    f"unknown fault kind {kind!r}; valid: "
                    "io_error, spike, throttle, stuck, governor, spinup"
                )
        except TypeError as exc:
            # A spec dataclass missing a required argument.
            raise FaultSpecError(
                f"{kind}: {exc} (in clause {clause!r})"
            ) from None
        except FaultSpecError as exc:
            # Re-raise with the offending clause named: a multi-clause
            # spec would otherwise leave the user hunting for which
            # token broke.
            raise FaultSpecError(f"{exc} (in clause {clause!r})") from None
        except ValueError as exc:
            # A spec dataclass rejecting a value in __post_init__.
            raise FaultSpecError(
                f"{kind}: {exc} (in clause {clause!r})"
            ) from None
    plan = FaultPlan(
        io_errors=io_errors,
        latency_spikes=tuple(spikes),
        thermal_throttle=throttle,
        stuck_transitions=stuck,
        governor_failure=governor,
        spinup_failure=spinup,
    )
    if not plan.active:
        raise FaultSpecError(f"fault spec {spec!r} configures no faults")
    return plan
