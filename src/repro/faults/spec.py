"""Parse and render ``--faults`` specifications (a FaultPlan grammar).

Grammar (semicolon-separated clauses, comma-separated ``key=value`` args)::

    SPEC     := CLAUSE (";" CLAUSE)*
    CLAUSE   := KIND [":" ARG ("," ARG)*]
    ARG      := KEY "=" VALUE

Kinds and their arguments (times in seconds, probabilities in [0, 1]):

- ``io_error:p=0.01[,cost=1e-3][,retries=3]``
- ``spike:at=0.01,dur=0.005,extra=0.002[,every=0.02]``
- ``throttle:at=0.01,dur=0.02,scale=0.5[,every=0.05]``
- ``stuck:p=0.5[,max=2][,targets=nvme_ps|alpm|epc]``
- ``governor:at=0.02``
- ``spinup:p=1.0[,retries=2][,fraction=0.4][,backoff=0.5]``
- ``sensor:[bias=-0.5][,gain=0.8][,quant=0.25][,lag=0.004]``
  ``[,drop_at=0.02,drop_dur=0.01[,drop_every=0.04]]``
  ``[,freeze_at=0.02,freeze_dur=0.01[,freeze_every=0.04]]``
- ``actuator:[drop=0.5][,delay=0.004][,partial=0.4][,stuck_at=0.03]``

The grammar round-trips: :func:`render_fault_plan` emits a canonical
spec string that :func:`parse_fault_plan` parses back to an equal plan
(property-tested).  The chaos shrinker depends on this -- a minimized
reproducer is only useful if it can be pasted straight back into
``--faults``.

>>> plan = parse_fault_plan("io_error:p=0.05;governor:at=0.02")
>>> plan.io_errors.probability
0.05
>>> parse_fault_plan(render_fault_plan(plan)) == plan
True
"""

from __future__ import annotations

from dataclasses import fields

from repro.faults.plan import (
    ActuatorFaultSpec,
    FaultPlan,
    GovernorFailureSpec,
    IoErrorSpec,
    LatencySpikeSpec,
    SensorFaultSpec,
    SpinupFailureSpec,
    StuckTransitionSpec,
    ThermalThrottleSpec,
)

__all__ = ["FaultSpecError", "parse_fault_plan", "render_fault_plan"]


class FaultSpecError(ValueError):
    """A ``--faults`` specification that does not parse."""


#: Integer-typed spec fields (everything else non-tuple parses as float).
_INT_FIELDS = ("max_retries", "max_stuck")

#: Per-kind ``arg key -> dataclass field`` maps.  One table drives both
#: directions: parsing (key -> field) and rendering (field -> key).
_CLAUSE_ARGS: dict[str, dict[str, str]] = {
    "io_error": {
        "p": "probability",
        "cost": "retry_cost_s",
        "retries": "max_retries",
    },
    "spike": {
        "at": "start_s",
        "dur": "duration_s",
        "extra": "extra_s",
        "every": "repeat_every_s",
    },
    "throttle": {
        "at": "start_s",
        "dur": "duration_s",
        "scale": "cap_scale",
        "every": "repeat_every_s",
    },
    "stuck": {
        "p": "probability",
        "max": "max_stuck",
        "targets": "targets",
    },
    "governor": {"at": "at_s"},
    "spinup": {
        "p": "probability",
        "retries": "max_retries",
        "fraction": "abort_fraction",
        "backoff": "backoff_s",
    },
    "sensor": {
        "bias": "bias_w",
        "gain": "gain",
        "quant": "quant_w",
        "lag": "lag_s",
        "drop_at": "dropout_start_s",
        "drop_dur": "dropout_duration_s",
        "drop_every": "dropout_every_s",
        "freeze_at": "freeze_start_s",
        "freeze_dur": "freeze_duration_s",
        "freeze_every": "freeze_every_s",
    },
    "actuator": {
        "drop": "drop_p",
        "delay": "delay_s",
        "partial": "partial",
        "stuck_at": "stuck_at_s",
    },
}

_CLAUSE_SPECS = {
    "io_error": IoErrorSpec,
    "spike": LatencySpikeSpec,
    "throttle": ThermalThrottleSpec,
    "stuck": StuckTransitionSpec,
    "governor": GovernorFailureSpec,
    "spinup": SpinupFailureSpec,
    "sensor": SensorFaultSpec,
    "actuator": ActuatorFaultSpec,
}


def _parse_args(kind: str, text: str, allowed: dict[str, str]) -> dict:
    """Split ``k=v,k=v`` into a kwargs dict using the ``allowed`` mapping."""
    out: dict[str, object] = {}
    if not text:
        return out
    for chunk in text.split(","):
        if "=" not in chunk:
            raise FaultSpecError(
                f"{kind}: expected key=value, got {chunk!r}"
            )
        key, _, value = chunk.partition("=")
        key = key.strip()
        if key not in allowed:
            raise FaultSpecError(
                f"{kind}: unknown argument {key!r}; "
                f"valid: {sorted(allowed)}"
            )
        field = allowed[key]
        if field == "targets":
            out[field] = tuple(value.split("|"))
        elif field in _INT_FIELDS:
            out[field] = int(value)
        else:
            try:
                out[field] = float(value)
            except ValueError:
                raise FaultSpecError(
                    f"{kind}: argument {key}={value!r} is not a number"
                ) from None
    return out


def parse_fault_plan(spec: str) -> FaultPlan:
    """Parse a ``--faults`` string into a :class:`FaultPlan`.

    Raises :class:`FaultSpecError` (a ``ValueError``) on any malformed
    clause, naming the offending clause and the valid vocabulary.
    """
    io_errors = None
    spikes: list[LatencySpikeSpec] = []
    throttle = None
    stuck = None
    governor = None
    spinup = None
    sensor = None
    actuator = None
    for raw in spec.split(";"):
        clause = raw.strip()
        if not clause:
            continue
        kind, _, argtext = clause.partition(":")
        kind = kind.strip()
        try:
            if kind not in _CLAUSE_ARGS:
                raise FaultSpecError(
                    f"unknown fault kind {kind!r}; valid: "
                    + ", ".join(_CLAUSE_ARGS)
                )
            args = _parse_args(kind, argtext, _CLAUSE_ARGS[kind])
            built = _CLAUSE_SPECS[kind](**args)
            if kind == "io_error":
                io_errors = built
            elif kind == "spike":
                spikes.append(built)
            elif kind == "throttle":
                throttle = built
            elif kind == "stuck":
                stuck = built
            elif kind == "governor":
                governor = built
            elif kind == "spinup":
                spinup = built
            elif kind == "sensor":
                sensor = built
            else:
                actuator = built
        except TypeError as exc:
            # A spec dataclass missing a required argument.
            raise FaultSpecError(
                f"{kind}: {exc} (in clause {clause!r})"
            ) from None
        except FaultSpecError as exc:
            # Re-raise with the offending clause named: a multi-clause
            # spec would otherwise leave the user hunting for which
            # token broke.
            raise FaultSpecError(f"{exc} (in clause {clause!r})") from None
        except ValueError as exc:
            # A spec dataclass rejecting a value in __post_init__.
            raise FaultSpecError(
                f"{kind}: {exc} (in clause {clause!r})"
            ) from None
    plan = FaultPlan(
        io_errors=io_errors,
        latency_spikes=tuple(spikes),
        thermal_throttle=throttle,
        stuck_transitions=stuck,
        governor_failure=governor,
        spinup_failure=spinup,
        sensor=sensor,
        actuator=actuator,
    )
    if not plan.active:
        raise FaultSpecError(f"fault spec {spec!r} configures no faults")
    return plan


def _render_value(value) -> str:
    if isinstance(value, tuple):
        return "|".join(value)
    if isinstance(value, bool):  # pragma: no cover - no bool fields today
        raise TypeError("fault specs carry no boolean arguments")
    if isinstance(value, int):
        return str(value)
    # repr() of a float round-trips exactly through float() (PEP 3101
    # shortest-repr), which is what makes render/parse an identity.
    return repr(float(value))


def _render_clause(kind: str, spec_obj) -> str:
    """One canonical clause: args in table order, defaults omitted."""
    arg_map = _CLAUSE_ARGS[kind]
    defaults = {
        f.name: f.default for f in fields(type(spec_obj))
    }
    parts = []
    for key, field in arg_map.items():
        value = getattr(spec_obj, field)
        if value is None:
            continue
        if value == defaults.get(field):
            # Omit arguments at their dataclass default (required fields
            # have no default and are always emitted): the canonical
            # form is the shortest spelling that parses back equal.
            continue
        parts.append(f"{key}={_render_value(value)}")
    return f"{kind}:{','.join(parts)}" if parts else kind


def render_fault_plan(plan: FaultPlan) -> str:
    """Render ``plan`` as a canonical ``--faults`` string.

    The output re-parses to an equal plan::

        parse_fault_plan(render_fault_plan(plan)) == plan

    for every plan with at least one configured fault (an inert plan has
    no grammar spelling: :func:`parse_fault_plan` rejects specs that
    configure nothing).  The chaos shrinker round-trips every candidate
    through this to guarantee reproducers paste back into ``--faults``.
    """
    if not plan.active:
        raise ValueError("an inert FaultPlan has no --faults spelling")
    clauses = []
    if plan.io_errors is not None:
        clauses.append(_render_clause("io_error", plan.io_errors))
    for spike in plan.latency_spikes:
        clauses.append(_render_clause("spike", spike))
    if plan.thermal_throttle is not None:
        clauses.append(_render_clause("throttle", plan.thermal_throttle))
    if plan.stuck_transitions is not None:
        clauses.append(_render_clause("stuck", plan.stuck_transitions))
    if plan.governor_failure is not None:
        clauses.append(_render_clause("governor", plan.governor_failure))
    if plan.spinup_failure is not None:
        clauses.append(_render_clause("spinup", plan.spinup_failure))
    if plan.sensor is not None:
        clauses.append(_render_clause("sensor", plan.sensor))
    if plan.actuator is not None:
        clauses.append(_render_clause("actuator", plan.actuator))
    return ";".join(clauses)
