"""Deterministic fault injection.

The injector is the runtime half of :mod:`repro.faults.plan`: devices call
into it at their fault sites (IO entry, power-state transitions, spin-up)
and it decides -- from dedicated ``faults.*`` RNG streams -- whether and how
hard each site fails.  Episode faults (latency-spike windows, thermal
throttling, the §4.1 governor failure) run as engine processes scheduled by
:meth:`FaultInjector.install`.

Design constraints, mirroring the tracer's (:mod:`repro.obs.events`):

1. **Determinism.**  Every random decision comes from a named
   :class:`~repro.sim.rng.RngStreams` stream under the ``faults.`` prefix,
   so the same seed and plan reproduce the same fault sequence bit for bit
   across processes and ``PYTHONHASHSEED`` values -- and a run *without*
   faults never touches those streams, so adding the subsystem changed no
   existing result.
2. **Zero cost when off.**  Devices hold the :data:`NULL_INJECTOR`
   singleton unless an experiment configures faults; every fault site
   guards on the injector's ``enabled`` flag (one attribute load).
3. **Tracer passivity.**  Fault *behaviour* (extra latency, refused
   transitions, cap loss) depends only on the plan and the RNG; the
   events describing it are emitted through the tracer under ``enabled``
   guards, so tracing a faulted run does not change its results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.faults.plan import FaultPlan
from repro.obs.events import EventKind

__all__ = [
    "FaultInjector",
    "FaultSummary",
    "NULL_INJECTOR",
    "NullFaultInjector",
]


@dataclass(frozen=True)
class FaultSummary:
    """What the injector did during one experiment.

    Attached to :class:`~repro.core.experiment.ExperimentResult` so fault
    accounting travels with the result (and feeds
    :func:`repro.core.safety.measured_device_group`).

    Attributes:
        injected: Sorted ``(fault kind, occurrences)`` pairs.
        retries: Total retry attempts forced across all faults.
        extra_latency_s: Total simulated time added to IO paths.
        governor_failed: Whether the §4.1 governor failure fired.
        intended_cap_w: The cap the governor *should* have enforced when
            it failed (``None`` if it never failed or was uncapped).
    """

    injected: tuple[tuple[str, int], ...] = ()
    retries: int = 0
    extra_latency_s: float = 0.0
    governor_failed: bool = False
    intended_cap_w: Optional[float] = None

    @property
    def total(self) -> int:
        return sum(count for _fault, count in self.injected)

    def count(self, fault: str) -> int:
        return dict(self.injected).get(fault, 0)

    def describe(self) -> str:
        if not self.injected:
            return "no faults injected"
        parts = [f"{fault} x{count}" for fault, count in self.injected]
        if self.retries:
            parts.append(f"{self.retries} retries")
        if self.governor_failed:
            cap = (
                "uncapped"
                if self.intended_cap_w is None
                else f"cap {self.intended_cap_w:g} W lost"
            )
            parts.append(f"governor FAILED ({cap})")
        return ", ".join(parts)


class NullFaultInjector:
    """The zero-cost default carried by every device.

    Fault sites check :attr:`enabled` before calling anything else, so a
    clean run pays one attribute load per site and draws nothing from any
    RNG stream.
    """

    __slots__ = ()

    enabled = False

    def install(self, device) -> None:
        """Accept a device binding (no-op)."""

    def summary(self) -> Optional[FaultSummary]:
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<NullFaultInjector>"


#: Shared instance used by every device not given an explicit injector.
NULL_INJECTOR = NullFaultInjector()


class FaultInjector:
    """Executes a :class:`~repro.faults.plan.FaultPlan` against one engine.

    Args:
        engine: The simulation engine (for time, timeouts and the tracer).
        plan: What to inject.  An all-default plan yields a disabled
            injector (``enabled = False``), indistinguishable at the fault
            sites from :data:`NULL_INJECTOR`.
        rngs: The experiment's root :class:`~repro.sim.rng.RngStreams`;
            the injector draws only from streams under the ``faults.``
            prefix, leaving every pre-existing stream untouched.
    """

    def __init__(self, engine, plan: FaultPlan, rngs) -> None:
        self.engine = engine
        self.plan = plan
        self._rngs = rngs
        self.enabled = plan.active
        self.counts: dict[str, int] = {}
        self.retries = 0
        self.extra_latency_s = 0.0
        self.governor_failed = False
        self.intended_cap_w: Optional[float] = None

    # -- bookkeeping ------------------------------------------------------

    def _stream(self, site: str):
        return self._rngs.get(f"faults.{site}")

    def _record(self, fault: str, component: str, **fields) -> None:
        self.counts[fault] = self.counts.get(fault, 0) + 1
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.emit(EventKind.FAULT, component, fault=fault, **fields)

    def note_retry(self, fault: str, component: str, attempt: int) -> None:
        """Count (and trace) one retry attempt a fault forced."""
        self.retries += 1
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.emit(
                EventKind.FAULT_RETRY, component, fault=fault, attempt=attempt
            )

    def summary(self) -> FaultSummary:
        return FaultSummary(
            injected=tuple(sorted(self.counts.items())),
            retries=self.retries,
            extra_latency_s=self.extra_latency_s,
            governor_failed=self.governor_failed,
            intended_cap_w=self.intended_cap_w,
        )

    # -- per-site decisions (called from device fault sites) ---------------

    def io_delay(self, component: str, io_kind: str) -> Iterator:
        """Process generator: pre-IO fault cost at one IO entry point.

        Adds active latency-spike time, then (independently) a transient
        IO error whose device-internal retries each cost the configured
        retry time.
        """
        plan = self.plan
        extra = plan.spike_extra_s(self.engine.now)
        if extra > 0:
            self._record("latency_spike", component, extra_s=extra, kind=io_kind)
            self.extra_latency_s += extra
            yield self.engine.timeout(extra)
        spec = plan.io_errors
        if spec is not None:
            stream = self._stream(f"{component}.io_error")
            if float(stream.random()) < spec.probability:
                attempts = 1 + int(stream.integers(0, spec.max_retries))
                self._record(
                    "io_error", component, kind=io_kind, attempts=attempts
                )
                self.extra_latency_s += attempts * spec.retry_cost_s
                for attempt in range(1, attempts + 1):
                    self.note_retry("io_error", component, attempt)
                    if spec.retry_cost_s > 0:
                        yield self.engine.timeout(spec.retry_cost_s)

    def transition_stuck(self, component: str, target: str) -> int:
        """Extra attempts a power-state transition must re-pay (0 = clean)."""
        spec = self.plan.stuck_transitions
        if spec is None or target not in spec.targets:
            return 0
        stream = self._stream(f"{component}.stuck.{target}")
        if float(stream.random()) >= spec.probability:
            return 0
        extra = 1 + int(stream.integers(0, spec.max_stuck))
        self._record("stuck_transition", component, target=target, attempts=extra)
        return extra

    def epc_refused(self, component: str) -> bool:
        """Whether an (instant) EPC idle-condition entry is refused."""
        spec = self.plan.stuck_transitions
        if spec is None or "epc" not in spec.targets:
            return False
        stream = self._stream(f"{component}.stuck.epc")
        refused = float(stream.random()) < spec.probability
        if refused:
            self._record(
                "stuck_transition", component, target="epc", refused=True
            )
        return refused

    def spinup_failures(self, component: str) -> int:
        """Failed spin-up attempts before this spin-up succeeds (0 = clean)."""
        spec = self.plan.spinup_failure
        if spec is None:
            return 0
        stream = self._stream(f"{component}.spinup")
        if float(stream.random()) >= spec.probability:
            return 0
        attempts = 1 + int(stream.integers(0, spec.max_retries))
        self._record("spinup_failure", component, attempts=attempts)
        return attempts

    # -- control-plane sites (called from repro.faults.control) ------------

    def sense_fault(self, fault: str, component: str, **fields) -> None:
        """Account (and trace) one control-plane fault occurrence.

        Public wrapper over :meth:`_record` for the sensor/actuator seam
        (:mod:`repro.faults.control`), which lives outside this module
        but must feed the same :class:`FaultSummary` accounting.
        """
        self._record(fault, component, **fields)

    def actuator_dropped(self, component: str, target_w: float) -> bool:
        """Whether this cap command is silently dropped.

        Draws from the keyed ``faults.<component>.actuator`` stream only
        when a positive drop probability is configured, so plans without
        command drops leave the stream untouched.
        """
        spec = self.plan.actuator
        if spec is None or spec.drop_p <= 0.0:
            return False
        stream = self._stream(f"{component}.actuator")
        dropped = float(stream.random()) < spec.drop_p
        if dropped:
            self._record("actuator_dropped", component, target_w=target_w)
        return dropped

    # -- episode processes -------------------------------------------------

    def install(self, device) -> None:
        """Schedule the plan's episode processes against ``device``.

        Call once, right after device construction.  Episode scheduling
        depends only on the plan (never on the tracer), so enabling a
        tracer cannot perturb engine event ordering of a faulted run.
        Governor episodes (thermal throttle, governor failure) need a
        power governor and are skipped for devices without one (HDDs).
        """
        if not self.enabled:
            return
        engine = self.engine
        governor = getattr(device, "governor", None)
        if governor is not None:
            if self.plan.governor_failure is not None:
                engine.process(self._governor_failure_proc(governor))
            if self.plan.thermal_throttle is not None:
                engine.process(self._thermal_throttle_proc(governor))
        for spec in self.plan.latency_spikes:
            engine.process(self._spike_marker_proc(device.name, spec))

    def _governor_failure_proc(self, governor):
        spec = self.plan.governor_failure
        yield self.engine.timeout(spec.at_s)
        self.governor_failed = True
        self.intended_cap_w = governor.intended_cap_w
        self._record(
            "governor_failure",
            governor.name,
            intended_cap_w=self.intended_cap_w,
        )
        tracer = self.engine.tracer
        if tracer.enabled:
            # Deliberately never closed: the device stays degraded.
            tracer.emit(
                EventKind.FAULT_START,
                governor.name,
                fault="governor_failure",
                intended_cap_w=self.intended_cap_w,
            )
        governor.fail_unconstrained()

    def _thermal_throttle_proc(self, governor):
        spec = self.plan.thermal_throttle
        tracer = self.engine.tracer
        yield self.engine.timeout(spec.start_s)
        while True:
            self._record(
                "thermal_throttle", governor.name, cap_scale=spec.cap_scale
            )
            if tracer.enabled:
                tracer.emit(
                    EventKind.FAULT_START,
                    governor.name,
                    fault="thermal_throttle",
                    cap_scale=spec.cap_scale,
                )
            governor.set_throttle(spec.cap_scale)
            yield self.engine.timeout(spec.duration_s)
            governor.set_throttle(1.0)
            if tracer.enabled:
                tracer.emit(
                    EventKind.FAULT_END, governor.name, fault="thermal_throttle"
                )
            if spec.repeat_every_s is None:
                return
            yield self.engine.timeout(spec.repeat_every_s - spec.duration_s)

    def _spike_marker_proc(self, device_name: str, spec):
        """Bracket each latency-spike window with FAULT_START/END events.

        The spike *cost* is applied per IO by :meth:`io_delay` (pure
        window arithmetic); this process only makes the window visible to
        traces and the degraded-residency metric.  It is scheduled
        whenever the spec exists -- guarding only the emits -- so traced
        and untraced faulted runs stay bit-identical.
        """
        component = f"{device_name}.faults"
        tracer = self.engine.tracer
        yield self.engine.timeout(spec.start_s)
        while True:
            if tracer.enabled:
                tracer.emit(
                    EventKind.FAULT_START,
                    component,
                    fault="latency_spike",
                    extra_s=spec.extra_s,
                )
            yield self.engine.timeout(spec.duration_s)
            if tracer.enabled:
                tracer.emit(
                    EventKind.FAULT_END, component, fault="latency_spike"
                )
            if spec.repeat_every_s is None:
                return
            yield self.engine.timeout(spec.repeat_every_s - spec.duration_s)
